//! Automatic elision through the JIT pipeline.
//!
//! Run with: `cargo run --release --example jit_elision`
//!
//! Builds a small "bank" program in the bytecode-like IR, lets the
//! analysis classify its synchronized regions (read-only, read-mostly,
//! writing — printing the violations it found), and executes it with
//! the interpreter: read-only regions elide automatically, with no
//! annotation and no change to the program.

use std::sync::Arc;

use solero::SoleroLock;
use solero_heap::{ClassId, Heap};
use solero_jit::analysis::{classify_method, RegionClass};
use solero_jit::builder::MethodBuilder;
use solero_jit::interp::{Interpreter, RuntimeLock};
use solero_jit::ir::{BinOp, Cmp, Program};

/// Account object layout: [balance, flags].
const ACCOUNT: ClassId = ClassId::new(1);
/// Array-of-accounts layout.
const BOOK: ClassId = ClassId::new(2);

fn build_program() -> Program {
    let mut p = Program::new();

    // fn balance(acct) { synchronized(l0) { b = acct.balance } return b }
    let mut b = MethodBuilder::new("balance", 1);
    let v = b.fresh_local();
    b.monitor_enter(0)
        .get_field(v, 0, ACCOUNT, 0)
        .monitor_exit(0)
        .ret(Some(v));
    p.add(b.finish());

    // fn deposit(acct, amt) { synchronized(l0) { acct.balance += amt } }
    let mut b = MethodBuilder::new("deposit", 2);
    let v = b.fresh_local();
    b.monitor_enter(0)
        .get_field(v, 0, ACCOUNT, 0)
        .binop(BinOp::Add, v, v, 1)
        .put_field(0, ACCOUNT, 0, v)
        .monitor_exit(0)
        .ret(None);
    p.add(b.finish());

    // fn audit(book, n) — sum all balances in one synchronized scan.
    let mut b = MethodBuilder::new("audit", 2);
    let (book, n) = (0, 1);
    let i = b.fresh_local();
    let acct = b.fresh_local();
    let v = b.fresh_local();
    let sum = b.fresh_local();
    let one = b.fresh_local();
    let head = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    let after = b.new_block();
    b.monitor_enter(0)
        .constant(i, 0)
        .constant(sum, 0)
        .constant(one, 1)
        .jump(head);
    b.switch_to(head).branch(i, Cmp::Lt, n, body, done);
    b.switch_to(body)
        .array_load(acct, book, BOOK, i)
        .get_field(v, acct, ACCOUNT, 0)
        .binop(BinOp::Add, sum, sum, v)
        .binop(BinOp::Add, i, i, one)
        .jump(head);
    b.switch_to(done).monitor_exit(0).jump(after);
    b.switch_to(after).ret(Some(sum));
    p.add(b.finish());

    p
}

fn main() {
    let p = build_program();

    println!("== JIT classification ==");
    for mid in 0..p.methods.len() as u32 {
        for r in classify_method(&p, mid) {
            let name = &p.method(mid).name;
            println!(
                "  {name:<8} region on lock {} @ {} -> {:?}",
                r.region.lock, r.region.enter, r.class
            );
            for v in &r.violations {
                println!("      violation at {}: {:?} (cold={})", v.point, v.reason, v.cold);
            }
            match name.as_str() {
                "balance" | "audit" => assert_eq!(r.class, RegionClass::ReadOnly),
                "deposit" => assert_eq!(r.class, RegionClass::Writing),
                _ => {}
            }
        }
    }

    // Set up the bank on the shadow heap.
    const ACCOUNTS: u32 = 64;
    let heap = Arc::new(Heap::new(1 << 16));
    let book = heap.alloc(BOOK, ACCOUNTS).expect("alloc book");
    for i in 0..ACCOUNTS {
        let a = heap.alloc(ACCOUNT, 2).expect("alloc account");
        heap.store_i64(a, 0, 100).expect("init");
        heap.store(book, i, a.raw() as u64).expect("link");
    }

    let lock = Arc::new(SoleroLock::new());
    let interp = Arc::new(
        Interpreter::new(p, Arc::clone(&heap), vec![RuntimeLock::Solero(Arc::clone(&lock))])
            .expect("verified program"),
    );
    let (balance, deposit, audit) = (
        interp.program().find("balance").unwrap(),
        interp.program().find("deposit").unwrap(),
        interp.program().find("audit").unwrap(),
    );

    println!("\n== concurrent execution ==");
    std::thread::scope(|s| {
        // Depositors (writers).
        for t in 0..2 {
            let (interp, heap) = (Arc::clone(&interp), Arc::clone(&heap));
            s.spawn(move || {
                for i in 0..2_000u32 {
                    let idx = (i * 7 + t) % ACCOUNTS;
                    let acct = heap.load(book, BOOK, idx).unwrap();
                    interp.run(deposit, &[acct as i64, 1]).unwrap();
                }
            });
        }
        // Auditors and balance readers (elided).
        for _ in 0..3 {
            let (interp, heap) = (Arc::clone(&interp), Arc::clone(&heap));
            s.spawn(move || {
                for i in 0..2_000u32 {
                    if i % 10 == 0 {
                        let total = interp
                            .run(audit, &[book.raw() as i64, ACCOUNTS as i64])
                            .unwrap()
                            .unwrap();
                        assert!(total >= 100 * ACCOUNTS as i64);
                    } else {
                        let acct = heap.load(book, BOOK, i % ACCOUNTS).unwrap();
                        interp.run(balance, &[acct as i64]).unwrap();
                    }
                }
            });
        }
    });

    let final_total = interp
        .run(audit, &[book.raw() as i64, ACCOUNTS as i64])
        .unwrap()
        .unwrap();
    println!("  final audited total: {final_total} (expected {})", 100 * ACCOUNTS + 2 * 2_000);
    assert_eq!(final_total, 100 * ACCOUNTS as i64 + 2 * 2_000);

    let st = lock.stats().snapshot();
    println!("  lock statistics: {st}");
    assert!(st.elision_success > 0, "readers must have elided");
    println!("\nread-only regions elided automatically; deposits took the lock.");
}
