//! A read-mostly in-memory cache — the workload SOLERO is built for.
//!
//! Run with: `cargo run --release --example concurrent_cache`
//!
//! A session cache (shadow-heap `JHashMap`) is read by many worker
//! threads and occasionally refreshed by a writer. The same code runs
//! under the conventional monitor, the read-write lock, and SOLERO;
//! the example prints the throughput and lock statistics of each.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use solero::{BravoStrategy, Checkpoint, JavaRwLock, LockStrategy, RwStrategy, SoleroStrategy, SyncStrategy};
use solero_collections::JHashMap;
use solero_heap::Heap;

const SESSIONS: i64 = 4_096;
const READERS: usize = 4;
const RUN: Duration = Duration::from_millis(400);

fn run_cache<S: SyncStrategy>(strat: S) -> (f64, String) {
    let heap = Arc::new(Heap::new(1 << 20));
    let cache = JHashMap::new(&heap, SESSIONS as usize).expect("setup");
    for k in 0..SESSIONS {
        cache.put(&heap, k, k * 17).expect("populate");
    }
    let strat = Arc::new(strat);
    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        // Readers: session lookups, read-only critical sections.
        for r in 0..READERS {
            let (heap, strat, stop, lookups) = (
                Arc::clone(&heap),
                Arc::clone(&strat),
                Arc::clone(&stop),
                Arc::clone(&lookups),
            );
            s.spawn(move || {
                let mut k = r as i64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    k = (k * 1_103_515_245 + 12_345) & (SESSIONS - 1);
                    let hit = strat
                        .read_section(|ck| cache.get(&heap, k, ck as &mut dyn Checkpoint))
                        .expect("lookup");
                    std::hint::black_box(hit);
                    n += 1;
                }
                lookups.fetch_add(n, Ordering::Relaxed);
            });
        }
        // One writer: periodic session refresh (about 0.5% of ops).
        {
            let (heap, strat, stop) = (Arc::clone(&heap), Arc::clone(&strat), Arc::clone(&stop));
            s.spawn(move || {
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    k = (k + 97) & (SESSIONS - 1);
                    strat.write_section(|| {
                        cache.put(&heap, k, k * 31).expect("refresh");
                    });
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        std::thread::sleep(RUN);
        stop.store(true, Ordering::Relaxed);
    });
    let secs = t0.elapsed().as_secs_f64();
    let rate = lookups.load(Ordering::Relaxed) as f64 / secs / 1e6;
    (rate, format!("{}", strat.snapshot()))
}

fn main() {
    println!("session cache: {READERS} readers + 1 refresher, {SESSIONS} sessions\n");
    let (lock_rate, lock_stats) = run_cache(LockStrategy::new());
    let (rw_rate, rw_stats) = run_cache(RwStrategy::<JavaRwLock>::new());
    let (bravo_rate, bravo_stats) = run_cache(BravoStrategy::new());
    let (so_rate, so_stats) = run_cache(SoleroStrategy::new());
    println!("Lock    : {lock_rate:.2} M lookups/s\n          {lock_stats}");
    println!("RWLock  : {rw_rate:.2} M lookups/s\n          {rw_stats}");
    println!("BRAVO-RW: {bravo_rate:.2} M lookups/s\n          {bravo_stats}");
    println!("SOLERO  : {so_rate:.2} M lookups/s\n          {so_stats}");
    println!(
        "\nSOLERO vs Lock: {:.2}x, vs RWLock: {:.2}x; BRAVO-RW vs RWLock: {:.2}x",
        so_rate / lock_rate,
        so_rate / rw_rate,
        bravo_rate / rw_rate
    );
}
