//! Quickstart: the SOLERO lock in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Shows the three section kinds — writing, read-only (elided), and
//! read-mostly (elided with in-place upgrade) — plus the statistics the
//! lock keeps about itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use solero::{Fault, SoleroLock, WriteIntent};

fn main() -> Result<(), Fault> {
    let lock = Arc::new(SoleroLock::new());
    // The protected data. In the full system data lives in the shadow
    // heap (see the `concurrent_cache` example); plain atomics are
    // enough to demonstrate the lock itself.
    let balance = Arc::new(AtomicU64::new(1_000));
    let audit_count = Arc::new(AtomicU64::new(0));

    // 1. Writing critical section: acquires the lock (one CAS in, one
    //    store out) and advances the sequence counter.
    lock.write(|| {
        let b = balance.load(Ordering::Relaxed);
        balance.store(b + 500, Ordering::Release);
    });
    println!("after deposit, word = {}", lock.raw_word());

    // 2. Read-only critical section: no lock-word write at all. The
    //    closure may run speculatively (and more than once), so it
    //    returns Result and confines effects to its return value.
    let seen = lock.read_only(|_session| Ok(balance.load(Ordering::Acquire)))?;
    println!("read-only section saw balance = {seen}");

    // 3. Read-mostly section (§5 extension): elided like a read, but
    //    may upgrade in place before writing.
    lock.read_mostly(|session| {
        let b = balance.load(Ordering::Acquire);
        if b > 1_200 {
            // Rare path: record an audit entry. Upgrading validates all
            // reads so far and takes the lock.
            session.ensure_write()?;
            audit_count.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    })?;

    // 4. Concurrent readers elide in parallel; a writer invalidates
    //    them and they recover automatically.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (lock, balance) = (Arc::clone(&lock), Arc::clone(&balance));
            s.spawn(move || {
                for _ in 0..50_000 {
                    lock.read_only(|_| Ok::<_, Fault>(balance.load(Ordering::Acquire)))
                        .unwrap();
                }
            });
        }
        let (lock, balance) = (Arc::clone(&lock), Arc::clone(&balance));
        s.spawn(move || {
            for _ in 0..1_000 {
                lock.write(|| {
                    balance.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });

    let stats = lock.stats().snapshot();
    println!("\nlock statistics: {stats}");
    println!(
        "elision success rate: {:.2}%  (failures are retried/fallen back automatically)",
        100.0 * (1.0 - stats.failure_ratio())
    );
    println!("audits recorded: {}", audit_count.load(Ordering::Relaxed));
    Ok(())
}
