//! A price-lookup service with rare corrections — the §5 read-mostly
//! extension end to end.
//!
//! Run with: `cargo run --release --example orderbook_readmostly`
//!
//! An order book (shadow-heap `JTreeMap`) serves best-bid lookups at
//! high rate; occasionally a lookup detects a crossed book and repairs
//! it in place. A plain read-only section could not perform the repair;
//! a writing section would put a CAS on the hot path of every lookup.
//! The read-mostly section elides on the common path and upgrades only
//! when the repair triggers (Figure 17).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use solero::{Fault, SoleroLock, WriteIntent};
use solero_collections::JTreeMap;
use solero_heap::Heap;

const LEVELS: i64 = 512;

fn main() -> Result<(), Fault> {
    let heap = Arc::new(Heap::new(1 << 20));
    let book = JTreeMap::new(&heap)?;
    // price level -> quantity; odd quantities mark "stale" levels that
    // lookups repair.
    for p in 0..LEVELS {
        book.put(&heap, p, 100 + (p % 2))?;
    }
    let lock = Arc::new(SoleroLock::new());
    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));
    let repairs = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Lookup threads: read-mostly sections.
        for t in 0..3 {
            let (heap, lock, stop, lookups, repairs) = (
                Arc::clone(&heap),
                Arc::clone(&lock),
                Arc::clone(&stop),
                Arc::clone(&lookups),
                Arc::clone(&repairs),
            );
            let book = book;
            s.spawn(move || {
                let mut p = t as i64;
                while !stop.load(Ordering::Relaxed) {
                    p = (p * 31 + 7) & (LEVELS - 1);
                    let repaired = lock
                        .read_mostly(|session| {
                            let qty = book.get(&heap, p, session)?.unwrap_or(0);
                            if qty & 1 == 1 {
                                // Stale level: repair in place. The
                                // upgrade CAS validates every read so far.
                                session.ensure_write()?;
                                book.put(&heap, p, qty + 1)?;
                                return Ok(true);
                            }
                            Ok(false)
                        })
                        .expect("no genuine faults");
                    lookups.fetch_add(1, Ordering::Relaxed);
                    if repaired {
                        repairs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A market-data thread occasionally re-staling levels (writer).
        {
            let (heap, lock, stop) = (Arc::clone(&heap), Arc::clone(&lock), Arc::clone(&stop));
            let book = book;
            s.spawn(move || {
                let mut p = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    p = (p + 13) & (LEVELS - 1);
                    lock.write(|| {
                        book.put(&heap, p, 101).expect("feed");
                    });
                    std::thread::sleep(Duration::from_micros(500));
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    let st = lock.stats().snapshot();
    println!("lookups  : {}", lookups.load(Ordering::Relaxed));
    println!("repairs  : {}", repairs.load(Ordering::Relaxed));
    println!("stats    : {st}");
    println!("upgrades : {} (each one took the lock mid-section)", st.mostly_upgrades);
    println!(
        "elided   : {} ({:.1}% of read-mostly sections never touched the lock word)",
        st.elision_success,
        100.0 * st.elision_success as f64 / (st.elision_success + st.mostly_upgrades).max(1) as f64
    );
    assert!(st.mostly_upgrades > 0);
    assert!(st.elision_success > 0);
    Ok(())
}
