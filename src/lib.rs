//! Umbrella crate for the SOLERO reproduction: re-exports every
//! workspace crate under one roof so the examples and integration tests
//! (and downstream experiments) can depend on a single package.
//!
//! * [`solero`] — the SOLERO lock (the paper's contribution);
//! * [`solero_tasuki`] / [`solero_rwlock`] — the evaluated baselines;
//! * [`solero_runtime`] — lock words, monitors, events, fences, stats;
//! * [`solero_heap`] / [`solero_collections`] — the speculation-safe
//!   data substrate;
//! * [`solero_jit`] — IR, read-only classification, lock-plan lowering,
//!   interpreter;
//! * [`solero_workloads`] — the paper's benchmarks and the measurement
//!   driver.
//!
//! See `README.md` for the tour and `DESIGN.md` for the system
//! inventory.

#![warn(missing_docs)]

pub use solero;
pub use solero_collections;
pub use solero_heap;
pub use solero_jit;
pub use solero_runtime;
pub use solero_rwlock;
pub use solero_tasuki;
pub use solero_workloads;
