//! Figure 11 as Criterion micro-benchmarks: single-thread map lookups
//! under each lock implementation.

use std::time::Duration;

use solero_testkit::bench::Criterion;
use solero_testkit::{criterion_group, criterion_main};
use solero_testkit::rng::TestRng;
use solero::{JavaRwLock, LockStrategy, RwStrategy, SoleroStrategy, SyncStrategy};
use solero_workloads::maps::{MapBench, MapConfig, MapKind};

fn bench_map<S: SyncStrategy + 'static>(
    c: &mut Criterion,
    label: &str,
    kind: MapKind,
    writes: u32,
    make: impl Fn() -> S,
) {
    let bench = MapBench::new(MapConfig::paper(kind, writes, 1), make);
    let mut rng = TestRng::seed_from_u64(42);
    c.bench_function(label, |b| b.iter(|| bench.op(0, &mut rng)));
}

fn maps(c: &mut Criterion) {
    for (kind, kname) in [(MapKind::Hash, "hashmap"), (MapKind::Tree, "treemap")] {
        for writes in [0u32, 5] {
            bench_map(
                c,
                &format!("{kname}{writes}/Lock"),
                kind,
                writes,
                LockStrategy::new,
            );
            bench_map(
                c,
                &format!("{kname}{writes}/RWLock"),
                kind,
                writes,
                RwStrategy::<JavaRwLock>::new,
            );
            bench_map(
                c,
                &format!("{kname}{writes}/SOLERO"),
                kind,
                writes,
                SoleroStrategy::new,
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = maps
}
criterion_main!(benches);
