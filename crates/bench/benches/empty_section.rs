//! Figure 10 as a Criterion micro-benchmark: the empty synchronized
//! block under every lock implementation and ablation.

use std::time::Duration;

use solero_testkit::bench::Criterion;
use solero_testkit::{criterion_group, criterion_main};
use solero::{BravoStrategy, JavaRwLock, LockStrategy, RwStrategy, SoleroConfig, SoleroStrategy, SyncStrategy};

fn bench_strategy<S: SyncStrategy>(c: &mut Criterion, name: &str, s: S) {
    c.bench_function(&format!("empty/{name}"), |b| {
        b.iter(|| s.read_section(|_| Ok(())).unwrap())
    });
}

fn empty_sections(c: &mut Criterion) {
    bench_strategy(c, "Lock", LockStrategy::new());
    bench_strategy(c, "RWLock", RwStrategy::<JavaRwLock>::new());
    bench_strategy(c, "BRAVO-RW", BravoStrategy::new());
    bench_strategy(c, "SOLERO", SoleroStrategy::new());
    bench_strategy(
        c,
        "Unelided-SOLERO",
        SoleroStrategy::configured(SoleroConfig::builder().unelided(true).build()),
    );
    bench_strategy(
        c,
        "WeakBarrier-SOLERO",
        SoleroStrategy::configured(SoleroConfig::builder().weak_barrier(true).build()),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = empty_sections
}
criterion_main!(benches);
