//! Micro-costs of the lock words and fast paths (supports Figure 10's
//! interpretation: where the cycles go).

use std::time::Duration;

use solero_testkit::bench::{black_box, Criterion};
use solero_testkit::{criterion_group, criterion_main};
use solero::{Fault, SoleroLock};
use solero_runtime::thread::ThreadId;
use solero_runtime::word::{ConvWord, SoleroWord};
use solero_tasuki::TasukiLock;

fn word_ops(c: &mut Criterion) {
    let tid = ThreadId::current();
    c.bench_function("word/solero_decode", |b| {
        let w = SoleroWord::held_by(tid).recurse();
        b.iter(|| {
            let w = black_box(w);
            black_box((w.is_elidable(), w.recursion(), w.tid()))
        })
    });
    c.bench_function("word/conv_decode", |b| {
        let w = ConvWord::held_by(tid).recurse();
        b.iter(|| {
            let w = black_box(w);
            black_box((w.is_zero(), w.recursion(), w.tid()))
        })
    });
}

fn fast_paths(c: &mut Criterion) {
    let tid = ThreadId::current();
    c.bench_function("fastpath/tasuki_enter_exit", |b| {
        let l = TasukiLock::new();
        b.iter(|| {
            l.enter(tid);
            l.exit(tid);
        })
    });
    c.bench_function("fastpath/solero_write", |b| {
        let l = SoleroLock::new();
        b.iter(|| {
            let t = l.enter_write(tid);
            l.exit_write(tid, t);
        })
    });
    c.bench_function("fastpath/solero_read_elided", |b| {
        let l = SoleroLock::new();
        b.iter(|| l.read_only(|_| Ok::<_, Fault>(black_box(1))).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = word_ops, fast_paths
}
criterion_main!(benches);
