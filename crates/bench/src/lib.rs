//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! * [`figures`] — one generator per table/figure (Table 1, Figures
//!   10–16), each returning renderable [`report::Table`]s;
//! * [`report`] — aligned text tables + CSV output under `results/`;
//! * the `reproduce` binary drives them (`reproduce --quick all`);
//! * the Criterion benches (`cargo bench`) cover the micro costs:
//!   lock-word operations, the empty critical section, and
//!   single-thread map lookups per strategy.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod report;
