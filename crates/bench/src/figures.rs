//! Generators for every table and figure of the paper's evaluation.
//!
//! Each `figXX` function runs the corresponding experiment and returns
//! one or more [`Table`]s; the `reproduce` binary prints them and drops
//! CSVs under `results/`. Table/figure numbering follows the paper:
//!
//! * Table 1 — lock statistics (frequency, read-only ratio);
//! * Figure 10 — Empty-block lock overhead, incl. `Unelided-SOLERO` and
//!   `WeakBarrier-SOLERO`;
//! * Figure 11 — single-thread HashMap/TreeMap/SPECjbb;
//! * Figure 12 — multi-thread HashMap (0%, 5%, 5% fine-grained);
//! * Figure 13 — multi-thread TreeMap (0%, 5%);
//! * Figure 14 — multi-thread SPECjbb;
//! * Figure 15 — speculative-failure ratios;
//! * Figure 16 — DaCapo profiles, Lock vs SOLERO.

use solero_testkit::rng::TestRng;
use solero::{
    BoxedStrategy, BravoStrategy, JavaRwLock, LockStrategy, RwStrategy, SeqStrategy, SoleroConfig,
    SoleroStrategy, SyncStrategy,
};
use solero_workloads::dacapo::{DacapoBench, DACAPO_PROFILES};
use solero_workloads::driver::{measure, Measurement, RunConfig};
use solero_workloads::empty::EmptyBench;
use solero_workloads::jbb::JbbBench;
use solero_workloads::maps::{MapBench, MapConfig, MapKind};
use solero_workloads::table1;

use crate::report::{f3, pct, Table};

/// Harness-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Use the abbreviated protocol (fewer/shorter windows, fewer
    /// thread counts).
    pub quick: bool,
}

impl HarnessConfig {
    fn run(&self, threads: usize) -> RunConfig {
        if self.quick {
            RunConfig::quick(threads)
        } else {
            RunConfig::paper(threads)
        }
    }

    /// The thread counts swept by the multi-thread figures (the paper
    /// uses 1–16 on a 16-way machine).
    pub fn thread_counts(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 2, 4, 8]
        } else {
            vec![1, 2, 4, 8, 16]
        }
    }
}

/// One contender of the benchmark fleet: a display name plus a factory
/// for a fresh boxed strategy behind the dyn-compatible facade.
#[derive(Debug, Clone, Copy)]
pub struct FleetEntry {
    /// Column/row name used in tables and CSVs.
    pub name: &'static str,
    /// Builds a fresh strategy instance.
    pub make: fn() -> BoxedStrategy,
}

/// The strategy fleet the comparative figures iterate — one growable
/// registry, so adding a contender here grows every sweep table, header
/// and CSV with it. `Lock` must stay first: the sweeps normalize their
/// throughput to it.
pub fn fleet() -> Vec<FleetEntry> {
    vec![
        FleetEntry {
            name: "Lock",
            make: || Box::new(LockStrategy::new()),
        },
        FleetEntry {
            name: "RWLock",
            make: || Box::new(RwStrategy::<JavaRwLock>::new()),
        },
        FleetEntry {
            name: "BRAVO-RW",
            make: || Box::new(BravoStrategy::new()),
        },
        FleetEntry {
            name: "SOLERO",
            make: || Box::new(SoleroStrategy::new()),
        },
        FleetEntry {
            name: "Adaptive-SOLERO",
            make: || {
                Box::new(SoleroStrategy::configured(
                    SoleroConfig::builder().adaptive(true).build(),
                ))
            },
        },
        // The inline seqlock guards ambient workload data through its
        // sequence word here (the closure sections); the typed inline
        // payload fast path is measured separately by `bench_seqlock`.
        FleetEntry {
            name: "SeqLock",
            make: || Box::new(SeqStrategy::new(0u64)),
        },
    ]
}

/// Sweep-table headers: the lead column followed by the fleet names,
/// so tables grow with [`fleet`] instead of hardcoding it.
fn fleet_header(lead: &'static str) -> Vec<&'static str> {
    let mut h = vec![lead];
    h.extend(fleet().iter().map(|e| e.name));
    h
}

fn measure_map(
    cfg: &RunConfig,
    map_cfg: MapConfig,
    make: impl Fn() -> BoxedStrategy,
) -> Measurement {
    let b = MapBench::new_boxed(map_cfg, make);
    measure(cfg, |t, rng: &mut TestRng| b.op(t, rng), || b.snapshot())
}

fn measure_jbb(cfg: &RunConfig, make: impl Fn() -> BoxedStrategy) -> Measurement {
    let b = JbbBench::new_boxed(cfg.threads, make);
    measure(cfg, |t, rng| b.op(t, rng), || b.snapshot())
}

/// `EmptyBench` deliberately stays generic (monomorphized): the Figure
/// 10 probe measures pure lock overhead, where a virtual call would be
/// a measurable artifact.
fn measure_empty<S: SyncStrategy>(cfg: &RunConfig, strat: S) -> Measurement {
    let b = EmptyBench::new(strat);
    measure(cfg, |_, _| b.op(), || b.snapshot())
}

/// Table 1 — lock statistics of each benchmark.
pub fn table1(h: &HarnessConfig) -> Table {
    let rows = table1::collect(&h.run(1));
    let mut t = Table::new(
        "Table 1: lock statistics",
        &["Benchmark", "Mlocks/s", "read-only %"],
    );
    for r in rows {
        t.row(vec![
            r.benchmark,
            f3(r.mlocks_per_sec),
            format!("{:.1}", r.read_only_pct),
        ]);
    }
    t
}

/// Figure 10 — Empty-block overhead, normalized execution time vs Lock.
pub fn fig10(h: &HarnessConfig) -> Table {
    let cfg = h.run(1);
    let lock = measure_empty(&cfg, LockStrategy::new());
    let entries: Vec<(&str, Measurement)> = vec![
        ("Lock", lock),
        ("RWLock", measure_empty(&cfg, RwStrategy::<JavaRwLock>::new())),
        ("BRAVO-RW", measure_empty(&cfg, BravoStrategy::new())),
        ("SOLERO", measure_empty(&cfg, SoleroStrategy::new())),
        (
            "Unelided-SOLERO",
            measure_empty(
                &cfg,
                SoleroStrategy::configured(SoleroConfig::builder().unelided(true).build()),
            ),
        ),
        (
            "WeakBarrier-SOLERO",
            measure_empty(
                &cfg,
                SoleroStrategy::configured(SoleroConfig::builder().weak_barrier(true).build()),
            ),
        ),
        (
            "Adaptive-SOLERO",
            measure_empty(
                &cfg,
                SoleroStrategy::configured(SoleroConfig::builder().adaptive(true).build()),
            ),
        ),
    ];
    let base = entries[0].1.ns_per_op();
    let mut t = Table::new(
        "Figure 10: Empty synchronized block (1 thread)",
        &["Implementation", "ns/op", "time vs Lock"],
    );
    for (name, m) in entries {
        t.row(vec![
            name.into(),
            f3(m.ns_per_op()),
            f3(m.ns_per_op() / base),
        ]);
    }
    t
}

/// Figure 11 — single-thread performance relative to Lock (higher is
/// better; the paper plots relative performance %).
pub fn fig11(h: &HarnessConfig) -> Table {
    let cfg = h.run(1);
    let mut t = Table::new(
        "Figure 11: single-thread relative performance (Lock = 100%)",
        &fleet_header("Benchmark"),
    );
    for (kind, label, writes) in [
        (MapKind::Hash, "HashMap", 0u32),
        (MapKind::Hash, "HashMap", 5),
        (MapKind::Tree, "TreeMap", 0),
        (MapKind::Tree, "TreeMap", 5),
    ] {
        let mc = MapConfig::paper(kind, writes, 1);
        let ops: Vec<f64> = fleet()
            .iter()
            .map(|e| measure_map(&cfg, mc, e.make).ops_per_sec)
            .collect();
        let mut row = vec![format!("{label} ({writes}% writes)")];
        row.extend(ops.iter().map(|o| f3(o / ops[0] * 100.0)));
        t.row(row);
    }
    // SPECjbb: the paper measures only Lock vs SOLERO here; the other
    // fleet columns stay empty.
    let lock = measure_jbb(&cfg, || Box::new(LockStrategy::new())).ops_per_sec;
    let so = measure_jbb(&cfg, || Box::new(SoleroStrategy::new())).ops_per_sec;
    let mut row = vec!["SPECjbb2005 (mini)".to_string()];
    for FleetEntry { name, .. } in fleet() {
        row.push(match name {
            "Lock" => "100.0".into(),
            "SOLERO" => f3(so / lock * 100.0),
            _ => "-".into(),
        });
    }
    t.row(row);
    t
}

/// Shared sweep: throughput of the [`fleet`] strategies across thread
/// counts, normalized to Lock at 1 thread.
fn sweep_map(h: &HarnessConfig, kind: MapKind, writes: u32, fine: bool, title: &str) -> Table {
    let mut t = Table::new(title, &fleet_header("threads"));
    let mut base = None;
    for &n in &h.thread_counts() {
        let cfg = h.run(n);
        let shards = if fine { n } else { 1 };
        let mc = MapConfig::paper(kind, writes, shards);
        let ops: Vec<f64> = fleet()
            .iter()
            .map(|e| measure_map(&cfg, mc, e.make).ops_per_sec)
            .collect();
        let b = *base.get_or_insert(ops[0]);
        let mut row = vec![n.to_string()];
        row.extend(ops.iter().map(|o| f3(o / b)));
        t.row(row);
    }
    t
}

/// Figure 12 — multi-thread HashMap: (a) 0% writes, (b) 5% writes,
/// (c) 5% writes fine-grained.
pub fn fig12(h: &HarnessConfig) -> Vec<Table> {
    vec![
        sweep_map(
            h,
            MapKind::Hash,
            0,
            false,
            "Figure 12(a): HashMap, 0% writes (normalized throughput)",
        ),
        sweep_map(
            h,
            MapKind::Hash,
            5,
            false,
            "Figure 12(b): HashMap, 5% writes (normalized throughput)",
        ),
        sweep_map(
            h,
            MapKind::Hash,
            5,
            true,
            "Figure 12(c): HashMap, 5% writes, fine-grained (one map per thread)",
        ),
    ]
}

/// Figure 13 — multi-thread TreeMap: (a) 0% writes, (b) 5% writes.
pub fn fig13(h: &HarnessConfig) -> Vec<Table> {
    vec![
        sweep_map(
            h,
            MapKind::Tree,
            0,
            false,
            "Figure 13(a): TreeMap, 0% writes (normalized throughput)",
        ),
        sweep_map(
            h,
            MapKind::Tree,
            5,
            false,
            "Figure 13(b): TreeMap, 5% writes (normalized throughput)",
        ),
    ]
}

/// Figure 14 — multi-thread SPECjbb (warehouses = threads).
pub fn fig14(h: &HarnessConfig) -> Table {
    let mut t = Table::new(
        "Figure 14: SPECjbb2005 (mini), normalized throughput",
        &["threads", "Lock", "SOLERO"],
    );
    let mut base = None;
    for &n in &h.thread_counts() {
        let cfg = h.run(n);
        let lock = measure_jbb(&cfg, || Box::new(LockStrategy::new())).ops_per_sec;
        let so = measure_jbb(&cfg, || Box::new(SoleroStrategy::new())).ops_per_sec;
        let b = *base.get_or_insert(lock);
        t.row(vec![n.to_string(), f3(lock / b), f3(so / b)]);
    }
    t
}

/// Figure 15 — SOLERO speculative-failure ratio per thread count, plus
/// the abort-reason breakdown behind each ratio (from the per-reason
/// counters the locks keep; no tracing needed).
pub fn fig15(h: &HarnessConfig) -> Vec<Table> {
    let solero: fn() -> BoxedStrategy = || Box::new(SoleroStrategy::new());
    let mut ratios = Table::new(
        "Figure 15: SOLERO speculative-failure ratio",
        &[
            "threads",
            "HashMap 5%",
            "HashMap 5% fine",
            "TreeMap 5%",
            "SPECjbb",
        ],
    );
    let mut reasons = Table::new(
        "Figure 15 (breakdown): read aborts by reason (share of aborts)",
        &[
            "threads",
            "workload",
            "aborts",
            "locked_at_entry",
            "word_changed_at_exit",
            "async_revalidation_fail",
            "retry_exhausted_fallback",
            "inflation",
        ],
    );
    for &n in &h.thread_counts() {
        let cfg = h.run(n);
        let runs = [
            (
                "HashMap 5%",
                measure_map(&cfg, MapConfig::paper(MapKind::Hash, 5, 1), solero),
            ),
            (
                "HashMap 5% fine",
                measure_map(&cfg, MapConfig::paper(MapKind::Hash, 5, n), solero),
            ),
            (
                "TreeMap 5%",
                measure_map(&cfg, MapConfig::paper(MapKind::Tree, 5, 1), solero),
            ),
            ("SPECjbb", measure_jbb(&cfg, solero)),
        ];
        let mut row = vec![n.to_string()];
        row.extend(runs.iter().map(|(_, m)| pct(m.stats.failure_ratio())));
        ratios.row(row);
        for (name, m) in &runs {
            let total = m.stats.read_aborts;
            let mut r = vec![n.to_string(), (*name).into(), total.to_string()];
            for (_, count) in m.stats.abort_reasons() {
                r.push(if total == 0 {
                    "-".into()
                } else {
                    pct(count as f64 / total as f64)
                });
            }
            reasons.row(r);
        }
    }
    vec![ratios, reasons]
}

/// Figure 16 — DaCapo profiles: SOLERO throughput relative to Lock.
pub fn fig16(h: &HarnessConfig) -> Table {
    let threads = if h.quick { 2 } else { 4 };
    let cfg = h.run(threads);
    let mut t = Table::new(
        format!("Figure 16: DaCapo profiles ({threads} threads), SOLERO vs Lock"),
        &["Benchmark", "read-only %", "SOLERO/Lock"],
    );
    for p in DACAPO_PROFILES {
        let lock = {
            let b = DacapoBench::new(p, threads, LockStrategy::new);
            measure(&cfg, |tt, rng| b.op(tt, rng), || b.snapshot()).ops_per_sec
        };
        let so = {
            let b = DacapoBench::new(p, threads, SoleroStrategy::new);
            measure(&cfg, |tt, rng| b.op(tt, rng), || b.snapshot()).ops_per_sec
        };
        t.row(vec![
            p.name.into(),
            format!("{:.1}", p.read_only_ratio * 100.0),
            f3(so / lock),
        ]);
    }
    t
}

/// Ablation A — the fallback threshold (§3.2: "the fallback occurs
/// after one failure. This can be expanded so that the fallback occurs
/// after a larger number of failures"). Measures HashMap 5% writes at
/// the highest thread count.
pub fn ablation_fallback(h: &HarnessConfig) -> Table {
    let threads = *h.thread_counts().last().unwrap();
    let cfg = h.run(threads);
    let mut t = Table::new(
        format!("Ablation: fallback threshold (HashMap 5% writes, {threads} threads)"),
        &["threshold", "Mops/s", "failure ratio", "fallbacks/op"],
    );
    for (thr, label) in [
        (1u32, "1 (paper)"),
        (2, "2"),
        (4, "4"),
        (8, "8"),
        (16, "16"),
    ] {
        let sc = SoleroConfig::builder().retries(thr).build();
        let m = measure_map(&cfg, MapConfig::paper(MapKind::Hash, 5, 1), move || {
            Box::new(SoleroStrategy::configured(sc))
        });
        let ops = m.stats.total_sections().max(1);
        t.row(vec![
            label.into(),
            f3(m.ops_per_sec / 1e6),
            pct(m.stats.failure_ratio()),
            format!("{:.4}", m.stats.fallback_acquires as f64 / ops as f64),
        ]);
    }
    t
}

/// Ablation B — the deterministic check-point validation period (§3.3's
/// loop-break machinery): denser validation detects stale speculation
/// sooner but taxes every loop iteration. TreeMap 5% writes.
pub fn ablation_checkpoint(h: &HarnessConfig) -> Table {
    let threads = *h.thread_counts().last().unwrap();
    let cfg = h.run(threads);
    let mut t = Table::new(
        format!("Ablation: check-point period (TreeMap 5% writes, {threads} threads)"),
        &["period", "Mops/s", "failure ratio", "validations/op"],
    );
    for (period, label) in [
        (1u64, "1 (validate every poll)"),
        (4, "4"),
        (16, "16"),
        (1024, "1024 (default)"),
        (0, "events only"),
    ] {
        let sc = SoleroConfig::builder().checkpoint_period(period).build();
        let m = measure_map(&cfg, MapConfig::paper(MapKind::Tree, 5, 1), move || {
            Box::new(SoleroStrategy::configured(sc))
        });
        let ops = m.stats.total_sections().max(1);
        t.row(vec![
            label.into(),
            f3(m.ops_per_sec / 1e6),
            pct(m.stats.failure_ratio()),
            format!("{:.4}", m.stats.async_validations as f64 / ops as f64),
        ]);
    }
    t
}

/// Extra experiment — per-operation latency percentiles (not in the
/// paper; shows the tail benefit of never blocking readers).
pub fn latency(h: &HarnessConfig) -> Table {
    use solero_workloads::latency::measure_latency;
    let threads = *h.thread_counts().last().unwrap();
    let samples = if h.quick { 20_000 } else { 100_000 };
    let mut t = Table::new(
        format!("Latency: HashMap get, 5% writes, {threads} threads (ns, bucket upper bounds)"),
        &["Implementation", "p50", "p90", "p99", "p99.9"],
    );
    let mc = MapConfig::paper(MapKind::Hash, 5, 1);
    let mut row = |name: &str, r: solero_workloads::latency::LatencyReport| {
        t.row(vec![
            name.into(),
            r.p50.to_string(),
            r.p90.to_string(),
            r.p99.to_string(),
            r.p999.to_string(),
        ]);
    };
    {
        let b = MapBench::new(mc, LockStrategy::new);
        row("Lock", measure_latency(threads, samples, |tt, rng| b.op(tt, rng)));
    }
    {
        let b = MapBench::new(mc, RwStrategy::<JavaRwLock>::new);
        row("RWLock", measure_latency(threads, samples, |tt, rng| b.op(tt, rng)));
    }
    {
        let b = MapBench::new(mc, BravoStrategy::new);
        row("BRAVO-RW", measure_latency(threads, samples, |tt, rng| b.op(tt, rng)));
    }
    {
        let b = MapBench::new(mc, SoleroStrategy::new);
        row("SOLERO", measure_latency(threads, samples, |tt, rng| b.op(tt, rng)));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig { quick: true }
    }

    #[test]
    fn fig10_produces_seven_rows() {
        let t = fig10(&tiny());
        assert_eq!(t.len(), 7);
        let csv = t.to_csv();
        assert!(csv.contains("WeakBarrier-SOLERO"));
        assert!(csv.contains("Adaptive-SOLERO"));
        assert!(csv.contains("BRAVO-RW"));
    }

    #[test]
    fn fleet_registry_carries_every_contender() {
        let fleet = fleet();
        for required in [
            "Lock",
            "RWLock",
            "BRAVO-RW",
            "SOLERO",
            "Adaptive-SOLERO",
            "SeqLock",
        ] {
            assert!(
                fleet.iter().any(|e| e.name == required),
                "the sweep fleet must include {required}"
            );
        }
        assert_eq!(fleet[0].name, "Lock", "sweeps normalize to Lock");
        let header = fleet_header("threads");
        assert_eq!(header.len(), fleet.len() + 1);
        assert_eq!(header[0], "threads");
        // Every fleet factory really produces its advertised name.
        for e in fleet {
            assert_eq!((e.make)().name(), e.name);
        }
    }

    #[test]
    fn table1_has_ten_rows() {
        assert_eq!(table1(&tiny()).len(), 10);
    }

    #[test]
    fn fig15_includes_the_reason_breakdown() {
        let tables = fig15(&tiny());
        assert_eq!(tables.len(), 2);
        let csv = tables[1].to_csv();
        for reason in [
            "locked_at_entry",
            "word_changed_at_exit",
            "async_revalidation_fail",
            "retry_exhausted_fallback",
            "inflation",
        ] {
            assert!(csv.contains(reason), "missing column {reason}:\n{csv}");
        }
        // threads × four workloads rows.
        assert_eq!(tables[1].len(), tiny().thread_counts().len() * 4);
    }
}
