//! Plain-text tables and CSV output for the reproduction harness.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table that can also serialize itself as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(s, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(s, "  {:>w$}", c, w = widths[i]);
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }

    /// CSV form (header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to the other results.
    ///
    /// # Errors
    ///
    /// I/O errors from creating the directory or writing the file.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(name), self.to_csv())
    }
}

/// Renders an observability snapshot's abort-reason counts as a table
/// (the tabular companion to `solero_obs::report::render`).
pub fn obs_abort_table(snap: &solero_obs::ObsSnapshot) -> Table {
    let mut t = Table::new("Lock-event aborts by reason", &["reason", "count", "share"]);
    let total = snap.abort_total();
    for (reason, &count) in solero_obs::AbortReason::ALL.iter().zip(&snap.aborts) {
        t.row(vec![
            reason.name().into(),
            count.to_string(),
            if total == 0 {
                "-".into()
            } else {
                pct(count as f64 / total as f64)
            },
        ]);
    }
    t
}

/// Renders per-strategy section-latency percentiles as a table.
pub fn obs_latency_table(snap: &solero_obs::ObsSnapshot) -> Table {
    let mut t = Table::new(
        "Section latency by strategy (ns, log2-bucket upper bounds)",
        &["strategy", "kind", "count", "mean", "p50", "p99"],
    );
    for s in &snap.sections {
        t.row(vec![
            s.strategy.clone(),
            s.kind.name().into(),
            s.hist.count().to_string(),
            f3(s.hist.mean()),
            s.hist.percentile(0.50).to_string(),
            s.hist.percentile(0.99).to_string(),
        ]);
    }
    t
}

/// Formats a float with 3 significant digits of padding for tables.
pub fn f3(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["x,y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    fn obs_tables_render_from_a_snapshot() {
        let mut snap = solero_obs::ObsSnapshot::default();
        snap.aborts = [3, 1, 0, 0, 0];
        let t = obs_abort_table(&snap);
        assert_eq!(t.len(), 5);
        let csv = t.to_csv();
        assert!(csv.contains("locked_at_entry,3,75.0%"), "{csv}");
        assert!(obs_latency_table(&snap).is_empty());
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(123.4), "123");
        assert_eq!(f3(12.34), "12.3");
        assert_eq!(f3(1.234), "1.23");
        assert_eq!(f3(f64::INFINITY), "-");
        assert_eq!(pct(0.236), "23.6%");
    }
}
