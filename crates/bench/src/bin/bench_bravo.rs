//! `bench_bravo` — reader-throughput sweep of the BRAVO biased lock
//! against the plain `RWLock` baseline, emitted as `BENCH_bravo.json`.
//!
//! ```text
//! bench_bravo [--quick] [--out PATH]
//! ```
//!
//! A fixed budget of read acquire/release pairs is split evenly across
//! 1, 4, 16 and 64 threads hammering one lock with **no writers** — the
//! workload BRAVO's bias is built for. `JavaRwLock` pays its shared
//! lock-word CAS and the `READ_HOLDS` reentrancy map on every pair;
//! biased `BravoLock` readers publish into the per-thread visible-
//! readers slot instead, so the per-op cost (and, on multicore hosts,
//! the coherence traffic) collapses. Each cell reports the measured
//! reads/s plus the fast/slow taxonomy; the headline number is the
//! BRAVO-vs-RWLock speedup at the widest cell.

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Instant;

use solero_rwlock::{BravoLock, JavaRwLock, RawRwLock};

const THREAD_COUNTS: [usize; 4] = [1, 4, 16, 64];

struct Cell {
    threads: usize,
    reads: u64,
    secs: f64,
    fast_reads: u64,
    slow_reads: u64,
}

impl Cell {
    fn mreads_per_sec(&self) -> f64 {
        self.reads as f64 / self.secs / 1e6
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"reads\":{},\"secs\":{:.6},\"mreads_per_sec\":{:.4},\
             \"fast_reads\":{},\"slow_reads\":{}}}",
            self.threads,
            self.reads,
            self.secs,
            self.mreads_per_sec(),
            self.fast_reads,
            self.slow_reads
        )
    }
}

/// One cell: `threads` workers splitting `total` read sections over a
/// single fresh lock, started together off a barrier.
fn run_cell<L: RawRwLock>(threads: usize, total: u64) -> Cell {
    let lock = L::default();
    let per = total / threads as u64;
    let start = Barrier::new(threads + 1);
    let t0 = std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                start.wait();
                for _ in 0..per {
                    let g = lock.read();
                    std::hint::black_box(&g);
                }
            });
        }
        // Clock starts *before* the barrier releases: if it started
        // after, the main thread could be descheduled across the
        // release and wake with the work already done, crediting the
        // lock with absurd throughput. This way the elapsed time can
        // only be overestimated, which best-of-N repeats then trims.
        let t0 = Instant::now();
        start.wait();
        t0
    });
    let secs = t0.elapsed().as_secs_f64();
    let snap = lock.stats().snapshot();
    assert_eq!(snap.read_enters, per * threads as u64, "lost reads");
    Cell {
        threads,
        reads: per * threads as u64,
        secs,
        fast_reads: snap.elision_success,
        slow_reads: snap.read_slow_enters,
    }
}

/// Best-of-`repeats` per cell, with the two locks interleaved inside
/// each repeat round: on a shared (single-core CI) host, steal time and
/// frequency drift swamp a single timing, and interleaving keeps a slow
/// patch from landing entirely on one contender.
fn run_sweep(total: u64, repeats: usize) -> (Vec<Cell>, Vec<Cell>) {
    let mut rw: Vec<Option<Cell>> = (0..THREAD_COUNTS.len()).map(|_| None).collect();
    let mut bravo: Vec<Option<Cell>> = (0..THREAD_COUNTS.len()).map(|_| None).collect();
    let keep_best = |slot: &mut Option<Cell>, c: Cell| {
        if slot.as_ref().is_none_or(|b| c.secs < b.secs) {
            *slot = Some(c);
        }
    };
    for round in 0..repeats {
        eprintln!("  repeat {}/{repeats}", round + 1);
        for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
            keep_best(&mut rw[i], run_cell::<JavaRwLock>(threads, total));
            keep_best(&mut bravo[i], run_cell::<BravoLock>(threads, total));
        }
    }
    let unwrap = |cells: Vec<Option<Cell>>, name: &str| -> Vec<Cell> {
        let cells: Vec<Cell> = cells.into_iter().map(Option::unwrap).collect();
        for c in &cells {
            eprintln!(
                "  [{name:>8}] {:>2} threads: {:>8.3} Mreads/s ({} fast / {} slow)",
                c.threads,
                c.mreads_per_sec(),
                c.fast_reads,
                c.slow_reads
            );
        }
        cells
    };
    (
        unwrap(rw, <JavaRwLock as RawRwLock>::NAME),
        unwrap(bravo, <BravoLock as RawRwLock>::NAME),
    )
}

fn cells_json(cells: &[Cell]) -> String {
    cells.iter().map(Cell::to_json).collect::<Vec<_>>().join(",\n      ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_bravo.json"));
    // 64 threads must divide the budget evenly.
    let total: u64 = if quick { 64 * 1_000 } else { 64 * 100_000 };
    let repeats = if quick { 1 } else { 7 };

    eprintln!("bench_bravo: {total} reads per cell, threads {THREAD_COUNTS:?}, best of {repeats}");
    let (rw_cells, bravo_cells) = run_sweep(total, repeats);
    let (rw_json, bravo_json) = (cells_json(&rw_cells), cells_json(&bravo_cells));

    let widest = THREAD_COUNTS.len() - 1;
    let speedup = bravo_cells[widest].mreads_per_sec() / rw_cells[widest].mreads_per_sec();
    eprintln!(
        "BRAVO-RW vs RWLock at {} threads: {speedup:.2}x",
        THREAD_COUNTS[widest]
    );

    // Assembled by hand like BENCH_adaptive.json: JsonObject has no
    // nested values, and the document must stay `solero_obs::json`
    // re-parseable (covered by tests/bench_artifacts.rs-style checks).
    let doc = format!(
        "{{\n  \"workload\": \"read-storm\",\n  \
         \"reads_per_cell\": {total},\n  \
         \"thread_counts\": [1, 4, 16, 64],\n  \
         \"speedup_at_64_threads\": {speedup:.4},\n  \
         \"runs\": [\n    \
         {{\"strategy\": \"{}\", \"cells\": [\n      {rw_json}\n    ]}},\n    \
         {{\"strategy\": \"{}\", \"cells\": [\n      {bravo_json}\n    ]}}\n  ]\n}}\n",
        <JavaRwLock as RawRwLock>::NAME,
        <BravoLock as RawRwLock>::NAME,
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
}
