//! `bench_compact` — the footprint claim of the compact-monitor issue,
//! emitted as `BENCH_compact.json`.
//!
//! ```text
//! bench_compact [--quick] [--out PATH]
//! ```
//!
//! **Footprint sweep** — a heap full of two-slot objects whose slot 0
//! *is* the lock: the compact scheme's entire per-object cost is that
//! one eight-byte word, with the config, statistics and abort history
//! amortised across the shared [`CompactSpace`] and every inflated
//! structure living in the global monitor table only while it is
//! needed. The sweep locks and elides on every object, drives a slice
//! of them through a full inflate → deflate cycle, and then *asserts*
//! the claim: side bytes per object (space + residual table entries)
//! must stay under one byte, and the monitor table must drain back to
//! its starting size once the heap is quiescent. The baseline is
//! `size_of::<SoleroLock>()` — the standalone lock carries its word,
//! the displaced-counter cell, a config copy, the full stats block and
//! the abort history inline, per lock.
//!
//! **Hot-object sweep** — a fixed budget of validated pair-reads on one
//! object, 1 and 4 threads, compact elision vs the standalone
//! `SoleroLock` over the same heap: the compact protocol keeps the
//! counter inside the word, so this measures what the table-backed
//! design costs (or doesn't) on the elided fast path.

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Instant;

use solero::{CompactSpace, Fault, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_runtime::osmonitor::MonitorTable;
use solero_runtime::thread::ThreadId;

const NODE: ClassId = ClassId::new(77);
/// Slots per object: the compact lock word plus two payload words.
const SLOTS: u32 = 3;
/// Every `INFLATE_STRIDE`-th object runs a full inflate → deflate
/// cycle during the footprint sweep.
const INFLATE_STRIDE: usize = 256;
/// Comfortably past `SOLERO_RECURSION_MAX` (31): recursion saturation
/// inflates deterministically on one thread.
const NEST_DEPTH: usize = 40;
const READ_THREADS: [usize; 2] = [1, 4];

struct Cell {
    label: &'static str,
    threads: usize,
    ops: u64,
    secs: f64,
    elision_success: u64,
    fallback_acquires: u64,
}

impl Cell {
    fn ns_per_op(&self) -> f64 {
        self.secs * 1e9 / self.ops as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"threads\":{},\"ops\":{},\"secs\":{:.6},\
             \"ns_per_op\":{:.2},\"elision_success\":{},\"fallback_acquires\":{}}}",
            self.label,
            self.threads,
            self.ops,
            self.secs,
            self.ns_per_op(),
            self.elision_success,
            self.fallback_acquires
        )
    }
}

/// Barrier-started timing shared by every cell (same shape as
/// `bench_seqlock`): the clock can only overestimate, never undercount.
fn timed(threads: usize, body: impl Fn(usize) + Sync) -> f64 {
    let start = Barrier::new(threads + 1);
    let t0 = std::thread::scope(|s| {
        for id in 0..threads {
            let (start, body) = (&start, &body);
            s.spawn(move || {
                start.wait();
                body(id);
            });
        }
        let t0 = Instant::now();
        start.wait();
        t0
    });
    t0.elapsed().as_secs_f64()
}

struct Footprint {
    objects: usize,
    inflate_cycles: u64,
    table_before: usize,
    table_after: usize,
    compact_word_bytes: usize,
    compact_side_bytes_per_object: f64,
    solero_bytes_per_lock: usize,
    inflations: u64,
    deflations: u64,
}

/// The footprint sweep: every object gets a write section and a
/// validated elided read through its in-slot word; every
/// `INFLATE_STRIDE`-th additionally runs a recursion-saturated
/// inflate → deflate cycle. Asserts the two halves of the claim.
fn run_footprint(objects: usize) -> Footprint {
    let table = MonitorTable::global();
    let table_before = table.len();
    let heap = Heap::new(objects * (1 + SLOTS as usize) + 8);
    let space = CompactSpace::new();
    let tid = ThreadId::current();

    let mut refs = Vec::with_capacity(objects);
    for _ in 0..objects {
        refs.push(heap.alloc(NODE, SLOTS).expect("sized for the sweep"));
    }

    let mut inflate_cycles = 0u64;
    for (i, &obj) in refs.iter().enumerate() {
        let key = heap.lock_key(obj, 0).expect("slot 0 is the lock word");
        let word = heap.slot_atomic(obj, 0).expect("slot 0 is the lock word");
        let r = space.lock(word, key);
        r.write(|| {
            heap.store_plain(obj, 1, i as u64).unwrap();
            heap.store_plain(obj, 2, i as u64).unwrap();
        });
        let (a, b) = r
            .read_only(|| {
                Ok::<_, Fault>((
                    heap.load_plain(obj, NODE, 1)?,
                    heap.load_plain(obj, NODE, 2)?,
                ))
            })
            .expect("pure reads cannot genuinely fault");
        assert_eq!(a, b, "torn footprint read");
        if i % INFLATE_STRIDE == 0 {
            // Drive this object's word fat and back: the monitor entry
            // must exist only between the inflate and the deflate.
            for _ in 0..NEST_DEPTH {
                r.enter_write(tid);
            }
            assert!(r.is_inflated(), "recursion saturation must inflate");
            for _ in 0..NEST_DEPTH {
                r.exit_write(tid);
            }
            assert!(!r.is_inflated(), "final exit deflates");
            assert!(!r.monitor_resident(), "deflation prunes the entry");
            inflate_cycles += 1;
        }
    }

    let table_after = table.len();
    assert!(
        table_after <= table_before,
        "monitor table must drain once the heap is quiescent: \
         {table_before} -> {table_after}"
    );
    // Side bytes: everything the compact scheme needs beyond the
    // in-object word — one shared space per heap plus whatever the
    // table still holds (one shard map entry per residual monitor,
    // conservatively costed at a cache line each).
    let residual = table_after.saturating_sub(table_before);
    let side = (std::mem::size_of::<CompactSpace>() + residual * 64) as f64
        / objects as f64;
    assert!(
        side < 1.0,
        "compact side footprint must stay near zero: {side:.4} bytes/object"
    );

    let s = space.stats().snapshot();
    assert!(s.inflations >= inflate_cycles, "{s:?}");
    assert!(s.deflations <= s.inflations, "{s:?}");
    Footprint {
        objects,
        inflate_cycles,
        table_before,
        table_after,
        compact_word_bytes: std::mem::size_of::<u64>(),
        compact_side_bytes_per_object: side,
        solero_bytes_per_lock: std::mem::size_of::<SoleroLock>(),
        inflations: s.inflations,
        deflations: s.deflations,
    }
}

/// Hot-object compact cell: validated pair-reads through one in-slot
/// word, elided by the compact protocol.
fn run_compact_reads(threads: usize, total: u64) -> Cell {
    let heap = Heap::new(64);
    let space = CompactSpace::new();
    let obj = heap.alloc(NODE, SLOTS).expect("bench heap is large enough");
    heap.store_plain(obj, 1, 7).unwrap();
    heap.store_plain(obj, 2, 7).unwrap();
    let key = heap.lock_key(obj, 0).unwrap();
    let word = heap.slot_atomic(obj, 0).unwrap();
    let per = total / threads as u64;
    let secs = timed(threads, |_| {
        let r = space.lock(word, key);
        for _ in 0..per {
            let pair = r
                .read_only(|| {
                    Ok::<_, Fault>((
                        heap.load_plain(obj, NODE, 1)?,
                        heap.load_plain(obj, NODE, 2)?,
                    ))
                })
                .expect("no genuine faults in the read sweep");
            std::hint::black_box(pair);
        }
    });
    let s = space.stats().snapshot();
    assert_eq!(s.read_enters, per * threads as u64, "lost compact reads");
    Cell {
        label: "compact",
        threads,
        ops: per * threads as u64,
        secs,
        elision_success: s.elision_success,
        fallback_acquires: s.fallback_acquires,
    }
}

/// Baseline cell: the same pair behind a standalone `SoleroLock`.
fn run_solero_reads(threads: usize, total: u64) -> Cell {
    let heap = Heap::new(64);
    let lock = SoleroLock::new();
    let obj = heap.alloc(NODE, SLOTS).expect("bench heap is large enough");
    heap.store_plain(obj, 1, 7).unwrap();
    heap.store_plain(obj, 2, 7).unwrap();
    let per = total / threads as u64;
    let secs = timed(threads, |_| {
        for _ in 0..per {
            let pair = lock
                .read_only(|_| {
                    Ok::<_, Fault>((
                        heap.load_plain(obj, NODE, 1)?,
                        heap.load_plain(obj, NODE, 2)?,
                    ))
                })
                .expect("no genuine faults in the read sweep");
            std::hint::black_box(pair);
        }
    });
    let s = lock.stats().snapshot();
    assert_eq!(s.read_enters, per * threads as u64, "lost solero reads");
    Cell {
        label: "solero",
        threads,
        ops: per * threads as u64,
        secs,
        elision_success: s.elision_success,
        fallback_acquires: s.fallback_acquires,
    }
}

fn best(repeats: usize, run: impl Fn() -> Cell) -> Cell {
    (0..repeats)
        .map(|_| run())
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("at least one repeat")
}

fn cells_json(cells: &[Cell]) -> String {
    cells.iter().map(Cell::to_json).collect::<Vec<_>>().join(",\n      ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_compact.json"));
    let objects: usize = if quick { 50_000 } else { 2_000_000 };
    let reads: u64 = if quick { 4 * 4_000 } else { 4 * 200_000 };
    let repeats = if quick { 1 } else { 5 };

    eprintln!(
        "bench_compact: {objects} objects in the footprint sweep \
         (inflate every {INFLATE_STRIDE}th), {reads} reads per hot cell \
         (threads {READ_THREADS:?}), best of {repeats}"
    );

    let fp = run_footprint(objects);
    eprintln!(
        "  [footprint] word {} B + {:.4} side B/object (SoleroLock {} B); \
         {} inflate cycles, table {} -> {}",
        fp.compact_word_bytes,
        fp.compact_side_bytes_per_object,
        fp.solero_bytes_per_lock,
        fp.inflate_cycles,
        fp.table_before,
        fp.table_after
    );

    // Warm both contenders untimed (first-touch costs; quick mode has
    // no repeats to trim them).
    std::hint::black_box(run_compact_reads(1, 4_000));
    std::hint::black_box(run_solero_reads(1, 4_000));

    let mut cells = Vec::new();
    for &threads in &READ_THREADS {
        let compact = best(repeats, || run_compact_reads(threads, reads));
        let solero = best(repeats, || run_solero_reads(threads, reads));
        eprintln!(
            "  [reads] {threads} threads: compact {:>8.2} ns/op, solero {:>8.2} ns/op ({:.2}x)",
            compact.ns_per_op(),
            solero.ns_per_op(),
            compact.ns_per_op() / solero.ns_per_op()
        );
        cells.push(compact);
        cells.push(solero);
    }
    let hot_ratio = cells[0].ns_per_op() / cells[1].ns_per_op();

    // Assembled by hand like the other BENCH_* documents: flat objects
    // only, `solero_obs::json` re-parseable.
    let doc = format!(
        "{{\n  \"workload\": \"compact-monitor-footprint\",\n  \
         \"objects\": {},\n  \
         \"inflate_cycles\": {},\n  \
         \"compact_word_bytes\": {},\n  \
         \"compact_side_bytes_per_object\": {:.6},\n  \
         \"solero_bytes_per_lock\": {},\n  \
         \"table_before\": {},\n  \
         \"table_after\": {},\n  \
         \"inflations\": {},\n  \
         \"deflations\": {},\n  \
         \"compact_vs_solero_hot_read\": {hot_ratio:.4},\n  \
         \"read_cells\": [\n      {}\n  ]\n}}\n",
        fp.objects,
        fp.inflate_cycles,
        fp.compact_word_bytes,
        fp.compact_side_bytes_per_object,
        fp.solero_bytes_per_lock,
        fp.table_before,
        fp.table_after,
        fp.inflations,
        fp.deflations,
        cells_json(&cells),
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
}
