//! `obs_smoke` — end-to-end exercise of the observability layer.
//!
//! Built only with `--features obs-trace`. Installs a [`TraceRecorder`],
//! runs a short hostile HashMap workload over the boxed strategy fleet
//! (so aborts of several flavors actually occur), exports the JSONL
//! trace to `results/obs.jsonl`, and prints the human-readable report
//! plus the abort/latency tables. `obs_check` then validates the file
//! against the schema in CI.

use std::path::Path;

use solero_bench::report::{obs_abort_table, obs_latency_table};
use solero_obs::TraceRecorder;
use solero_testkit::rng::TestRng;
use solero_workloads::driver::{export_obs, measure, RunConfig};
use solero_workloads::maps::{MapBench, MapConfig, MapKind};

fn main() {
    if !solero_obs::install(Box::new(TraceRecorder::new())) {
        eprintln!("obs_smoke: a recorder was already installed");
        std::process::exit(1);
    }

    // A write-heavy, contended configuration so speculative readers
    // abort for real reasons: 4 threads, one shared map, 20% writes.
    let cfg = RunConfig {
        threads: 4,
        warmup: std::time::Duration::from_millis(10),
        window: std::time::Duration::from_millis(50),
        windows: 2,
        runs: 1,
    };
    for entry in solero_bench::figures::fleet() {
        let b = MapBench::new_boxed(MapConfig::paper(MapKind::Hash, 20, 1), entry.make);
        let m = measure(&cfg, |t, rng: &mut TestRng| b.op(t, rng), || b.snapshot());
        println!("{:>15}: {:.0} ops/s", entry.name, m.ops_per_sec);
    }

    let path = Path::new("results/obs.jsonl");
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("obs_smoke: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    match export_obs(path) {
        Ok(Some(report)) => {
            println!("{report}");
            let rec = solero_obs::recorder().expect("recorder installed above");
            let snap = rec.snapshot();
            print!("{}", obs_abort_table(&snap).render());
            print!("{}", obs_latency_table(&snap).render());
            println!("wrote {}", path.display());
            if snap.events_recorded == 0 {
                eprintln!("obs_smoke: tracing recorded no events");
                std::process::exit(1);
            }
        }
        Ok(None) => {
            eprintln!("obs_smoke: recorder vanished after install");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("obs_smoke: export failed: {e}");
            std::process::exit(1);
        }
    }
}
