//! `bench_seqlock` — the two deltas of the inline-seqlock issue,
//! emitted as `BENCH_seqlock.json`.
//!
//! ```text
//! bench_seqlock [--quick] [--out PATH]
//! ```
//!
//! **Read sweep** — a fixed budget of validated pair-reads split across
//! 1, 4 and 16 threads, inline vs heap-backed. The inline cell is
//! `SeqLock<[u64; 2]>::read_inline()`: the payload words sit beside the
//! sequence word, so a read is a handful of same-line loads. The
//! heap-backed cell reads the same pair through the SOLERO elision
//! protocol over `solero-heap` — handle decode, class check, bounds
//! check and the header indirection on every word. Both validate
//! against a sequence word and neither writes it, so the per-op gap is
//! exactly the indirection the inline layout deletes.
//!
//! **Fallback storm** — 16 threads (deliberately oversubscribed; CI
//! hosts may have a single core) each mixing 50% *stretched*
//! `update_inline` writes into their reads on one lock, so writers get
//! preempted while the word is odd and the retry-exhausted fallback
//! plus the slow write path carry the traffic. Run once with
//! `ContentionConfig::naive()` — the fixed spin cadence the pre-manager
//! code used, which never yields and never escalates, so every
//! contender burns its whole quantum while the preempted holder waits
//! for the CPU — and once with the default history-keyed manager,
//! whose escalating back-off crosses the yield threshold and hands the
//! core back. The managed cells report `contention_backoffs` so the
//! waits are attributable, and the headline is the managed/naive
//! throughput ratio.

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Instant;

use solero::{Fault, SeqLock, SoleroConfig, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_runtime::contention::ContentionConfig;
use solero_testkit::TestRng;

const READ_THREADS: [usize; 3] = [1, 4, 16];
const STORM_THREADS: usize = 16;
const PAIR: ClassId = ClassId::new(42);

struct Cell {
    label: &'static str,
    threads: usize,
    ops: u64,
    secs: f64,
    fallback_acquires: u64,
    contention_backoffs: u64,
}

impl Cell {
    fn mops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs / 1e6
    }

    fn ns_per_op(&self) -> f64 {
        self.secs * 1e9 / self.ops as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"threads\":{},\"ops\":{},\"secs\":{:.6},\
             \"mops_per_sec\":{:.4},\"ns_per_op\":{:.2},\
             \"fallback_acquires\":{},\"contention_backoffs\":{}}}",
            self.label,
            self.threads,
            self.ops,
            self.secs,
            self.mops_per_sec(),
            self.ns_per_op(),
            self.fallback_acquires,
            self.contention_backoffs
        )
    }
}

/// Barrier-started timing shared by every cell; the clock starts before
/// the release so elapsed time can only be overestimated (best-of-N
/// repeats then trims), never undercounted.
fn timed(threads: usize, body: impl Fn(usize) + Sync) -> f64 {
    let start = Barrier::new(threads + 1);
    let t0 = std::thread::scope(|s| {
        for id in 0..threads {
            let (start, body) = (&start, &body);
            s.spawn(move || {
                start.wait();
                body(id);
            });
        }
        let t0 = Instant::now();
        start.wait();
        t0
    });
    t0.elapsed().as_secs_f64()
}

/// Inline read cell: validated pair-reads straight off the lock's own
/// cache line.
fn run_inline_reads(threads: usize, total: u64) -> Cell {
    let lock = SeqLock::new([7u64, 7]);
    let per = total / threads as u64;
    let secs = timed(threads, |_| {
        for _ in 0..per {
            let pair = lock.read_inline();
            std::hint::black_box(pair);
        }
    });
    let s = lock.stats().snapshot();
    assert_eq!(s.read_enters, per * threads as u64, "lost inline reads");
    Cell {
        label: "inline",
        threads,
        ops: per * threads as u64,
        secs,
        fallback_acquires: s.fallback_acquires,
        contention_backoffs: s.contention_backoffs,
    }
}

/// Heap-backed read cell: the same validated pair, but behind SOLERO's
/// elided read section over `solero-heap` handles.
fn run_heap_reads(threads: usize, total: u64) -> Cell {
    let lock = SoleroLock::new();
    let heap = Heap::new(64);
    let obj = heap.alloc(PAIR, 2).expect("bench heap is large enough");
    heap.store_plain(obj, 0, 7).unwrap();
    heap.store_plain(obj, 1, 7).unwrap();
    let per = total / threads as u64;
    let secs = timed(threads, |_| {
        for _ in 0..per {
            let pair = lock
                .read_only(|_| {
                    let a = heap.load_plain(obj, PAIR, 0)?;
                    let b = heap.load_plain(obj, PAIR, 1)?;
                    Ok::<_, Fault>((a, b))
                })
                .expect("no genuine faults in the read sweep");
            std::hint::black_box(pair);
        }
    });
    let s = lock.stats().snapshot();
    assert_eq!(s.read_enters, per * threads as u64, "lost heap reads");
    Cell {
        label: "heap",
        threads,
        ops: per * threads as u64,
        secs,
        fallback_acquires: s.fallback_acquires,
        contention_backoffs: s.contention_backoffs,
    }
}

/// Fallback-storm cell: every thread mixes 25% coupled-pair writes into
/// its reads, under the given contention policy.
fn run_storm(label: &'static str, contention: ContentionConfig, total: u64) -> Cell {
    let lock = SeqLock::with_config(
        SoleroConfig::builder().contention(contention).build(),
        [0u64; 2],
    );
    let per = total / STORM_THREADS as u64;
    let secs = timed(STORM_THREADS, |id| {
        let mut rng = TestRng::derive(0x5EC_10CC, id as u64);
        for _ in 0..per {
            if rng.gen_range(0u32..2) == 0 {
                lock.update_inline(|v| {
                    // Stretch the hold so writers are regularly
                    // preempted mid-section — the shape that separates
                    // yielding back-off from blind spinning.
                    for _ in 0..1024 {
                        std::hint::spin_loop();
                    }
                    v[0] += 1;
                    v[1] += 1;
                });
            } else {
                let [a, b] = lock.read_inline();
                assert_eq!(a, b, "storm read observed a torn pair");
            }
        }
    });
    let s = lock.stats().snapshot();
    assert_eq!(
        s.read_enters + s.write_enters,
        per * STORM_THREADS as u64,
        "lost storm ops"
    );
    Cell {
        label,
        threads: STORM_THREADS,
        ops: per * STORM_THREADS as u64,
        secs,
        fallback_acquires: s.fallback_acquires,
        contention_backoffs: s.contention_backoffs,
    }
}

fn best(repeats: usize, run: impl Fn() -> Cell) -> Cell {
    (0..repeats)
        .map(|_| run())
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("at least one repeat")
}

fn cells_json(cells: &[Cell]) -> String {
    cells.iter().map(Cell::to_json).collect::<Vec<_>>().join(",\n      ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_seqlock.json"));
    // 16 threads must divide both budgets evenly.
    let reads: u64 = if quick { 16 * 4_000 } else { 16 * 200_000 };
    let storm_ops: u64 = if quick { 16 * 250 } else { 16 * 4_000 };
    let repeats = if quick { 1 } else { 5 };

    eprintln!(
        "bench_seqlock: {reads} reads per read cell (threads {READ_THREADS:?}), \
         {storm_ops} storm ops at {STORM_THREADS} threads, best of {repeats}"
    );

    // Warm both contenders untimed first: the very first cell otherwise
    // pays every one-time cost (lazy TLS, first page touches) and the
    // quick mode has no repeats to trim it.
    std::hint::black_box(run_inline_reads(1, 4_000));
    std::hint::black_box(run_heap_reads(1, 4_000));

    let mut read_cells = Vec::new();
    for &threads in &READ_THREADS {
        // Interleave the contenders inside each thread count so a slow
        // patch on a shared host cannot land entirely on one of them.
        let inline = best(repeats, || run_inline_reads(threads, reads));
        let heap = best(repeats, || run_heap_reads(threads, reads));
        eprintln!(
            "  [reads] {threads:>2} threads: inline {:>8.2} ns/op, heap {:>8.2} ns/op ({:.2}x)",
            inline.ns_per_op(),
            heap.ns_per_op(),
            heap.ns_per_op() / inline.ns_per_op()
        );
        read_cells.push(inline);
        read_cells.push(heap);
    }
    let inline_gap = read_cells[1].ns_per_op() / read_cells[0].ns_per_op();

    let naive = best(repeats, || {
        run_storm("storm-naive", ContentionConfig::naive(), storm_ops)
    });
    let managed = best(repeats, || {
        run_storm("storm-managed", ContentionConfig::default(), storm_ops)
    });
    let storm_ratio = managed.mops_per_sec() / naive.mops_per_sec();
    eprintln!(
        "  [storm] {STORM_THREADS} threads: naive {:>7.3} Mops/s, managed {:>7.3} Mops/s \
         ({storm_ratio:.2}x, {} managed backoffs)",
        naive.mops_per_sec(),
        managed.mops_per_sec(),
        managed.contention_backoffs
    );

    // Assembled by hand like BENCH_bravo.json: no nested values beyond
    // arrays of flat objects, `solero_obs::json` re-parseable.
    let doc = format!(
        "{{\n  \"workload\": \"seqlock-inline-and-fallback-storm\",\n  \
         \"reads_per_cell\": {reads},\n  \
         \"storm_ops\": {storm_ops},\n  \
         \"storm_threads\": {STORM_THREADS},\n  \
         \"inline_speedup_single_thread\": {inline_gap:.4},\n  \
         \"managed_vs_naive_storm\": {storm_ratio:.4},\n  \
         \"read_cells\": [\n      {}\n  ],\n  \
         \"storm_cells\": [\n      {}\n  ]\n}}\n",
        cells_json(&read_cells),
        cells_json(&[naive, managed]),
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
}
