//! `bench_store` — the MVCC snapshot store under open-loop Zipfian
//! traffic, swept over the full strategy fleet and emitted as
//! `BENCH_store.json`.
//!
//! ```text
//! bench_store [--quick] [--out PATH]
//! ```
//!
//! Unlike every other bench in the repo this one is **open-loop**: each
//! worker fires get/scan/put operations on a fixed arrival schedule and
//! latency is measured intended-start → completion, so a stalled lock
//! is charged for every operation it displaces (no coordinated
//! omission). Keys are Zipfian (θ = 0.99 over ≥1M keys in the full
//! run), scrambled across the range shards; a background checkpointer
//! takes whole-store snapshots throughout, exactly the workload the
//! store's epoch handshake exists for. Each strategy's cell reports
//! p50/p99/p999 latency, achieved vs offered throughput, and the abort
//! taxonomy.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use solero_bench::figures::fleet;
use solero_store::{KvStore, StoreConfig};
use solero_workloads::openloop::{populate, run_open_loop, OpenLoopConfig, OpenLoopReport, OpMix};

struct Shape {
    store: StoreConfig,
    run: OpenLoopConfig,
    checkpoint_every: Duration,
}

/// The full shape targets a modest offered load on purpose: open-loop
/// latency is only meaningful when the offered rate is sustainable, and
/// CI containers may expose a single core. 2 workers × 4 kops/s keeps
/// the arrival schedule honest (mostly sleep-paced, not spin-starved)
/// while 3 × 1 s windows still collect 24 k samples per strategy.
fn shape(quick: bool) -> Shape {
    if quick {
        Shape {
            store: StoreConfig::new(4096).with_shards(8),
            run: OpenLoopConfig::quick(),
            checkpoint_every: Duration::from_millis(50),
        }
    } else {
        Shape {
            store: StoreConfig::new(1 << 20).with_shards(64),
            run: OpenLoopConfig {
                workers: 2,
                rate_per_worker: 4_000,
                window: Duration::from_secs(1),
                windows: 3,
                warmup_ops: 4_000,
                mix: OpMix::read_heavy(),
                theta: 0.99,
                seed: 0x5EED_0570,
            },
            // A full-store cut clones ~1M pairs; pace it so the
            // checkpointer contends with — not drowns — the workers.
            checkpoint_every: Duration::from_millis(250),
        }
    }
}

struct Cell {
    strategy: &'static str,
    report: OpenLoopReport,
    checkpoints: u64,
}

impl Cell {
    fn to_json(&self) -> String {
        let r = &self.report;
        let s = &r.stats;
        format!(
            "{{\"strategy\":\"{}\",\"ops\":{},\"elapsed_secs\":{:.4},\
             \"achieved_ops_per_sec\":{:.1},\"offered_ops_per_sec\":{:.1},\
             \"late_starts\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\
             \"p999_ns\":{},\"samples\":{},\"read_enters\":{},\"read_aborts\":{},\
             \"elision_success\":{},\"fallback_acquires\":{},\"checkpoints\":{}}}",
            self.strategy,
            r.ops,
            r.elapsed_secs,
            r.achieved,
            r.offered,
            r.late_starts,
            r.latency.p50,
            r.latency.p90,
            r.latency.p99,
            r.latency.p999,
            r.latency.samples,
            s.read_enters,
            s.read_aborts,
            s.elision_success,
            s.fallback_acquires,
            self.checkpoints,
        )
    }
}

/// One fleet cell: build, populate, then run the open loop with a
/// background checkpointer snapshotting the whole store throughout.
fn run_cell(sh: &Shape, strategy: &'static str, make: fn() -> solero::BoxedStrategy) -> Cell {
    let store = KvStore::new_boxed(sh.store, make);
    populate(&store, |k| k * 3 + 1);
    let stop = AtomicBool::new(false);
    let (report, checkpoints) = std::thread::scope(|s| {
        let ck = s.spawn(|| {
            let mut cuts = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let cut = store.checkpoint().expect("checkpoint cannot genuinely fault");
                assert_eq!(
                    cut.len(),
                    sh.store.keys as usize,
                    "checkpoint lost keys under load"
                );
                cuts += 1;
                std::thread::sleep(sh.checkpoint_every);
            }
            cuts
        });
        let report = run_open_loop(&store, &sh.run);
        stop.store(true, Ordering::Relaxed);
        (report, ck.join().expect("checkpointer panicked"))
    });
    eprintln!(
        "  [{strategy:>15}] {:>9.0} ops/s achieved / {:>9.0} offered, \
         p50 {:>6} ns, p99 {:>8} ns, p999 {:>9} ns, {} late, {} aborts, {} cuts",
        report.achieved,
        report.offered,
        report.latency.p50,
        report.latency.p99,
        report.latency.p999,
        report.late_starts,
        report.stats.read_aborts,
        checkpoints,
    );
    Cell {
        strategy,
        report,
        checkpoints,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_store.json"));
    let sh = shape(quick);

    eprintln!(
        "bench_store: {} keys, {} shards, theta {}, {} workers x {} ops/s, {} x {:?} windows",
        sh.store.keys,
        sh.store.shards,
        sh.run.theta,
        sh.run.workers,
        sh.run.rate_per_worker,
        sh.run.windows,
        sh.run.window,
    );

    let cells: Vec<Cell> = fleet()
        .iter()
        .map(|e| run_cell(&sh, e.name, e.make))
        .collect();
    let runs = cells.iter().map(Cell::to_json).collect::<Vec<_>>().join(",\n    ");

    // Hand-assembled like BENCH_adaptive.json / BENCH_bravo.json; must
    // stay `solero_obs::json` re-parseable (tests/bench_artifacts.rs).
    let doc = format!(
        "{{\n  \"workload\": \"store-open-loop-zipfian\",\n  \
         \"keys\": {},\n  \
         \"shards\": {},\n  \
         \"theta\": {},\n  \
         \"workers\": {},\n  \
         \"rate_per_worker\": {},\n  \
         \"window_ms\": {},\n  \
         \"windows\": {},\n  \
         \"get_pct\": {},\n  \
         \"scan_pct\": {},\n  \
         \"scan_len\": {},\n  \
         \"runs\": [\n    {runs}\n  ]\n}}\n",
        sh.store.keys,
        sh.store.shards,
        sh.run.theta,
        sh.run.workers,
        sh.run.rate_per_worker,
        sh.run.window.as_millis(),
        sh.run.windows,
        sh.run.mix.get_pct,
        sh.run.mix.scan_pct,
        sh.run.mix.scan_len,
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
}
