//! `bench_adaptive` — emit the adaptive policy's write-bursty
//! trajectory as `BENCH_adaptive.json`.
//!
//! ```text
//! bench_adaptive [--quick] [--out PATH] [--seed N]
//! ```
//!
//! Runs the [`solero_workloads::bursty`] phase workload
//! (quiet → burst → quiet → burst → quiet) under the adaptive SOLERO
//! lock and the static one, and writes one JSON document with a
//! [`PhaseReport`] per phase per strategy. The adaptive trajectory is
//! the auto-disable/re-enable evidence: the elision rate collapses in
//! the burst windows (policy skips replace doomed speculation) and
//! recovers in the quiet ones.
//!
//! The default seed matches `tests/adaptive_policy_stress.rs`
//! (`SOLERO_TESTKIT_SEED` overrides it there; `--seed` here).

use std::path::PathBuf;

use solero::{BoxedStrategy, SoleroConfig, SoleroStrategy};
use solero_testkit::seed_override;
use solero_workloads::bursty::{BurstyBench, BurstyConfig, PHASES};

fn run_strategy(
    cfg: BurstyConfig,
    seed: u64,
    make: fn() -> BoxedStrategy,
) -> (String, String) {
    let bench = BurstyBench::new(cfg, make);
    let reports = bench.run_trajectory(&PHASES, seed);
    for r in &reports {
        eprintln!(
            "  [{}] {:>5}: rate {:.3} skips {:>5} disables {:>3} rearms {:>3}",
            bench.name(),
            r.phase.name(),
            r.elision_rate(),
            r.stats.policy_skips,
            r.stats.policy_disables,
            r.stats.policy_rearms,
        );
    }
    let phases: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    (bench.name().to_string(), phases.join(",\n      "))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = PathBuf::from(grab("--out").unwrap_or_else(|| "BENCH_adaptive.json".into()));
    let seed = grab("--seed")
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or_else(|| seed_override(0x5EED_ADA7));
    let cfg = if quick {
        BurstyConfig::quick()
    } else {
        BurstyConfig::stress()
    };

    eprintln!(
        "bench_adaptive: {} readers, {} writers, {} reads/phase, seed {seed:#x}",
        cfg.readers, cfg.writers, cfg.reads_per_phase
    );
    let runs: Vec<String> = [
        || {
            Box::new(SoleroStrategy::configured(
                SoleroConfig::builder().adaptive(true).build(),
            )) as BoxedStrategy
        },
        (|| Box::new(SoleroStrategy::new()) as BoxedStrategy) as fn() -> BoxedStrategy,
    ]
    .into_iter()
    .map(|make| {
        let (name, phases) = run_strategy(cfg, seed, make);
        format!(
            "{{\"strategy\": \"{name}\", \"trajectory\": [\n      {phases}\n    ]}}"
        )
    })
    .collect();

    // solero_obs::json::JsonObject has no nested values, so the
    // document shell is assembled by hand; every leaf object is
    // JsonObject-made and the whole file re-parses with
    // solero_obs::json::parse (checked in the workloads tests).
    let doc = format!(
        "{{\n  \"workload\": \"bursty\",\n  \"seed\": {seed},\n  \
         \"readers\": {}, \"writers\": {}, \"reads_per_phase\": {},\n  \
         \"phases\": [\"quiet\", \"burst\", \"quiet\", \"burst\", \"quiet\"],\n  \
         \"runs\": [\n    {}\n  ]\n}}\n",
        cfg.readers,
        cfg.writers,
        cfg.reads_per_phase,
        runs.join(",\n    ")
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    eprintln!("wrote {}", out.display());
}
