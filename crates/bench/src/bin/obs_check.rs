//! `obs_check` — offline JSONL schema checker for observability traces.
//!
//! ```text
//! obs_check [path]    # default: results/obs.jsonl
//! ```
//!
//! Validates every line against the schema in [`solero_obs::schema`]
//! and exits non-zero on the first malformed line (or if the file holds
//! no `meta` line at all). Runs with no features: the schema checker is
//! part of the always-on half of `solero-obs`, so CI can validate traces
//! produced by an `obs-trace` build without rebuilding the world.

use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/obs.jsonl".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut lines = 0usize;
    let mut saw_meta = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = solero_obs::schema::validate_line(line) {
            eprintln!("obs_check: {path}:{}: {e}", i + 1);
            return ExitCode::FAILURE;
        }
        saw_meta |= line.contains("\"type\":\"meta\"");
        lines += 1;
    }
    if !saw_meta {
        eprintln!("obs_check: {path}: no meta line found");
        return ExitCode::FAILURE;
    }
    println!("obs_check: {path}: {lines} lines OK");
    ExitCode::SUCCESS
}
