//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [--quick] [table1|fig10|...|fig16|ablations|all]...
//! ```
//!
//! Prints each experiment as an aligned text table and writes a CSV per
//! table into `results/`.

use std::path::PathBuf;

use solero_bench::figures::{self, HarnessConfig};
use solero_bench::report::Table;

fn emit(tables: &[Table], dir: &PathBuf, stem: &str) {
    for (i, t) in tables.iter().enumerate() {
        print!("{}", t.render());
        let name = if tables.len() == 1 {
            format!("{stem}.csv")
        } else {
            format!("{stem}_{}.csv", (b'a' + i as u8) as char)
        };
        if let Err(e) = t.write_csv(dir, &name) {
            eprintln!("warning: could not write {name}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut targets: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with("--"))
        .collect();
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "ablations", "latency",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let h = HarnessConfig { quick };
    let dir = PathBuf::from("results");
    println!(
        "SOLERO reproduction harness ({} protocol); results CSVs in {}/",
        if quick { "quick" } else { "paper" },
        dir.display()
    );
    for t in &targets {
        match t.as_str() {
            "table1" => emit(&[figures::table1(&h)], &dir, "table1"),
            "fig10" => emit(&[figures::fig10(&h)], &dir, "fig10"),
            "fig11" => emit(&[figures::fig11(&h)], &dir, "fig11"),
            "fig12" => emit(&figures::fig12(&h), &dir, "fig12"),
            "fig13" => emit(&figures::fig13(&h), &dir, "fig13"),
            "fig14" => emit(&[figures::fig14(&h)], &dir, "fig14"),
            "fig15" => emit(&figures::fig15(&h), &dir, "fig15"),
            "fig16" => emit(&[figures::fig16(&h)], &dir, "fig16"),
            "latency" => emit(&[figures::latency(&h)], &dir, "latency"),
            "ablations" => {
                emit(&[figures::ablation_fallback(&h)], &dir, "ablation_fallback");
                emit(&[figures::ablation_checkpoint(&h)], &dir, "ablation_checkpoint");
            }
            other => eprintln!("unknown target: {other}"),
        }
    }
}
