//! Write-bursty phase workload: the adaptive policy's proving ground.
//!
//! The paper's sweeps hold the write ratio constant, which is exactly
//! the regime where a static policy is fine. Adaptation matters when
//! the write intensity is *phased*: long quiet stretches where elision
//! should run free, punctuated by write bursts where speculating is
//! pure waste. This bench alternates those phases explicitly:
//!
//! * **Quiet** — readers only; every section should elide.
//! * **Burst** — writer threads re-acquire the lock back-to-back
//!   (spinning while holding it), so a speculative reader almost always
//!   finds the word busy at entry or changed at exit. An adaptive lock
//!   should forfeit elision within a budget's worth of sections and
//!   re-arm once the burst ends.
//!
//! [`BurstyBench::run_trajectory`] returns one [`PhaseReport`] (a
//! windowed [`StatsSnapshot`] delta) per phase — the series behind
//! `BENCH_adaptive.json` and the floor/ceiling assertions in
//! `tests/adaptive_policy_stress.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use solero::{BoxedStrategy, Fault};
use solero_obs::json::JsonObject;
use solero_runtime::stats::StatsSnapshot;
use solero_testkit::pad::CachePadded;
use solero_testkit::rng::TestRng;

/// One phase of the alternating workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Readers only.
    Quiet,
    /// Readers plus back-to-back writers.
    Burst,
}

impl Phase {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Quiet => "quiet",
            Phase::Burst => "burst",
        }
    }
}

/// The canonical trajectory: quiet baseline, first burst, recovery,
/// second burst, final recovery — enough edges to show both the
/// auto-disable and the re-arm twice over.
pub const PHASES: [Phase; 5] = [
    Phase::Quiet,
    Phase::Burst,
    Phase::Quiet,
    Phase::Burst,
    Phase::Quiet,
];

/// Workload shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct BurstyConfig {
    /// Reader threads (every phase).
    pub readers: usize,
    /// Writer threads (burst phases only).
    pub writers: usize,
    /// Read sections each reader runs per phase.
    pub reads_per_phase: usize,
    /// Spin iterations a writer burns *while holding the lock* — the
    /// knob that sets the writers' duty cycle. Writers re-acquire with
    /// no gap, so during a burst the lock is held almost continuously
    /// and a speculative reader can practically never validate.
    pub writer_hold_spin: u32,
    /// Cells in the shared array the sections touch.
    pub cells: usize,
}

impl BurstyConfig {
    /// A configuration small enough for unit tests.
    pub fn quick() -> Self {
        BurstyConfig {
            readers: 2,
            writers: 2,
            reads_per_phase: 400,
            writer_hold_spin: 400,
            cells: 16,
        }
    }

    /// The configuration the stress test and `BENCH_adaptive.json` use:
    /// more sections per phase, hotter writers.
    pub fn stress() -> Self {
        BurstyConfig {
            readers: 2,
            writers: 2,
            reads_per_phase: 1_500,
            writer_hold_spin: 800,
            cells: 32,
        }
    }
}

/// Per-phase outcome: the phase plus the stats delta it produced.
#[derive(Debug, Clone, Copy)]
pub struct PhaseReport {
    /// Which phase ran.
    pub phase: Phase,
    /// Lock statistics accumulated during the phase only.
    pub stats: StatsSnapshot,
}

impl PhaseReport {
    /// Fraction of read sections that completed elided. During a burst
    /// an adaptive lock drives this down (aborted sections fall back,
    /// forfeited sections acquire); in quiet phases it recovers.
    pub fn elision_rate(&self) -> f64 {
        if self.stats.read_enters == 0 {
            0.0
        } else {
            self.stats.elision_success as f64 / self.stats.read_enters as f64
        }
    }

    /// Fraction of read sections the policy sent straight to
    /// acquisition.
    pub fn skip_rate(&self) -> f64 {
        if self.stats.read_enters == 0 {
            0.0
        } else {
            self.stats.policy_skips as f64 / self.stats.read_enters as f64
        }
    }

    /// One JSON object for the trajectory file.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("phase", self.phase.name())
            .num("read_enters", self.stats.read_enters)
            .num("elision_success", self.stats.elision_success)
            .num("read_aborts", self.stats.read_aborts)
            .num("fallback_acquires", self.stats.fallback_acquires)
            .num("policy_skips", self.stats.policy_skips)
            .num("policy_disables", self.stats.policy_disables)
            .num("policy_rearms", self.stats.policy_rearms)
            .float("elision_rate", self.elision_rate())
            .float("skip_rate", self.skip_rate())
            .finish()
    }
}

/// The bench itself: one strategy instance guarding a cell array.
pub struct BurstyBench {
    strat: BoxedStrategy,
    cells: Vec<CachePadded<AtomicU64>>,
    cfg: BurstyConfig,
}

impl std::fmt::Debug for BurstyBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BurstyBench")
            .field("strategy", &self.strat.name())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl BurstyBench {
    /// Builds the bench over a boxed strategy.
    pub fn new(cfg: BurstyConfig, make: impl FnOnce() -> BoxedStrategy) -> Self {
        let cells = (0..cfg.cells.max(1))
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        BurstyBench {
            strat: make(),
            cells,
            cfg,
        }
    }

    /// The strategy's display name.
    pub fn name(&self) -> &'static str {
        self.strat.name()
    }

    /// The strategy under test (for stats and policy inspection).
    pub fn strategy(&self) -> &BoxedStrategy {
        &self.strat
    }

    /// Runs one phase to completion (each reader performs its
    /// `reads_per_phase` sections; burst writers run until the readers
    /// finish) and returns that phase's stats delta.
    pub fn run_phase(&self, phase: Phase, seed: u64) -> PhaseReport {
        let before = self.strat.snapshot();
        let stop = AtomicBool::new(false);
        let writers = match phase {
            Phase::Quiet => 0,
            Phase::Burst => self.cfg.writers,
        };
        std::thread::scope(|s| {
            for w in 0..writers {
                let stop = &stop;
                let strat = &self.strat;
                let cells = &self.cells;
                let hold = self.cfg.writer_hold_spin;
                let mut rng = TestRng::seed_from_u64(seed ^ (0xB065_7000 + w as u64));
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let k = rng.gen_range(0..cells.len());
                        strat.write_with(|| {
                            // Hold the lock hot: the spin sets the duty
                            // cycle, the immediate re-acquire removes
                            // the gap.
                            for _ in 0..hold {
                                std::hint::spin_loop();
                            }
                            cells[k].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
            for r in 0..self.cfg.readers {
                let stop = &stop;
                let strat = &self.strat;
                let cells = &self.cells;
                let reads = self.cfg.reads_per_phase;
                let mut rng = TestRng::seed_from_u64(seed ^ (0x5EAD_E000 + r as u64));
                s.spawn(move || {
                    for _ in 0..reads {
                        let a = rng.gen_range(0..cells.len());
                        let b = rng.gen_range(0..cells.len());
                        let _ = strat
                            .read_with(|ck| {
                                let x = cells[a].load(Ordering::Relaxed);
                                ck.checkpoint()?;
                                let y = cells[b].load(Ordering::Relaxed);
                                Ok::<_, Fault>(x.wrapping_add(y))
                            })
                            .expect("pure reads cannot genuinely fault");
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
        PhaseReport {
            phase,
            stats: self.strat.snapshot().since(&before),
        }
    }

    /// Runs `phases` in order, returning one report per phase.
    pub fn run_trajectory(&self, phases: &[Phase], seed: u64) -> Vec<PhaseReport> {
        phases
            .iter()
            .enumerate()
            .map(|(i, &p)| self.run_phase(p, seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::{SoleroConfig, SoleroStrategy};

    fn adaptive() -> BoxedStrategy {
        Box::new(SoleroStrategy::configured(
            SoleroConfig::builder().adaptive(true).build(),
        ))
    }

    #[test]
    fn quiet_phase_elides_everything_and_never_skips() {
        let b = BurstyBench::new(BurstyConfig::quick(), adaptive);
        let r = b.run_phase(Phase::Quiet, 7);
        assert_eq!(
            r.stats.read_enters,
            (BurstyConfig::quick().readers * BurstyConfig::quick().reads_per_phase) as u64
        );
        assert_eq!(r.stats.policy_skips, 0, "{}", r.stats);
        assert_eq!(r.stats.read_aborts, 0, "{}", r.stats);
        assert!(r.elision_rate() > 0.999, "{}", r.elision_rate());
    }

    #[test]
    fn burst_phase_counts_stay_consistent() {
        let b = BurstyBench::new(BurstyConfig::quick(), adaptive);
        let r = b.run_phase(Phase::Burst, 11);
        let s = r.stats;
        assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s}");
        assert_eq!(s.abort_retry_exhausted, s.fallback_acquires, "{s}");
        assert!(s.write_enters > 0, "writers must have run: {s}");
        // A read section completes at most one way: elided, fallen
        // back, policy-skipped (or via the monitor, counted by none of
        // these), so the three never exceed the sections entered.
        assert!(
            s.elision_success + s.fallback_acquires + s.policy_skips <= s.read_enters,
            "{s}"
        );
    }

    #[test]
    fn trajectory_json_is_parseable() {
        let b = BurstyBench::new(BurstyConfig::quick(), adaptive);
        let r = b.run_phase(Phase::Quiet, 3);
        let v = solero_obs::json::parse(&r.to_json()).expect("valid JSON");
        let obj = v.as_obj().expect("object");
        assert_eq!(obj["phase"].as_str(), Some("quiet"));
        assert!(obj["elision_rate"].as_num().is_some());
    }

    #[test]
    fn phase_names_and_canonical_trajectory() {
        assert_eq!(Phase::Quiet.name(), "quiet");
        assert_eq!(Phase::Burst.name(), "burst");
        assert_eq!(PHASES.len(), 5);
        assert_eq!(PHASES[0], Phase::Quiet);
        assert_eq!(PHASES[1], Phase::Burst);
    }
}
