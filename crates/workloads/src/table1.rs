//! Lock statistics per benchmark — the paper's Table 1.
//!
//! For every benchmark of the evaluation, measures the lock frequency
//! (millions of lock operations per second) and the fraction of
//! critical sections that are read-only, on a single thread under the
//! SOLERO strategy (classification is strategy-independent; frequency
//! of course depends on the host, so the paper's absolute POWER6
//! numbers are matched in *ordering*, not magnitude).

use solero_testkit::rng::TestRng;
use solero::SoleroStrategy;

use crate::dacapo::{DacapoBench, DACAPO_PROFILES};
use crate::driver::{measure, Measurement, RunConfig};
use crate::empty::EmptyBench;
use crate::jbb::JbbBench;
use crate::maps::{MapBench, MapConfig, MapKind};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name, as in the paper.
    pub benchmark: String,
    /// Millions of lock operations (critical sections) per second.
    pub mlocks_per_sec: f64,
    /// Percentage of read-only critical sections.
    pub read_only_pct: f64,
}

fn row(name: &str, m: &Measurement) -> Table1Row {
    Table1Row {
        benchmark: name.to_string(),
        mlocks_per_sec: m.stats.total_sections() as f64 / m.measured_secs / 1e6,
        read_only_pct: m.stats.read_only_ratio() * 100.0,
    }
}

/// Measures every benchmark and returns the table rows.
pub fn collect(cfg: &RunConfig) -> Vec<Table1Row> {
    let cfg = RunConfig { threads: 1, ..*cfg };
    let mut rows = Vec::new();

    let empty = EmptyBench::new(SoleroStrategy::new());
    let m = measure(&cfg, |_, _| empty.op(), || empty.snapshot());
    rows.push(row("Empty", &m));

    for (kind, label) in [(MapKind::Hash, "HashMap"), (MapKind::Tree, "TreeMap")] {
        for writes in [0u32, 5] {
            let b = MapBench::new(MapConfig::paper(kind, writes, 1), SoleroStrategy::new);
            let m = measure(
                &cfg,
                |t, rng: &mut TestRng| b.op(t, rng),
                || b.snapshot(),
            );
            rows.push(row(&format!("{label} ({writes}% writes)"), &m));
        }
    }

    let jbb = JbbBench::new(1, SoleroStrategy::new);
    let m = measure(&cfg, |t, rng| jbb.op(t, rng), || jbb.snapshot());
    rows.push(row("SPECjbb2005 (mini)", &m));

    for p in DACAPO_PROFILES {
        let b = DacapoBench::new(p, 1, SoleroStrategy::new);
        let m = measure(&cfg, |t, rng| b.op(t, rng), || b.snapshot());
        rows.push(row(p.name, &m));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn collects_all_rows_with_sane_ratios() {
        let cfg = RunConfig {
            threads: 1,
            warmup: Duration::from_millis(5),
            window: Duration::from_millis(25),
            windows: 1,
            runs: 1,
        };
        let rows = collect(&cfg);
        assert_eq!(rows.len(), 10);
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.benchmark.starts_with(n))
                .unwrap_or_else(|| panic!("row {n}"))
        };
        assert!(by_name("Empty").read_only_pct > 99.0);
        assert!(by_name("HashMap (0% writes)").read_only_pct > 99.0);
        assert!(by_name("HashMap (5% writes)").read_only_pct > 90.0);
        assert!(by_name("h2").read_only_pct < 1.0);
        let jbb = by_name("SPECjbb2005");
        assert!((40.0..=70.0).contains(&jbb.read_only_pct), "{}", jbb.read_only_pct);
        for r in &rows {
            assert!(r.mlocks_per_sec > 0.0, "{}: zero lock frequency", r.benchmark);
        }
    }
}
