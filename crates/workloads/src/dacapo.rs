//! Synthetic DaCapo-profile applications (paper Figure 16, Table 1).
//!
//! **Substitution note (see DESIGN.md §2):** DaCapo 9.10's h2, tomcat,
//! tradebeans, and tradesoap are full Java applications; what Figure 16
//! shows is that when the read-only synchronized-block ratio is low
//! (0–11.4%, Table 1), SOLERO neither helps nor hurts (<1% delta).
//! That conclusion depends only on each benchmark's *lock profile* —
//! its synchronized-block frequency and read-only ratio — which these
//! synthetic applications match: each models an application thread that
//! interleaves non-synchronized "application work" with synchronized
//! operations on a shared table, using Table 1's read-only ratio and a
//! work grain calibrated to order the lock frequencies as in the paper.

use std::sync::Arc;

use solero_testkit::rng::TestRng;
use solero::{BoxedStrategy, Checkpoint, SyncStrategy};
use solero_collections::JHashMap;
use solero_heap::Heap;
use solero_runtime::stats::StatsSnapshot;

/// The lock profile of one DaCapo benchmark (from the paper's Table 1).
#[derive(Debug, Clone, Copy)]
pub struct DacapoProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Fraction of synchronized blocks that are read-only (Table 1).
    pub read_only_ratio: f64,
    /// Application-work iterations between synchronized blocks; larger
    /// grain = lower lock frequency. Calibrated so the four benchmarks'
    /// lock frequencies order as in Table 1 (tomcat > jbb > tradesoap >
    /// h2 > tradebeans).
    pub work_grain: u32,
}

/// The four multi-threaded DaCapo applications the paper evaluates.
pub const DACAPO_PROFILES: [DacapoProfile; 4] = [
    DacapoProfile {
        name: "h2",
        read_only_ratio: 0.0,
        work_grain: 60,
    },
    DacapoProfile {
        name: "tomcat",
        read_only_ratio: 0.037,
        work_grain: 10,
    },
    DacapoProfile {
        name: "tradebeans",
        read_only_ratio: 0.003,
        work_grain: 70,
    },
    DacapoProfile {
        name: "tradesoap",
        read_only_ratio: 0.114,
        work_grain: 30,
    },
];

/// A synthetic DaCapo-profile application over a strategy.
///
/// Each thread owns a table and its lock (application-private state, as
/// in the lightly contended DaCapo apps); the measured quantity is pure
/// lock-implementation overhead, which is what Figure 16 compares.
pub struct DacapoBench {
    heap: Arc<Heap>,
    profile: DacapoProfile,
    shards: Vec<(BoxedStrategy, JHashMap)>,
}

impl std::fmt::Debug for DacapoBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DacapoBench")
            .field("strategy", &self.name())
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl DacapoBench {
    /// Builds the benchmark for `threads` application threads. Generic
    /// purely for call-site convenience; each shard's lock is boxed
    /// behind [`BoxedStrategy`].
    pub fn new<S: SyncStrategy + 'static>(
        profile: DacapoProfile,
        threads: usize,
        make: impl Fn() -> S,
    ) -> Self {
        Self::new_boxed(profile, threads, || Box::new(make()))
    }

    /// Builds the benchmark from an already-boxed strategy factory.
    pub fn new_boxed(
        profile: DacapoProfile,
        threads: usize,
        make: impl Fn() -> BoxedStrategy,
    ) -> Self {
        let heap = Arc::new(Heap::new((threads * 32 * 1024).max(1 << 18)));
        let shards = (0..threads)
            .map(|_| {
                let map = JHashMap::new(&heap, 512).expect("setup");
                for k in 0..256 {
                    map.put(&heap, k, k).expect("populate");
                }
                (make(), map)
            })
            .collect();
        DacapoBench {
            heap,
            profile,
            shards,
        }
    }

    /// One application step from thread `t`: some non-synchronized work
    /// followed by one synchronized block.
    pub fn op(&self, t: usize, rng: &mut TestRng) {
        // Application work outside any lock.
        let mut x = rng.gen::<u64>() | 1;
        for _ in 0..self.profile.work_grain {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);

        let (strat, map) = &self.shards[t % self.shards.len()];
        let key = (x % 256) as i64;
        if rng.gen::<f64>() < self.profile.read_only_ratio {
            let _ = strat
                .read_with(|ck| map.get(&self.heap, key, ck as &mut dyn Checkpoint))
                .expect("no genuine faults");
        } else {
            strat.write_with(|| {
                map.put(&self.heap, key, x as i64).expect("writer-side");
            });
        }
    }

    /// The benchmark's profile.
    pub fn profile(&self) -> &DacapoProfile {
        &self.profile
    }

    /// Merged lock statistics.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, (s, _)| acc.merge(&s.snapshot()))
    }

    /// Resets statistics.
    pub fn reset_stats(&self) {
        for (s, _) in &self.shards {
            s.reset_stats();
        }
    }

    /// Strategy name.
    pub fn name(&self) -> &'static str {
        self.shards[0].0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::{LockStrategy, SoleroStrategy};

    #[test]
    fn profiles_match_table1_ratios() {
        for p in DACAPO_PROFILES {
            let b = DacapoBench::new(p, 1, SoleroStrategy::new);
            let mut rng = TestRng::seed_from_u64(5);
            for _ in 0..20_000 {
                b.op(0, &mut rng);
            }
            let measured = b.snapshot().read_only_ratio();
            assert!(
                (measured - p.read_only_ratio).abs() < 0.02,
                "{}: measured {measured:.4}, profile {:.4}",
                p.name,
                p.read_only_ratio
            );
        }
    }

    #[test]
    fn runs_on_conventional_lock() {
        let b = DacapoBench::new(DACAPO_PROFILES[1], 2, LockStrategy::new);
        let mut rng = TestRng::seed_from_u64(9);
        for i in 0..1_000 {
            b.op(i % 2, &mut rng);
        }
        assert_eq!(b.snapshot().total_sections(), 1_000);
    }
}
