//! Per-operation latency distribution.
//!
//! Throughput (the paper's metric) hides the *tail*: a conventional
//! lock's reader can be descheduled holding the lock and stall every
//! other thread, while SOLERO readers cannot block anyone. The latency
//! histogram makes that visible — an addition to the paper's
//! methodology, reported by `reproduce latency`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use solero_testkit::rng::TestRng;

/// Number of log2 buckets (covers 1 ns .. ~77 h).
const BUCKETS: usize = 48;

/// A lock-free log2 latency histogram.
///
/// # Examples
///
/// ```
/// use solero_workloads::latency::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for ns in [100, 200, 400, 100_000] {
///     h.record_ns(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) >= 100 && h.percentile(0.5) <= 512);
/// assert!(h.percentile(1.0) >= 65_536);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let b = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `p`-quantile in nanoseconds (upper bucket bound);
    /// `p` in `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1); // upper bound of the bucket
            }
        }
        1u64 << BUCKETS
    }

    /// Merges another histogram into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// Percentile summary of one latency measurement.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// Median, ns (bucket upper bound).
    pub p50: u64,
    /// 90th percentile, ns.
    pub p90: u64,
    /// 99th percentile, ns.
    pub p99: u64,
    /// 99.9th percentile, ns.
    pub p999: u64,
    /// Samples recorded.
    pub samples: u64,
}

/// Runs `op` from `threads` threads, `samples_per_thread` times each,
/// timing every invocation.
pub fn measure_latency<F>(threads: usize, samples_per_thread: u64, op: F) -> LatencyReport
where
    F: Fn(usize, &mut TestRng) + Sync,
{
    let hist = LatencyHistogram::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let hist = &hist;
            let op = &op;
            s.spawn(move || {
                let mut rng = TestRng::seed_from_u64(t as u64 + 1);
                let local = LatencyHistogram::new();
                for _ in 0..samples_per_thread {
                    let t0 = Instant::now();
                    op(t, &mut rng);
                    local.record_ns(t0.elapsed().as_nanos() as u64);
                }
                hist.merge(&local);
            });
        }
    });
    LatencyReport {
        p50: hist.percentile(0.50),
        p90: hist.percentile(0.90),
        p99: hist.percentile(0.99),
        p999: hist.percentile(0.999),
        samples: hist.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 17);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
    }

    #[test]
    fn extreme_values_clamp() {
        let h = LatencyHistogram::new();
        h.record_ns(0); // clamps to bucket 0
        h.record_ns(u64::MAX); // clamps to the last bucket
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_sums_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(100);
        b.record_ns(100);
        b.record_ns(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn measure_latency_collects_all_samples() {
        let r = measure_latency(2, 500, |_, _| {
            std::hint::black_box(42);
        });
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 <= r.p999);
    }
}
