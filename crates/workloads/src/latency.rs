//! Per-operation latency distribution.
//!
//! Throughput (the paper's metric) hides the *tail*: a conventional
//! lock's reader can be descheduled holding the lock and stall every
//! other thread, while SOLERO readers cannot block anyone. The latency
//! histogram makes that visible — an addition to the paper's
//! methodology, reported by `reproduce latency`.
//!
//! The histogram itself lives in [`solero_obs::hist`] (one log2
//! histogram for the whole workspace, identical bucketing to the JSONL
//! observability export); this module re-exports it and layers the
//! measurement loop plus the [`LatencyReport`] percentile summary on
//! top.

use std::time::Instant;

use solero_testkit::rng::TestRng;

pub use solero_obs::hist::{HistSnapshot, LatencyHistogram};

/// Percentile summary of one latency measurement.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// Median, ns (bucket upper bound).
    pub p50: u64,
    /// 90th percentile, ns.
    pub p90: u64,
    /// 99th percentile, ns.
    pub p99: u64,
    /// 99.9th percentile, ns.
    pub p999: u64,
    /// Samples recorded.
    pub samples: u64,
}

impl LatencyReport {
    /// Summarizes a histogram snapshot.
    ///
    /// # Examples
    ///
    /// ```
    /// use solero_workloads::latency::{LatencyHistogram, LatencyReport};
    ///
    /// let h = LatencyHistogram::new();
    /// for ns in [100, 200, 400, 100_000] {
    ///     h.record_ns(ns);
    /// }
    /// let r = LatencyReport::from_snapshot(&h.snapshot());
    /// assert_eq!(r.samples, 4);
    /// assert!(r.p50 >= 100 && r.p50 <= 512);
    /// assert!(r.p999 >= 65_536);
    /// ```
    pub fn from_snapshot(s: &HistSnapshot) -> Self {
        LatencyReport {
            p50: s.percentile(0.50),
            p90: s.percentile(0.90),
            p99: s.percentile(0.99),
            p999: s.percentile(0.999),
            samples: s.count(),
        }
    }
}

/// Runs `op` from `threads` threads, `samples_per_thread` times each,
/// timing every invocation.
pub fn measure_latency<F>(threads: usize, samples_per_thread: u64, op: F) -> LatencyReport
where
    F: Fn(usize, &mut TestRng) + Sync,
{
    let hist = LatencyHistogram::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let hist = &hist;
            let op = &op;
            s.spawn(move || {
                let mut rng = TestRng::seed_from_u64(t as u64 + 1);
                for _ in 0..samples_per_thread {
                    let t0 = Instant::now();
                    op(t, &mut rng);
                    hist.record_ns(t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    LatencyReport::from_snapshot(&hist.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_the_obs_histogram() {
        // The re-export must be the one concurrent histogram the whole
        // workspace shares, not a second implementation.
        let h: solero_obs::hist::LatencyHistogram = LatencyHistogram::new();
        h.record_ns(100);
        let s: solero_obs::hist::HistSnapshot = h.snapshot();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn report_percentiles_are_monotone() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 17);
        }
        let r = LatencyReport::from_snapshot(&h.snapshot());
        assert!(
            r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p999,
            "{r:?}"
        );
        assert_eq!(r.samples, 1000);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = LatencyReport::from_snapshot(&HistSnapshot::default());
        assert_eq!(r.samples, 0);
        assert_eq!(r.p999, 0);
    }

    #[test]
    fn measure_latency_collects_all_samples() {
        let r = measure_latency(2, 500, |_, _| {
            std::hint::black_box(42);
        });
        assert_eq!(r.samples, 1_000);
        assert!(r.p50 <= r.p999);
    }
}
