//! Seeded Zipfian key sampling for the skewed open-loop store traffic.
//!
//! YCSB-style bounded Zipfian generator (Gray et al.'s rejection-free
//! inverse construction): ranks are drawn from `[0, n)` with
//! `P(rank = k) ∝ 1 / (k+1)^θ`, so rank 0 is the hottest key and the
//! skew knob `θ ∈ (0, 1)` sweeps from near-uniform to heavily skewed
//! (YCSB's default is 0.99). Randomness comes exclusively from
//! [`solero_testkit::rng::TestRng`], so every trace is reproducible
//! from a root seed.
//!
//! Rank 0 being hottest would pile the hot set onto the store's first
//! range shard; [`Zipf::scrambled`] spreads ranks over the key space
//! with a SplitMix64 finalizer (YCSB's "scrambled Zipfian"), keeping
//! per-key popularity Zipfian while the hot keys land on uniformly
//! random shards.

use solero_testkit::rng::{SplitMix64, TestRng};

/// Bounded Zipfian rank sampler over `[0, n)`.
///
/// # Examples
///
/// ```
/// use solero_testkit::rng::TestRng;
/// use solero_workloads::zipf::Zipf;
///
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = TestRng::seed_from_u64(42);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

/// `ζ(n, θ) = Σ_{i=1..n} 1 / i^θ` (the generalized harmonic number).
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipf {
    /// Builds a sampler for `n` ranks at skew `theta`.
    ///
    /// Construction is `O(n)` (the harmonic sum); sampling is `O(1)`.
    ///
    /// # Panics
    ///
    /// Unless `n ≥ 1` and `0 < theta < 1` (the inverse construction is
    /// singular at `θ = 1`).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "empty rank space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    /// The rank-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut TestRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < self.zeta2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws a rank and scrambles it over `[0, n)` so the hot set is
    /// spread across the key space (and therefore across the store's
    /// range shards) instead of clustering at key 0. The scramble is a
    /// fixed hash, so a given rank always maps to the same key; two
    /// ranks may collide on one key, which only makes that key hotter —
    /// the YCSB trade-off.
    pub fn scrambled(&self, rng: &mut TestRng) -> u64 {
        self.scramble(self.sample(rng))
    }

    /// The deterministic rank → key scramble used by [`scrambled`]
    /// (`Zipf::scrambled`), exposed for tests.
    pub fn scramble(&self, rank: u64) -> u64 {
        SplitMix64::new(rank).next_u64() % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_space_always_yields_zero() {
        let z = Zipf::new(1, 0.9);
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rank_zero_dominates_at_high_skew() {
        let z = Zipf::new(1 << 16, 0.99);
        let mut rng = TestRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        // With θ=0.99 over 64K ranks, rank 0 carries roughly 1/ζ ≈ 8%.
        assert!(hits > 300, "rank 0 drawn only {hits}/10000 times");
    }

    #[test]
    fn scramble_is_a_stable_in_bounds_map() {
        let z = Zipf::new(1000, 0.9);
        for rank in 0..1000 {
            let k = z.scramble(rank);
            assert!(k < 1000);
            assert_eq!(k, z.scramble(rank), "scramble must be deterministic");
        }
    }
}
