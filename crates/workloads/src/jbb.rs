//! A mini-SPECjbb2005 (paper Figures 11, 14; Table 1 row "SPECjbb2005").
//!
//! **Substitution note (see DESIGN.md §2):** SPECjbb2005 itself is a
//! licensed Java benchmark. What SOLERO exploits in it is the *lock
//! profile*: per-warehouse object trees with minimal cross-thread
//! contention and a ~53.6% read-only synchronized-block ratio. This
//! module reproduces that profile with the TPC-C-style transaction mix
//! SPECjbb derives from: each warehouse holds an item table, a customer
//! table, and an order tree behind one warehouse lock; threads map to
//! warehouses one-to-one (SPECjbb's scaling model), and the transaction
//! mix is tuned so the measured read-only ratio lands near the paper's
//! Table 1 value.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use solero_testkit::rng::TestRng;
use solero::{BoxedStrategy, Checkpoint, SyncStrategy};
use solero_collections::{JHashMap, JTreeMap};
use solero_heap::Heap;
use solero_runtime::stats::StatsSnapshot;

/// Items per warehouse.
const ITEMS: i64 = 1_000;
/// Customers per warehouse.
const CUSTOMERS: i64 = 400;
/// Orders a delivery transaction drains.
const DELIVERY_BATCH: usize = 10;

struct Warehouse {
    lock: BoxedStrategy,
    items: JHashMap,
    customers: JHashMap,
    orders: JTreeMap,
    next_order: AtomicI64,
}

/// The mini-SPECjbb benchmark over a boxed, dynamically-dispatched
/// strategy.
pub struct JbbBench {
    heap: Arc<Heap>,
    warehouses: Vec<Warehouse>,
}

impl std::fmt::Debug for JbbBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JbbBench")
            .field("strategy", &self.name())
            .field("warehouses", &self.warehouses.len())
            .finish_non_exhaustive()
    }
}

impl JbbBench {
    /// Builds `warehouses` warehouses, each with its own lock. Generic
    /// purely for call-site convenience; each lock is boxed behind
    /// [`BoxedStrategy`].
    pub fn new<S: SyncStrategy + 'static>(warehouses: usize, make: impl Fn() -> S) -> Self {
        Self::new_boxed(warehouses, || Box::new(make()))
    }

    /// Builds the benchmark from an already-boxed strategy factory.
    pub fn new_boxed(warehouses: usize, make: impl Fn() -> BoxedStrategy) -> Self {
        let words = (warehouses * 64 * 1024).max(1 << 20);
        let heap = Arc::new(Heap::new(words));
        let whs = (0..warehouses)
            .map(|_| {
                let items = JHashMap::new(&heap, ITEMS as usize * 2).expect("setup");
                let customers = JHashMap::new(&heap, CUSTOMERS as usize * 2).expect("setup");
                let orders = JTreeMap::new(&heap).expect("setup");
                for i in 0..ITEMS {
                    items.put(&heap, i, 100 + i % 900).expect("populate");
                }
                for c in 0..CUSTOMERS {
                    customers.put(&heap, c, 1_000).expect("populate");
                }
                Warehouse {
                    lock: make(),
                    items,
                    customers,
                    orders,
                    next_order: AtomicI64::new(0),
                }
            })
            .collect();
        JbbBench {
            heap,
            warehouses: whs,
        }
    }

    /// One SPECjbb-style transaction from thread `t` against its own
    /// warehouse.
    pub fn op(&self, t: usize, rng: &mut TestRng) {
        let w = &self.warehouses[t % self.warehouses.len()];
        // SPECjbb2005 mix: NewOrder 30.3%, Payment 30.3%,
        // CustomerReport 30.3%, OrderStatus 3%, Delivery 3%,
        // StockLevel 3%.
        match rng.gen_range(0..1000) {
            0..=302 => self.new_order(w, rng),
            303..=605 => self.payment(w, rng),
            606..=908 => self.customer_report(w, rng),
            909..=938 => self.order_status(w, rng),
            939..=968 => self.delivery(w),
            _ => self.stock_level(w, rng),
        }
    }

    /// NewOrder: price lookups (read-only) then order insertion and
    /// district update (writing).
    fn new_order(&self, w: &Warehouse, rng: &mut TestRng) {
        let heap = &self.heap;
        let lines: Vec<i64> = (0..3).map(|_| rng.gen_range(0..ITEMS)).collect();
        let total: i64 = w
            .lock
            .read_with(|ck| {
                let mut sum = 0;
                for &i in &lines {
                    sum += w
                        .items
                        .get(heap, i, ck as &mut dyn Checkpoint)?
                        .unwrap_or(0);
                }
                Ok(sum)
            })
            .expect("no genuine faults");
        w.lock.write_with(|| {
            let id = w.next_order.fetch_add(1, Ordering::Relaxed);
            w.orders.put(heap, id, total).expect("writer-side");
        });
    }

    /// Payment: customer balance read (read-only) then update (writing).
    fn payment(&self, w: &Warehouse, rng: &mut TestRng) {
        let heap = &self.heap;
        let c = rng.gen_range(0..CUSTOMERS);
        let amount = rng.gen_range(1..50i64);
        let balance = w
            .lock
            .read_with(|ck| w.customers.get(heap, c, ck as &mut dyn Checkpoint))
            .expect("no genuine faults")
            .unwrap_or(0);
        w.lock.write_with(|| {
            w.customers
                .put(heap, c, balance - amount)
                .expect("writer-side");
        });
    }

    /// CustomerReport: customer record plus recent orders (read-only).
    fn customer_report(&self, w: &Warehouse, rng: &mut TestRng) {
        let heap = &self.heap;
        let c = rng.gen_range(0..CUSTOMERS);
        let _ = w
            .lock
            .read_with(|ck| {
                let bal = w.customers.get(heap, c, ck as &mut dyn Checkpoint)?;
                let recent = w
                    .orders
                    .floor_key(heap, i64::MAX, ck as &mut dyn Checkpoint)?;
                Ok((bal, recent))
            })
            .expect("no genuine faults");
    }

    /// OrderStatus: look an order up (read-only).
    fn order_status(&self, w: &Warehouse, rng: &mut TestRng) {
        let heap = &self.heap;
        let hi = w.next_order.load(Ordering::Relaxed).max(1);
        let id = rng.gen_range(0..hi);
        let _ = w
            .lock
            .read_with(|ck| w.orders.floor_key(heap, id, ck as &mut dyn Checkpoint))
            .expect("no genuine faults");
    }

    /// Delivery: drain the oldest orders (writing).
    fn delivery(&self, w: &Warehouse) {
        let heap = &self.heap;
        w.lock.write_with(|| {
            for _ in 0..DELIVERY_BATCH {
                let first = w
                    .orders
                    .first_key(heap, &mut solero::NullCheckpoint)
                    .expect("writer-side");
                match first {
                    Some(k) => {
                        w.orders.remove(heap, k).expect("writer-side");
                    }
                    None => break,
                }
            }
        });
    }

    /// StockLevel: scan a handful of items (read-only).
    fn stock_level(&self, w: &Warehouse, rng: &mut TestRng) {
        let heap = &self.heap;
        let base = rng.gen_range(0..ITEMS - 5);
        let _ = w
            .lock
            .read_with(|ck| {
                let mut sum = 0;
                for i in base..base + 5 {
                    sum += w
                        .items
                        .get(heap, i, ck as &mut dyn Checkpoint)?
                        .unwrap_or(0);
                }
                Ok(sum)
            })
            .expect("no genuine faults");
    }

    /// Merged lock statistics across warehouses.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.warehouses
            .iter()
            .fold(StatsSnapshot::default(), |acc, w| acc.merge(&w.lock.snapshot()))
    }

    /// Resets statistics.
    pub fn reset_stats(&self) {
        for w in &self.warehouses {
            w.lock.reset_stats();
        }
    }

    /// Strategy name.
    pub fn name(&self) -> &'static str {
        self.warehouses[0].lock.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::{LockStrategy, SoleroStrategy};

    #[test]
    fn read_only_ratio_is_near_the_papers_table1() {
        let b = JbbBench::new(1, SoleroStrategy::new);
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..20_000 {
            b.op(0, &mut rng);
        }
        let ratio = b.snapshot().read_only_ratio();
        // Paper: 53.6%. The synthetic mix must land in the same band.
        assert!(
            (0.45..=0.65).contains(&ratio),
            "read-only ratio {ratio:.3} outside the SPECjbb band"
        );
    }

    #[test]
    fn jbb_runs_on_the_conventional_lock_too() {
        let b = JbbBench::new(2, LockStrategy::new);
        let mut rng = TestRng::seed_from_u64(3);
        for i in 0..2_000 {
            b.op(i % 2, &mut rng);
        }
        assert!(b.snapshot().total_sections() > 0);
    }

    #[test]
    fn multithreaded_warehouses_do_not_interfere() {
        let b = JbbBench::new(4, SoleroStrategy::new);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                s.spawn(move || {
                    let mut rng = TestRng::seed_from_u64(t as u64 + 100);
                    for _ in 0..3_000 {
                        b.op(t, &mut rng);
                    }
                });
            }
        });
        let snap = b.snapshot();
        // Per-warehouse isolation ⇒ elisions almost never fail.
        assert!(
            snap.failure_ratio() < 0.02,
            "jbb failure ratio {:.4} too high: {snap}",
            snap.failure_ratio()
        );
    }
}
