//! Multi-threaded throughput measurement.
//!
//! Reproduces the paper's §4.1 protocol: each configuration is run
//! several times; within a run the throughput is measured over several
//! consecutive windows and the **best** window is kept (the paper does
//! this to exclude JIT-compilation warm-up; we keep it to exclude OS
//! scheduling noise); the reported score is the **average of the bests**
//! across runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use solero_testkit::pad::CachePadded;
use solero_testkit::rng::TestRng;
use solero_runtime::stats::StatsSnapshot;

/// Measurement protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Warm-up time before the first window.
    pub warmup: Duration,
    /// Length of one measurement window.
    pub window: Duration,
    /// Windows per run (best is kept) — the paper uses 5.
    pub windows: usize,
    /// Independent runs (bests are averaged) — the paper uses 5.
    pub runs: usize,
}

impl RunConfig {
    /// The paper's protocol at a given thread count, scaled down to
    /// simulator-friendly durations.
    pub fn paper(threads: usize) -> Self {
        RunConfig {
            threads,
            warmup: Duration::from_millis(100),
            window: Duration::from_millis(200),
            windows: 5,
            runs: 5,
        }
    }

    /// A fast configuration for tests and `--quick` reproduction runs.
    pub fn quick(threads: usize) -> Self {
        RunConfig {
            threads,
            warmup: Duration::from_millis(20),
            window: Duration::from_millis(60),
            windows: 2,
            runs: 2,
        }
    }
}

/// The outcome of measuring one workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Operations per second (average of per-run best windows).
    pub ops_per_sec: f64,
    /// Lock statistics accumulated over every measured window.
    pub stats: StatsSnapshot,
    /// Total measured time behind `stats` (for frequency computations).
    pub measured_secs: f64,
}

impl Measurement {
    /// Average nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops_per_sec == 0.0 {
            f64::INFINITY
        } else {
            1e9 / self.ops_per_sec
        }
    }
}

/// Runs `op` from `cfg.threads` worker threads and measures throughput.
///
/// `op(thread_index, rng)` performs one workload operation. `stats`
/// samples the workload's lock counters (used to attribute failure
/// ratios and read-only ratios to the measured windows).
pub fn measure<F>(cfg: &RunConfig, op: F, stats: impl Fn() -> StatsSnapshot) -> Measurement
where
    F: Fn(usize, &mut TestRng) + Sync,
{
    let mut best_sum = 0.0;
    let mut stats_acc = StatsSnapshot::default();
    let mut measured_secs = 0.0;
    for run in 0..cfg.runs {
        let (best, st, secs) = one_run(cfg, &op, &stats, run as u64);
        best_sum += best;
        stats_acc = stats_acc.merge(&st);
        measured_secs += secs;
    }
    Measurement {
        ops_per_sec: best_sum / cfg.runs as f64,
        stats: stats_acc,
        // Actual wall time of the measured windows, not the configured
        // window length: sleeps only promise a *lower* bound, and the
        // overshoot is exactly the time the accumulated `stats` kept
        // counting — deriving event frequencies from the configured
        // duration would overstate them.
        measured_secs,
    }
}

/// Exports the installed observability recorder, if any: writes the
/// JSONL trace to `path` and returns the rendered human-readable
/// report.
///
/// Returns `Ok(None)` without touching `path` when no recorder is
/// installed (the default, and always the case when `solero-obs` is
/// built without its `trace` feature and nothing called
/// [`solero_obs::install`]).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn export_obs(path: &std::path::Path) -> std::io::Result<Option<String>> {
    let Some(rec) = solero_obs::recorder() else {
        return Ok(None);
    };
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    rec.export_jsonl(&mut out)?;
    std::io::Write::flush(&mut out)?;
    Ok(Some(solero_obs::report::render(&rec.snapshot())))
}

fn one_run<F>(
    cfg: &RunConfig,
    op: &F,
    stats: &impl Fn() -> StatsSnapshot,
    seed_base: u64,
) -> (f64, StatsSnapshot, f64)
where
    F: Fn(usize, &mut TestRng) + Sync,
{
    let running = AtomicBool::new(true);
    let counters: Vec<CachePadded<AtomicU64>> = (0..cfg.threads)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let mut best = 0.0f64;
    let mut stats_delta = StatsSnapshot::default();
    let mut measured_secs = 0.0f64;
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let running = &running;
            let counter = &counters[t];
            s.spawn(move || {
                let mut rng = TestRng::seed_from_u64(
                    0x9e37_79b9_7f4a_7c15u64
                        .wrapping_mul(t as u64 + 1)
                        .wrapping_add(seed_base),
                );
                let mut local = 0u64;
                while running.load(Ordering::Relaxed) {
                    op(t, &mut rng);
                    local += 1;
                    // Publish in small batches to keep the counter off
                    // the hot path.
                    if local % 64 == 0 {
                        counter.store(local, Ordering::Relaxed);
                    }
                }
                counter.store(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(cfg.warmup);
        let stats_before = stats();
        for _ in 0..cfg.windows {
            let count0: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            let t0 = Instant::now();
            std::thread::sleep(cfg.window);
            let count1: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            let dt = t0.elapsed().as_secs_f64();
            measured_secs += dt;
            let rate = (count1 - count0) as f64 / dt;
            if rate > best {
                best = rate;
            }
        }
        stats_delta = stats().since(&stats_before);
        running.store(false, Ordering::Relaxed);
    });
    (best, stats_delta, measured_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as RawAtomic;

    #[test]
    fn measures_a_trivial_op() {
        let total = RawAtomic::new(0);
        let cfg = RunConfig {
            threads: 2,
            warmup: Duration::from_millis(5),
            window: Duration::from_millis(20),
            windows: 2,
            runs: 1,
        };
        let m = measure(
            &cfg,
            |_, _| {
                total.fetch_add(1, Ordering::Relaxed);
            },
            StatsSnapshot::default,
        );
        assert!(m.ops_per_sec > 1000.0, "{}", m.ops_per_sec);
        assert!(m.ns_per_op() < 1e6);
        assert!(total.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn measured_secs_is_actual_window_time() {
        let cfg = RunConfig {
            threads: 1,
            warmup: Duration::from_millis(1),
            window: Duration::from_millis(10),
            windows: 3,
            runs: 2,
        };
        let m = measure(&cfg, |_, _| std::hint::spin_loop(), StatsSnapshot::default);
        let configured = cfg.runs as f64 * cfg.windows as f64 * cfg.window.as_secs_f64();
        // Sleeps never return early, so the measured time can only
        // overshoot the configured one — and on a loaded machine it
        // does, which is exactly why it must be measured, not assumed.
        assert!(
            m.measured_secs >= configured,
            "measured {} < configured {configured}",
            m.measured_secs
        );
        // Sanity bound: not wildly off either (an hour of overshoot on
        // 60ms of windows would mean the accumulation is broken).
        assert!(
            m.measured_secs < configured * 100.0 + 10.0,
            "measured {} implausibly large",
            m.measured_secs
        );
    }

    #[test]
    fn quick_config_is_smaller_than_paper() {
        let q = RunConfig::quick(4);
        let p = RunConfig::paper(4);
        assert!(q.window < p.window);
        assert!(q.runs <= p.runs);
        assert_eq!(q.threads, 4);
    }

    #[test]
    fn export_obs_is_a_no_op_without_a_recorder() {
        // No recorder is installed in this test binary, so the export
        // returns None without even creating the file.
        let path = std::env::temp_dir().join("solero-obs-driver-test-should-not-exist.jsonl");
        let got = export_obs(&path).expect("no I/O happens");
        assert!(got.is_none());
        assert!(!path.exists());
    }

    #[test]
    fn zero_rate_yields_infinite_ns() {
        let m = Measurement {
            ops_per_sec: 0.0,
            stats: StatsSnapshot::default(),
            measured_secs: 1.0,
        };
        assert!(m.ns_per_op().is_infinite());
    }
}
