//! Open-loop store traffic with coordinated-omission-safe latency.
//!
//! The paper's driver (and most microbenches) is **closed-loop**: each
//! thread issues its next operation the instant the previous one
//! returns, so a slow operation silently throttles the arrival rate
//! and the latency histogram never sees the requests that *would* have
//! arrived during the stall — the coordinated-omission artifact. This
//! module drives the [`solero_store::KvStore`] the way a service is
//! actually loaded:
//!
//! * every worker owns a **fixed arrival schedule** — operation `i` is
//!   *intended* to start at `t₀ + i · interval`, computed with exact
//!   integer arithmetic ([`Schedule`]) so the schedule never drifts
//!   across measurement windows;
//! * a worker that falls behind does **not** skip or re-plan: it issues
//!   the late operation immediately, and the recorded latency is
//!   **intended-start → completion**, so queueing delay from a stall is
//!   charged to every operation it displaced;
//! * keys come from the seeded [`crate::zipf::Zipf`] sampler
//!   (scrambled, so hot keys spread across shards), and the get/scan/
//!   put mix is a knob ([`OpMix`]).
//!
//! Latencies land in the workspace-wide [`solero_obs::hist`] log2
//! histogram; [`OpenLoopReport`] summarizes p50/p99/p999 plus achieved
//! vs offered throughput.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use solero_runtime::stats::StatsSnapshot;
use solero_store::KvStore;
use solero_testkit::rng::TestRng;

use crate::latency::{LatencyHistogram, LatencyReport};
use crate::zipf::Zipf;

/// A drift-free arrival schedule: `intended_ns(i) = i · interval_ns`
/// exactly, in integers. There is no accumulated floating-point error
/// to drift across windows — additivity is tested in
/// `tests/zipf_props.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    interval_ns: u64,
}

impl Schedule {
    /// A schedule firing every `interval_ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// If `interval_ns` is 0.
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "zero-interval schedule");
        Schedule { interval_ns }
    }

    /// A schedule offering `ops_per_sec` (interval rounded down to
    /// whole nanoseconds, so the offered rate is rounded *up* to the
    /// nearest representable one).
    ///
    /// # Panics
    ///
    /// If `ops_per_sec` is 0 or above 1 GHz.
    pub fn from_rate(ops_per_sec: u64) -> Self {
        assert!(
            ops_per_sec > 0 && ops_per_sec <= 1_000_000_000,
            "rate out of range: {ops_per_sec}"
        );
        Schedule::new(1_000_000_000 / ops_per_sec)
    }

    /// Nanoseconds between intended starts.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// The intended start of operation `i`, in nanoseconds after t₀.
    pub fn intended_ns(&self, i: u64) -> u64 {
        i.checked_mul(self.interval_ns)
            .expect("schedule overflow: i * interval exceeds u64 nanoseconds")
    }

    /// Operations scheduled inside a window of length `window`.
    pub fn ops_in(&self, window: Duration) -> u64 {
        (window.as_nanos() / self.interval_ns as u128) as u64
    }
}

/// Operation mix knobs (percent get / percent scan, remainder put).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Percent of operations that are point-gets.
    pub get_pct: u32,
    /// Percent of operations that are range-scans.
    pub scan_pct: u32,
    /// Keys per scan.
    pub scan_len: usize,
}

impl OpMix {
    /// The service-shaped default: 90% gets, 5% scans of 32 keys, 5%
    /// puts.
    pub fn read_heavy() -> Self {
        OpMix {
            get_pct: 90,
            scan_pct: 5,
            scan_len: 32,
        }
    }

    fn validate(&self) {
        assert!(
            self.get_pct + self.scan_pct <= 100,
            "mix over 100%: {self:?}"
        );
        assert!(self.scan_pct == 0 || self.scan_len > 0, "empty scans");
    }
}

/// Open-loop run shape.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Concurrent load-generating workers.
    pub workers: usize,
    /// Offered rate per worker (ops/s); total offered load is
    /// `workers × rate_per_worker`.
    pub rate_per_worker: u64,
    /// One measurement window.
    pub window: Duration,
    /// Windows per run (the schedule runs through all of them without
    /// re-anchoring — drift would show up here).
    pub windows: usize,
    /// Closed-loop warmup operations per worker before the clock
    /// starts (fills caches, faults in the heap, settles adaptive
    /// policies); stats are reset afterwards.
    pub warmup_ops: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Zipfian skew of the key popularity distribution.
    pub theta: f64,
    /// Root seed; worker `w` uses the derived stream `w`.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// A quick smoke shape (used by `bench_store --quick` and ci.sh).
    pub fn quick() -> Self {
        OpenLoopConfig {
            workers: 2,
            rate_per_worker: 20_000,
            window: Duration::from_millis(50),
            windows: 1,
            warmup_ops: 500,
            mix: OpMix::read_heavy(),
            theta: 0.99,
            seed: 0x5EED_09E4,
        }
    }
}

/// What one open-loop run produced.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopReport {
    /// Intended-start → completion latency percentiles.
    pub latency: LatencyReport,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock seconds from t₀ to the last completion.
    pub elapsed_secs: f64,
    /// Achieved throughput (completed ops / elapsed).
    pub achieved: f64,
    /// Offered load (`workers × rate_per_worker`).
    pub offered: f64,
    /// Operations that started at least one full interval late — the
    /// operations a closed-loop driver would have silently omitted.
    pub late_starts: u64,
    /// Merged lock statistics over the measured phase.
    pub stats: StatsSnapshot,
}

/// One worker operation against the store.
fn store_op(store: &KvStore, zipf: &Zipf, mix: &OpMix, rng: &mut TestRng) {
    let key = zipf.scrambled(rng) as i64;
    let dice = rng.gen_range(0..100u32);
    if dice < mix.get_pct {
        std::hint::black_box(store.get(key).expect("gets cannot genuinely fault"));
    } else if dice < mix.get_pct + mix.scan_pct {
        std::hint::black_box(store.scan(key, mix.scan_len).expect("scans cannot genuinely fault"));
    } else {
        let v = rng.gen::<i64>();
        store.put(key, v).expect("puts cannot genuinely fault");
    }
}

/// Waits until `intended`; hybrid sleep/spin so the schedule is honored
/// to well under the histogram's bucket resolution.
fn wait_until(t0: Instant, intended_ns: u64) {
    let intended = Duration::from_nanos(intended_ns);
    loop {
        let now = t0.elapsed();
        if now >= intended {
            return;
        }
        let remaining = intended - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Runs the open-loop load against `store` and reports intended-start →
/// completion latency plus achieved vs offered throughput.
///
/// The store should be pre-populated ([`populate`]); stats are reset
/// after warmup so the report covers only the measured phase.
pub fn run_open_loop(store: &KvStore, cfg: &OpenLoopConfig) -> OpenLoopReport {
    cfg.mix.validate();
    assert!(cfg.workers >= 1 && cfg.windows >= 1);
    let zipf = Zipf::new(store.config().keys as u64, cfg.theta);
    let schedule = Schedule::from_rate(cfg.rate_per_worker);
    let ops_per_worker = schedule.ops_in(cfg.window) * cfg.windows as u64;
    let hist = LatencyHistogram::new();
    let late = std::sync::atomic::AtomicU64::new(0);
    let start = Barrier::new(cfg.workers + 1);

    let t0 = std::thread::scope(|s| {
        for w in 0..cfg.workers {
            let (hist, late, start, zipf) = (&hist, &late, &start, &zipf);
            s.spawn(move || {
                let mut rng = TestRng::derive(cfg.seed, w as u64);
                for _ in 0..cfg.warmup_ops {
                    store_op(store, zipf, &cfg.mix, &mut rng);
                }
                start.wait(); // warmup done everywhere
                start.wait(); // stats reset; clock running
                let t0 = Instant::now();
                let mut behind = 0u64;
                for i in 0..ops_per_worker {
                    let intended = schedule.intended_ns(i);
                    wait_until(t0, intended);
                    let started = t0.elapsed().as_nanos() as u64;
                    if started >= intended + schedule.interval_ns() {
                        behind += 1;
                    }
                    store_op(store, zipf, &cfg.mix, &mut rng);
                    let done = t0.elapsed().as_nanos() as u64;
                    hist.record_ns(done - intended);
                }
                late.fetch_add(behind, std::sync::atomic::Ordering::Relaxed);
            });
        }
        start.wait();
        store.reset_stats();
        let t0 = Instant::now();
        start.wait();
        t0
    });

    let elapsed = t0.elapsed().as_secs_f64();
    let ops = ops_per_worker * cfg.workers as u64;
    OpenLoopReport {
        latency: LatencyReport::from_snapshot(&hist.snapshot()),
        ops,
        elapsed_secs: elapsed,
        achieved: ops as f64 / elapsed,
        offered: (cfg.workers as u64 * cfg.rate_per_worker) as f64,
        late_starts: late.load(std::sync::atomic::Ordering::Relaxed),
        stats: store.snapshot_stats(),
    }
}

/// Pre-populates every key of the store, in per-shard batches sized to
/// keep the COW transient small. `value(key)` supplies the payload.
pub fn populate(store: &KvStore, value: impl Fn(i64) -> i64) {
    const CHUNK: i64 = 4096;
    let keys = store.config().keys;
    let mut k = 0;
    while k < keys {
        let hi = (k + CHUNK).min(keys);
        let batch: Vec<(i64, i64)> = (k..hi).map(|key| (key, value(key))).collect();
        store.put_many(&batch).expect("populate");
        k = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::SoleroStrategy;
    use solero_store::StoreConfig;

    #[test]
    fn schedule_is_exact_integer_arithmetic() {
        let s = Schedule::from_rate(333_333);
        assert_eq!(s.interval_ns(), 3000);
        assert_eq!(s.intended_ns(0), 0);
        assert_eq!(s.intended_ns(1_000_000), 3_000_000_000);
        assert_eq!(s.ops_in(Duration::from_secs(1)), 333_333);
    }

    #[test]
    fn open_loop_run_reports_all_scheduled_ops() {
        let store = KvStore::new(
            StoreConfig::new(1024).with_shards(4),
            SoleroStrategy::new,
        );
        populate(&store, |k| k);
        let cfg = OpenLoopConfig {
            workers: 2,
            rate_per_worker: 50_000,
            window: Duration::from_millis(20),
            windows: 2,
            warmup_ops: 100,
            mix: OpMix::read_heavy(),
            theta: 0.9,
            seed: 0x09E4_0001,
        };
        let r = run_open_loop(&store, &cfg);
        assert_eq!(r.ops, 2 * 2 * 1000);
        assert_eq!(r.latency.samples, r.ops);
        assert!(r.achieved > 0.0 && r.offered == 100_000.0);
        // The measured phase does real sections on every shard.
        assert!(r.stats.total_sections() >= r.ops, "{:?}", r.stats);
    }

    #[test]
    fn populate_fills_every_key() {
        let store = KvStore::new(StoreConfig::new(10_000), SoleroStrategy::new);
        populate(&store, |k| k * 7);
        assert_eq!(store.get(0).unwrap(), Some(0));
        assert_eq!(store.get(9_999).unwrap(), Some(69_993));
        assert_eq!(store.checkpoint().unwrap().len(), 10_000);
    }
}
