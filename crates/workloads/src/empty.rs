//! The `Empty` micro-benchmark (paper Figure 10).
//!
//! An empty synchronized block executed in a loop — pure lock overhead.
//! The paper classifies the empty block as read-only, so under SOLERO it
//! elides; `Unelided-SOLERO` and `WeakBarrier-SOLERO` isolate the cost
//! of the write path and of the stronger memory fences respectively.

use solero::SyncStrategy;
use solero_runtime::stats::StatsSnapshot;

/// The empty-synchronized-block workload over a strategy.
#[derive(Debug)]
pub struct EmptyBench<S> {
    strat: S,
}

impl<S: SyncStrategy> EmptyBench<S> {
    /// Wraps a strategy.
    pub fn new(strat: S) -> Self {
        EmptyBench { strat }
    }

    /// One empty synchronized block (read-only — it writes nothing).
    #[inline]
    pub fn op(&self) {
        self.strat
            .read_section(|_| Ok(()))
            .expect("empty section cannot fault");
    }

    /// Lock statistics.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.strat.snapshot()
    }

    /// Resets statistics.
    pub fn reset_stats(&self) {
        self.strat.reset_stats();
    }

    /// Strategy name.
    pub fn name(&self) -> &'static str {
        self.strat.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::{BravoStrategy, JavaRwLock, LockStrategy, RwStrategy, SoleroConfig, SoleroStrategy};

    #[test]
    fn empty_op_counts_one_read_section() {
        let b = EmptyBench::new(SoleroStrategy::new());
        for _ in 0..10 {
            b.op();
        }
        let s = b.snapshot();
        assert_eq!(s.read_enters, 10);
        assert_eq!(s.elision_success, 10);
        assert_eq!(s.write_enters, 0);
    }

    #[test]
    fn all_strategies_execute_the_empty_block() {
        EmptyBench::new(LockStrategy::new()).op();
        EmptyBench::new(RwStrategy::<JavaRwLock>::new()).op();
        EmptyBench::new(BravoStrategy::new()).op();
        EmptyBench::new(SoleroStrategy::configured(
            SoleroConfig::builder().unelided(true).build(),
        ))
        .op();
        EmptyBench::new(SoleroStrategy::configured(
            SoleroConfig::builder().weak_barrier(true).build(),
        ))
        .op();
    }
}
