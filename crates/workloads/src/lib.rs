//! The paper's workloads and the measurement driver.
//!
//! Every benchmark of the evaluation section, expressed once and run
//! over any [`solero::SyncStrategy`] so the three lock implementations
//! (and the two SOLERO ablations) are compared on identical code:
//!
//! * [`empty`] — the empty-synchronized-block overhead probe
//!   (Figure 10);
//! * [`maps`] — HashMap/TreeMap with 0%/5% writes, coarse and
//!   fine-grained (Figures 11–13 and 15);
//! * [`jbb`] — a mini-SPECjbb2005 with the TPC-C style transaction mix
//!   (Figures 11 and 14);
//! * [`dacapo`] — synthetic applications matching the DaCapo lock
//!   profiles of Table 1 (Figure 16);
//! * [`bursty`] — the write-bursty phase workload behind the adaptive
//!   policy's auto-disable/re-enable evidence (`BENCH_adaptive.json`);
//! * [`zipf`] / [`openloop`] — the service-shaped extension: a seeded
//!   Zipfian key sampler and the coordinated-omission-safe open-loop
//!   driver for the `solero-store` MVCC snapshot store
//!   (`BENCH_store.json`);
//! * [`table1`] — the lock-statistics table itself;
//! * [`driver`] — the §4.1 best-of-windows, average-of-runs throughput
//!   protocol.
//!
//! # Examples
//!
//! Measure single-thread HashMap throughput under SOLERO:
//!
//! ```
//! use solero::SoleroStrategy;
//! use solero_workloads::driver::{measure, RunConfig};
//! use solero_workloads::maps::{MapBench, MapConfig, MapKind};
//! use std::time::Duration;
//!
//! let bench = MapBench::new(MapConfig::paper(MapKind::Hash, 0, 1), SoleroStrategy::new);
//! let cfg = RunConfig { threads: 1, warmup: Duration::from_millis(5),
//!     window: Duration::from_millis(20), windows: 1, runs: 1 };
//! let m = measure(&cfg, |t, rng| bench.op(t, rng), || bench.snapshot());
//! assert!(m.ops_per_sec > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bursty;
pub mod dacapo;
pub mod driver;
pub mod empty;
pub mod jbb;
pub mod latency;
pub mod maps;
pub mod openloop;
pub mod table1;
pub mod zipf;
