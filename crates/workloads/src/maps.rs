//! The HashMap and TreeMap micro-benchmarks (paper Figures 11–13, 15).
//!
//! A shared `java.util.HashMap`/`TreeMap` with 1K entries accessed
//! inside synchronized blocks. Configurations:
//!
//! * **0% writes** — every operation is a `get` (read-only section);
//! * **5% writes** — 5% of operations are `put`s (writing sections);
//! * **fine-grained** — one map *per thread*, each behind its own lock,
//!   with operations landing on a uniformly random map (Figure 12(c)).

use std::sync::Arc;

use solero_testkit::rng::TestRng;
use solero::{BoxedStrategy, Checkpoint, Fault, SyncStrategy};
use solero_collections::{JHashMap, JTreeMap};
use solero_heap::Heap;
use solero_runtime::stats::StatsSnapshot;

/// Which map class backs the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// `java.util.HashMap` equivalent.
    Hash,
    /// `java.util.TreeMap` equivalent.
    Tree,
}

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct MapConfig {
    /// Which collection.
    pub kind: MapKind,
    /// Pre-populated entries per map (the paper uses 1K).
    pub entries: i64,
    /// Percentage of operations that write (`put`), 0–100.
    pub write_pct: u32,
    /// Number of independent maps, each with its own lock (1 = the
    /// coarse version; `threads` = the fine-grained version).
    pub shards: usize,
}

impl MapConfig {
    /// The paper's 1K-entry configuration.
    pub fn paper(kind: MapKind, write_pct: u32, shards: usize) -> Self {
        MapConfig {
            kind,
            entries: 1024,
            write_pct,
            shards,
        }
    }
}

#[derive(Debug)]
enum AnyMap {
    Hash(JHashMap),
    Tree(JTreeMap),
}

impl AnyMap {
    fn get(
        &self,
        heap: &Heap,
        k: i64,
        ck: &mut dyn Checkpoint,
    ) -> Result<Option<i64>, Fault> {
        match self {
            AnyMap::Hash(m) => m.get(heap, k, ck),
            AnyMap::Tree(m) => m.get(heap, k, ck),
        }
    }

    fn put(&self, heap: &Heap, k: i64, v: i64) -> Result<Option<i64>, Fault> {
        match self {
            AnyMap::Hash(m) => m.put(heap, k, v),
            AnyMap::Tree(m) => m.put(heap, k, v),
        }
    }

    fn remove(&self, heap: &Heap, k: i64) -> Result<Option<i64>, Fault> {
        match self {
            AnyMap::Hash(m) => m.remove(heap, k),
            AnyMap::Tree(m) => m.remove(heap, k),
        }
    }
}

struct Shard {
    strat: BoxedStrategy,
    map: AnyMap,
}

/// The map benchmark over a boxed, dynamically-dispatched strategy, so
/// heterogeneous strategy fleets share one monomorphization.
pub struct MapBench {
    heap: Arc<Heap>,
    shards: Vec<Shard>,
    cfg: MapConfig,
}

impl std::fmt::Debug for MapBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapBench")
            .field("strategy", &self.name())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl MapBench {
    /// Builds and pre-populates the maps. Generic over the concrete
    /// strategy purely for call-site convenience: the shards box each
    /// instance behind [`BoxedStrategy`].
    pub fn new<S: SyncStrategy + 'static>(cfg: MapConfig, make: impl Fn() -> S) -> Self {
        Self::new_boxed(cfg, || Box::new(make()))
    }

    /// Builds the benchmark from an already-boxed strategy factory.
    pub fn new_boxed(cfg: MapConfig, make: impl Fn() -> BoxedStrategy) -> Self {
        // Size the heap for entries plus write-churn headroom.
        let words = (cfg.entries as usize * cfg.shards * 24 + (1 << 16))
            .next_power_of_two()
            .max(1 << 18);
        let heap = Arc::new(Heap::new(words));
        let shards = (0..cfg.shards)
            .map(|_| {
                let map = match cfg.kind {
                    MapKind::Hash => AnyMap::Hash(
                        JHashMap::new(&heap, cfg.entries as usize * 2).expect("setup"),
                    ),
                    MapKind::Tree => AnyMap::Tree(JTreeMap::new(&heap).expect("setup")),
                };
                for k in 0..cfg.entries {
                    map.put(&heap, k, k * 3 + 1).expect("populate");
                }
                Shard { strat: make(), map }
            })
            .collect();
        MapBench { heap, shards, cfg }
    }

    /// One benchmark operation from thread `t`.
    #[inline]
    pub fn op(&self, _t: usize, rng: &mut TestRng) {
        let shard = if self.shards.len() == 1 {
            &self.shards[0]
        } else {
            &self.shards[rng.gen_range(0..self.shards.len())]
        };
        let key = rng.gen_range(0..self.cfg.entries);
        if self.cfg.write_pct > 0 && rng.gen_range(0..100u32) < self.cfg.write_pct {
            // Writing critical section. Alternate update/remove+insert so
            // nodes churn (recycled handles are what speculative readers
            // trip over, as in a real JVM heap).
            let v = rng.gen::<i64>() | 1;
            shard.strat.write_with(|| {
                if v & 2 == 0 {
                    shard.map.remove(&self.heap, key).expect("writer-side");
                    shard.map.put(&self.heap, key, v).expect("writer-side");
                } else {
                    shard.map.put(&self.heap, key, v).expect("writer-side");
                }
            });
        } else {
            // Read-only critical section.
            let got = shard
                .strat
                .read_with(|ck| shard.map.get(&self.heap, key, ck as &mut dyn Checkpoint))
                .expect("reads cannot genuinely fault here");
            std::hint::black_box(got);
        }
    }

    /// Merged lock statistics across shards.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s.strat.snapshot()))
    }

    /// Resets statistics on every shard.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.strat.reset_stats();
        }
    }

    /// Strategy name.
    pub fn name(&self) -> &'static str {
        self.shards[0].strat.name()
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &MapConfig {
        &self.cfg
    }
}

/// Convenience: a read-mostly variant where writes go through the §5
/// read-mostly path instead of a separate writing section — used by the
/// extension example and the ablation bench.
impl MapBench {
    /// One operation routed entirely through `mostly_section`: reads
    /// stay speculative, the occasional write upgrades in place.
    pub fn op_mostly(&self, rng: &mut TestRng) {
        let shard = &self.shards[0];
        let key = rng.gen_range(0..self.cfg.entries);
        let write = self.cfg.write_pct > 0 && rng.gen_range(0..100u32) < self.cfg.write_pct;
        let v = rng.gen::<i64>() | 1;
        shard
            .strat
            .mostly_with(|ck| {
                let cur = shard.map.get(&self.heap, key, ck as &mut dyn Checkpoint)?;
                if write {
                    ck.ensure_write()?;
                    shard.map.put(&self.heap, key, v)?;
                }
                Ok(cur)
            })
            .expect("no genuine faults");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::{BravoStrategy, JavaRwLock, LockStrategy, RwStrategy, SoleroStrategy};

    fn smoke<S: SyncStrategy + 'static>(make: impl Fn() -> S, kind: MapKind, write_pct: u32) {
        let b = MapBench::new(
            MapConfig {
                kind,
                entries: 128,
                write_pct,
                shards: 2,
            },
            make,
        );
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            b.op(0, &mut rng);
        }
        let s = b.snapshot();
        assert_eq!(s.total_sections(), 500);
        if write_pct == 0 {
            assert_eq!(s.write_enters, 0);
            assert!((s.read_only_ratio() - 1.0).abs() < 1e-9);
        } else {
            assert!(s.write_enters > 0);
            assert!(s.read_only_ratio() > 0.8);
        }
    }

    #[test]
    fn hash_smoke_all_strategies() {
        smoke(LockStrategy::new, MapKind::Hash, 0);
        smoke(RwStrategy::<JavaRwLock>::new, MapKind::Hash, 5);
        smoke(BravoStrategy::new, MapKind::Hash, 5);
        smoke(SoleroStrategy::new, MapKind::Hash, 5);
    }

    #[test]
    fn tree_smoke_all_strategies() {
        smoke(LockStrategy::new, MapKind::Tree, 5);
        smoke(RwStrategy::<JavaRwLock>::new, MapKind::Tree, 0);
        smoke(BravoStrategy::new, MapKind::Tree, 0);
        smoke(SoleroStrategy::new, MapKind::Tree, 5);
    }

    #[test]
    fn solero_read_only_config_elides_everything() {
        let b = MapBench::new(MapConfig::paper(MapKind::Hash, 0, 1), SoleroStrategy::new);
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            b.op(0, &mut rng);
        }
        let s = b.snapshot();
        assert_eq!(s.elision_success, 1000);
        assert_eq!(s.elision_failure, 0);
    }

    #[test]
    fn mostly_path_upgrades_on_writes() {
        let b = MapBench::new(
            MapConfig {
                kind: MapKind::Hash,
                entries: 64,
                write_pct: 50,
                shards: 1,
            },
            SoleroStrategy::new,
        );
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            b.op_mostly(&mut rng);
        }
        let s = b.snapshot();
        assert!(s.mostly_upgrades > 0, "{s}");
        assert!(s.elision_success > 0, "{s}");
    }

    #[test]
    fn concurrent_map_bench_is_sound() {
        let b = MapBench::new(MapConfig::paper(MapKind::Tree, 5, 1), SoleroStrategy::new);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                s.spawn(move || {
                    let mut rng = TestRng::seed_from_u64(t as u64);
                    for _ in 0..5_000 {
                        b.op(t, &mut rng);
                    }
                });
            }
        });
        let s = b.snapshot();
        assert_eq!(s.total_sections(), 20_000);
    }
}
