//! Property tests for the Zipfian sampler and the open-loop schedule
//! arithmetic (`solero_workloads::{zipf, openloop}`).
//!
//! Driven by `solero_testkit::forall`; any failure prints the root
//! seed, and `SOLERO_TESTKIT_SEED` replays the identical case matrix.

use std::time::Duration;

use solero_testkit::forall;
use solero_testkit::rng::TestRng;
use solero_workloads::openloop::Schedule;
use solero_workloads::zipf::Zipf;

/// Every drawn rank — and every scrambled key — lies in `[0, n)`, for
/// arbitrary rank-space sizes and skews.
#[test]
fn ranks_and_scrambled_keys_stay_in_bounds() {
    forall(64, 0x21FF_0001, |g| {
        let n = g.rng().gen_range(1..20_000u64);
        let theta = 0.05 + g.rng().gen::<f64>() * 0.93; // (0.05, 0.98)
        let z = Zipf::new(n, theta);
        let mut rng = TestRng::seed_from_u64(g.rng().gen());
        for _ in 0..200 {
            assert!(z.sample(&mut rng) < n, "rank escaped [0, {n})");
            assert!(z.scrambled(&mut rng) < n, "key escaped [0, {n})");
        }
    });
}

/// The sampler is a pure function of its seed: identical seeds yield
/// identical traces, and the trace does not depend on construction
/// order or repeated sampler instances.
#[test]
fn sampling_is_seed_deterministic() {
    forall(32, 0x21FF_0002, |g| {
        let n = g.rng().gen_range(2..10_000u64);
        let theta = 0.1 + g.rng().gen::<f64>() * 0.85;
        let seed: u64 = g.rng().gen();
        let z1 = Zipf::new(n, theta);
        let z2 = Zipf::new(n, theta);
        let mut a = TestRng::seed_from_u64(seed);
        let mut b = TestRng::seed_from_u64(seed);
        let ta: Vec<u64> = (0..100).map(|_| z1.scrambled(&mut a)).collect();
        let tb: Vec<u64> = (0..100).map(|_| z2.scrambled(&mut b)).collect();
        assert_eq!(ta, tb, "same seed must replay the same key trace");
    });
}

/// Skew monotonicity: raising θ concentrates more of the mass on the
/// hottest ranks. Measured as the sampled share of the top 1% of
/// ranks, which grows by integer factors between these θ values — far
/// beyond sampling noise at 20 000 draws.
#[test]
fn higher_theta_means_heavier_hot_mass() {
    forall(8, 0x21FF_0003, |g| {
        let n = 1000u64;
        let samples = 20_000u32;
        let seed: u64 = g.rng().gen();
        let hot_share = |theta: f64| -> f64 {
            let z = Zipf::new(n, theta);
            let mut rng = TestRng::seed_from_u64(seed);
            let hot = (0..samples).filter(|_| z.sample(&mut rng) < n / 100).count();
            hot as f64 / samples as f64
        };
        let (low, mid, high) = (hot_share(0.5), hot_share(0.8), hot_share(0.95));
        assert!(
            low < mid && mid < high,
            "hot-key mass must grow with theta: {low:.3} !< {mid:.3} !< {high:.3}"
        );
    });
}

/// The schedule is exact integer arithmetic: intended starts are
/// additive (`intended(a + b) = intended(a) + intended(b)`), so
/// chaining measurement windows accumulates **zero** drift — the
/// intended start of the first op of window `k` is exactly `k × window`
/// regardless of how many windows preceded it.
#[test]
fn open_loop_schedule_never_drifts_across_windows() {
    forall(64, 0x21FF_0004, |g| {
        let interval = g.rng().gen_range(1..1_000_000u64);
        let s = Schedule::new(interval);
        let a = g.rng().gen_range(0..1_000_000u64);
        let b = g.rng().gen_range(0..1_000_000u64);
        assert_eq!(
            s.intended_ns(a + b),
            s.intended_ns(a) + s.intended_ns(b),
            "schedule arithmetic drifted"
        );
        // Windowed form: k windows of m ops start exactly where one
        // window of k·m ops says they do.
        let m = g.rng().gen_range(1..10_000u64);
        let k = g.rng().gen_range(1..64u64);
        assert_eq!(s.intended_ns(k * m), k * s.intended_ns(m));
        // Monotone and starting at zero.
        assert_eq!(s.intended_ns(0), 0);
        assert!(s.intended_ns(a) <= s.intended_ns(a + 1));
    });
}

/// `from_rate` and `ops_in` agree: a window holds exactly the ops whose
/// intended start falls inside it.
#[test]
fn window_op_counts_match_the_schedule() {
    forall(64, 0x21FF_0005, |g| {
        let rate = g.rng().gen_range(1..2_000_000u64);
        let s = Schedule::from_rate(rate);
        let window = Duration::from_millis(g.rng().gen_range(1..2_000u64));
        let ops = s.ops_in(window);
        let w_ns = window.as_nanos() as u64;
        if ops > 0 {
            assert!(s.intended_ns(ops - 1) < w_ns, "op scheduled past its window");
        }
        // Floor semantics: `ops` whole intervals fit, one more would
        // not.
        assert!(s.intended_ns(ops) <= w_ns, "window over-filled");
        assert!(
            w_ns < s.intended_ns(ops) + s.interval_ns(),
            "window under-filled"
        );
    });
}
