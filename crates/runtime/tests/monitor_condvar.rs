//! `wait`/`notify_one`/`notify_all` coverage for the inflated monitor
//! after its migration from parking-lot primitives to `std::sync`
//! (satellite of the hermetic-testkit issue).
//!
//! The monitor implements Java semantics: `wait` releases **all**
//! recursion levels atomically, parks, and restores the exact depth on
//! return; spurious wakeups are permitted, so all coordination below
//! loops on an explicit predicate — exactly what `Object.wait` requires
//! of its callers.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use solero_runtime::osmonitor::OsMonitor;
use solero_runtime::thread::ThreadId;

fn spawn_waiter(
    mon: &Arc<OsMonitor>,
    flag: &Arc<AtomicBool>,
    woken: &Arc<AtomicU32>,
) -> std::thread::JoinHandle<()> {
    let (mon, flag, woken) = (Arc::clone(mon), Arc::clone(flag), Arc::clone(woken));
    std::thread::spawn(move || {
        let tid = ThreadId::current();
        mon.enter(tid);
        // Java's mandated idiom: predicate loop around wait, which is
        // what makes spurious wakeups (and notifies that raced the
        // predicate) harmless.
        while !flag.load(Ordering::Acquire) {
            mon.wait(tid);
        }
        woken.fetch_add(1, Ordering::AcqRel);
        mon.exit(tid);
    })
}

/// Polls until `cond` holds, failing the test after a bound.
fn eventually(cond: impl Fn() -> bool, what: &str) {
    for _ in 0..2_000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn notify_one_wakes_a_single_waiter() {
    let mon = Arc::new(OsMonitor::new(1));
    let flag = Arc::new(AtomicBool::new(false));
    let woken = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..3).map(|_| spawn_waiter(&mon, &flag, &woken)).collect();
    eventually(|| mon.has_waiters(), "all waiters parked");

    let tid = ThreadId::current();
    // A notify_one with the predicate still false must NOT let any
    // waiter complete: its loop re-checks and goes back to waiting.
    mon.enter(tid);
    mon.notify_one();
    mon.exit(tid);
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(
        woken.load(Ordering::Acquire),
        0,
        "a wakeup without the predicate is spurious and must be absorbed"
    );
    eventually(|| mon.has_waiters(), "the notified waiter re-parked");

    // Now flip the predicate and release the waiters one notify at a
    // time; each notify_one frees at most one thread.
    flag.store(true, Ordering::Release);
    for _ in 0..3 {
        mon.enter(tid);
        mon.notify_one();
        mon.exit(tid);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::Acquire), 3);
    assert!(!mon.has_waiters());
    assert!(!mon.is_owned());
}

#[test]
fn notify_all_wakes_every_waiter_at_once() {
    let mon = Arc::new(OsMonitor::new(2));
    let flag = Arc::new(AtomicBool::new(false));
    let woken = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..4).map(|_| spawn_waiter(&mon, &flag, &woken)).collect();
    eventually(|| mon.has_waiters(), "all waiters parked");

    let tid = ThreadId::current();
    mon.enter(tid);
    flag.store(true, Ordering::Release);
    mon.notify_all();
    mon.exit(tid);

    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::Acquire), 4);
    assert!(mon.idle_for_deflation(), "fully drained monitor is deflatable");
}

#[test]
fn wait_releases_all_recursion_levels_and_restores_them() {
    let mon = Arc::new(OsMonitor::new(3));
    let flag = Arc::new(AtomicBool::new(false));
    let depth_seen = Arc::new(AtomicU32::new(0));

    let h = {
        let (mon, flag, depth_seen) =
            (Arc::clone(&mon), Arc::clone(&flag), Arc::clone(&depth_seen));
        std::thread::spawn(move || {
            let tid = ThreadId::current();
            // Enter to depth 3, then wait: the monitor must become
            // available to others even though our depth was > 1.
            mon.enter(tid);
            mon.enter(tid);
            mon.enter(tid);
            assert_eq!(mon.depth(tid), 3);
            while !flag.load(Ordering::Acquire) {
                mon.wait(tid);
            }
            // Java: wait() restores the exact recursion depth.
            depth_seen.store(mon.depth(tid), Ordering::Release);
            mon.exit(tid);
            mon.exit(tid);
            mon.exit(tid);
        })
    };

    eventually(|| mon.has_waiters(), "recursive owner parked in wait");
    let tid = ThreadId::current();
    // The monitor must be acquirable while the recursive owner waits.
    assert!(mon.try_enter(tid), "wait must have released every level");
    flag.store(true, Ordering::Release);
    mon.notify_all();
    mon.exit(tid);
    h.join().unwrap();
    assert_eq!(depth_seen.load(Ordering::Acquire), 3);
}

#[test]
fn wait_timeout_reports_timeout_vs_notification() {
    let mon = OsMonitor::new(4);
    let tid = ThreadId::current();

    // Nobody notifies: the timed wait must come back with `false`,
    // still owning the monitor.
    mon.enter(tid);
    let notified = mon.wait_timeout(tid, Duration::from_millis(20));
    assert!(!notified, "no notifier: must time out");
    assert!(mon.owned_by(tid), "ownership restored after timeout");
    mon.exit(tid);

    // With a notifier the same call reports `true` (a spurious wakeup
    // would too — Java cannot tell them apart — so only the timeout
    // branch is asserted strictly).
    let mon = Arc::new(OsMonitor::new(5));
    let flag = Arc::new(AtomicBool::new(false));
    let h = {
        let (mon, flag) = (Arc::clone(&mon), Arc::clone(&flag));
        std::thread::spawn(move || {
            let tid = ThreadId::current();
            mon.enter(tid);
            let mut notified = false;
            while !flag.load(Ordering::Acquire) {
                notified = mon.wait_timeout(tid, Duration::from_secs(30));
            }
            mon.exit(tid);
            assert!(notified, "flag was set before the deadline");
        })
    };
    eventually(|| mon.has_waiters(), "timed waiter parked");
    let tid = ThreadId::current();
    mon.enter(tid);
    flag.store(true, Ordering::Release);
    mon.notify_all();
    mon.exit(tid);
    h.join().unwrap();
}

#[test]
fn woken_waiters_requeue_as_entrants() {
    // A notified waiter must contend for the monitor like a normal
    // entrant (has_queued) rather than stealing it from the notifier.
    let mon = Arc::new(OsMonitor::new(6));
    let flag = Arc::new(AtomicBool::new(false));
    let woken = Arc::new(AtomicU32::new(0));
    let h = spawn_waiter(&mon, &flag, &woken);
    eventually(|| mon.has_waiters(), "waiter parked");

    let tid = ThreadId::current();
    mon.enter(tid);
    flag.store(true, Ordering::Release);
    mon.notify_all();
    // Still inside the section: the woken thread cannot have finished.
    eventually(|| mon.has_queued(), "woken waiter moved to the entry queue");
    assert_eq!(woken.load(Ordering::Acquire), 0);
    mon.exit(tid);
    h.join().unwrap();
    assert_eq!(woken.load(Ordering::Acquire), 1);
}
