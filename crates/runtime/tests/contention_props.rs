//! Property tests for the history-keyed contention manager
//! (arXiv 1305.5800): the back-off it produces must be bounded,
//! forgetful, and — because the jitter stream is TestRng-derived —
//! perfectly reproducible.

use solero_runtime::contention::{BackoffState, ContentionConfig};
use solero_runtime::spin::Probe;
use solero_testkit::{forall, TestRng};

fn gen_config(rng: &mut TestRng) -> ContentionConfig {
    ContentionConfig {
        attempts: rng.gen_range(1u32..=16),
        base: rng.gen_range(0u32..=1024),
        shift_cap: rng.gen_range(0u32..=10),
        cap: rng.gen_range(0u32..=8192),
        decay_after: rng.gen_range(1u32..=8),
        yield_threshold: u32::MAX, // never sleep inside a property
    }
}

/// Every delay the manager can emit is strictly bounded by `cap`, and
/// a non-zero bound jitters within `[bound/2, bound]` — no schedule of
/// failures can push a wait past the cap.
#[test]
fn backoff_never_exceeds_the_cap() {
    forall(256, 0xC0_47_01, |g| {
        let cfg = gen_config(g.rng());
        let mut state = BackoffState::new(g.gen_range(0u64..u64::MAX));
        for _ in 0..64 {
            let history = state.history();
            let bound = cfg.bound_for(history);
            assert!(bound <= cfg.cap, "bound {bound} > cap {}", cfg.cap);
            let delay = state.on_failure(&cfg);
            assert!(delay <= bound, "delay {delay} above bound {bound}");
            if bound > 0 {
                assert!(delay >= bound / 2, "delay {delay} below jitter floor of {bound}");
            } else {
                assert_eq!(delay, 0);
            }
        }
        // The escalation itself is capped: history deep in the tail
        // emits the same bound as history at the shift cap.
        assert_eq!(cfg.bound_for(cfg.shift_cap), cfg.bound_for(u32::MAX));
    });
}

/// The bound is monotone in history: more observed failures never make
/// the manager *less* polite.
#[test]
fn escalation_is_monotone() {
    forall(256, 0xC0_47_02, |g| {
        let cfg = gen_config(g.rng());
        let mut prev = cfg.bound_for(0);
        for h in 1..=cfg.shift_cap + 4 {
            let next = cfg.bound_for(h);
            assert!(next >= prev, "bound_for({h}) = {next} < bound_for({}) = {prev}", h - 1);
            prev = next;
        }
    });
}

/// Success forgets: any accumulated failure history decays back to
/// zero after `history * decay_after` consecutive successes, and stays
/// there.
#[test]
fn history_decays_to_zero_under_success() {
    forall(256, 0xC0_47_03, |g| {
        let cfg = gen_config(g.rng());
        let mut state = BackoffState::new(g.gen_range(0u64..u64::MAX));
        let failures = g.gen_range(0u32..=24);
        for _ in 0..failures {
            state.on_failure(&cfg);
        }
        let accumulated = state.history();
        assert!(accumulated <= failures);
        for _ in 0..accumulated.saturating_mul(cfg.decay_after) {
            state.on_success(&cfg);
        }
        assert_eq!(
            state.history(),
            0,
            "history must fully decay after decay_after successes per level"
        );
        state.on_success(&cfg);
        assert_eq!(state.history(), 0, "decay saturates at zero");
    });
}

/// Determinism: two managers seeded identically and fed the identical
/// failure/success script emit byte-identical delay sequences — the
/// property the pinned-seed CI loop and the bench's reproducibility
/// rest on.
#[test]
fn identical_seeds_give_identical_backoff_sequences() {
    forall(128, 0xC0_47_04, |g| {
        let cfg = gen_config(g.rng());
        let seed = g.gen_range(0u64..u64::MAX);
        let script: Vec<bool> = (0..48).map(|_| g.gen_range(0u32..4) == 0).collect();
        let run = |mut state: BackoffState| -> Vec<u32> {
            script
                .iter()
                .map(|&ok| {
                    if ok {
                        state.on_success(&cfg);
                        0
                    } else {
                        state.on_failure(&cfg)
                    }
                })
                .collect()
        };
        let a = run(BackoffState::new(seed));
        let b = run(BackoffState::new(seed));
        assert_eq!(a, b, "same seed + same script must replay exactly");
    });
}

/// The driver's attempt accounting: a probe that never succeeds is
/// probed exactly `attempts` times with exactly `attempts - 1` waits
/// between them (no trailing wait — the same off-by-one the spin tiers
/// fixed), and a probe that succeeds ends the loop immediately.
#[test]
fn run_observed_accounting() {
    forall(128, 0xC0_47_05, |g| {
        let cfg = ContentionConfig {
            // Keep real spins out of the property loop.
            base: g.gen_range(0u32..=4),
            cap: g.gen_range(0u32..=4),
            ..gen_config(g.rng())
        };
        let mut probes = 0u32;
        let mut waits = 0u32;
        let out: Option<()> =
            cfg.run_observed(
                || {
                    probes += 1;
                    Probe::Retry
                },
                |_| waits += 1,
            );
        assert_eq!(out, None);
        assert_eq!(probes, cfg.attempts);
        assert_eq!(waits, cfg.attempts - 1, "no wait after the final probe");

        let succeed_at = g.gen_range(1u32..=cfg.attempts);
        let mut probes = 0u32;
        let mut waits = 0u32;
        let out = cfg.run_observed(
            || {
                probes += 1;
                if probes == succeed_at {
                    Probe::Done(probes)
                } else {
                    Probe::Retry
                }
            },
            |_| waits += 1,
        );
        assert_eq!(out, Some(succeed_at));
        assert_eq!(probes, succeed_at);
        assert_eq!(waits, succeed_at - 1, "success takes no further wait");
    });
}
