//! Property tests for the lock-word layouts: every state the protocols
//! can produce must decode back to itself, and the state predicates
//! must be mutually exclusive in the ways the fast paths rely on.

use solero_runtime::thread::ThreadId;
use solero_runtime::word::{
    ConvWord, SoleroWord, CONV_RECURSION_MAX, FIELD_MAX, SOLERO_RECURSION_MAX,
};
use solero_testkit::{forall, TestRng};

fn gen_tid(rng: &mut TestRng) -> ThreadId {
    ThreadId::from_raw(rng.gen_range(1u64..=FIELD_MAX)).unwrap()
}

#[test]
fn conv_held_words_roundtrip() {
    forall(256, 0xC0_4D_01, |g| {
        let tid = gen_tid(g.rng());
        let rec = g.gen_range(0u64..=CONV_RECURSION_MAX);
        let mut w = ConvWord::held_by(tid);
        for _ in 0..rec {
            w = w.recurse();
        }
        assert_eq!(w.tid(), Some(tid));
        assert_eq!(w.recursion(), rec);
        assert!(!w.is_inflated());
        assert!(w.is_held_flat());
        // Fast release requires recursion 0 and clear flags.
        assert_eq!(w.fast_releasable(), rec == 0);
        // FLC set/clear is an involution that preserves everything else.
        assert_eq!(w.with_flc().without_flc(), w);
        assert_eq!(w.with_flc().recursion(), rec);
        assert_eq!(w.with_flc().tid(), Some(tid));
    });
}

#[test]
fn conv_inflated_words_decode() {
    forall(256, 0xC0_4D_02, |g| {
        let monitor = g.gen_range(1u64..=FIELD_MAX);
        let w = ConvWord::inflated(monitor);
        assert!(w.is_inflated());
        assert_eq!(w.monitor_id(), Some(monitor));
        assert_eq!(w.tid(), None);
        assert!(!w.fast_releasable());
    });
}

#[test]
fn solero_state_predicates_are_exclusive() {
    forall(256, 0xC0_4D_03, |g| {
        let tid = gen_tid(g.rng());
        let counter = g.gen_range(0u64..=FIELD_MAX);
        let monitor = g.gen_range(1u64..=FIELD_MAX);
        let rec = g.gen_range(0u64..=SOLERO_RECURSION_MAX);

        let free = SoleroWord::with_counter(counter);
        let mut held = SoleroWord::held_by(tid);
        for _ in 0..rec {
            held = held.recurse();
        }
        let fat = SoleroWord::inflated(monitor);

        // Exactly one of the three states per word.
        assert!(free.is_elidable() && !free.is_held_flat() && !free.is_inflated());
        assert!(!held.is_elidable() && held.is_held_flat() && !held.is_inflated());
        assert!(!fat.is_elidable() && fat.is_inflated());

        // Decoding.
        assert_eq!(free.counter(), Some(counter));
        assert_eq!(held.tid(), Some(tid));
        assert_eq!(held.recursion(), rec);
        assert_eq!(fat.monitor_id(), Some(monitor));

        // Fast release iff held with recursion 0 and clear flags.
        assert_eq!(held.fast_releasable(), rec == 0);
        assert!(!free.fast_releasable());
        assert!(!fat.fast_releasable());

        // Monitor escalation: only FLC/inflation demand it.
        assert!(!free.needs_monitor());
        assert!(!held.needs_monitor());
        assert!(fat.needs_monitor());
        assert!(held.with_flc().needs_monitor());
    });
}

#[test]
fn solero_release_always_changes_the_word() {
    forall(256, 0xC0_4D_04, |g| {
        let counter = g.gen_range(0u64..=FIELD_MAX);
        // The elision protocol's core invariant: a write section's
        // release never republishes the pre-acquisition word.
        let v1 = SoleroWord::with_counter(counter);
        let released = v1.next_counter();
        assert_ne!(released, v1);
        assert!(released.is_elidable(), "released word is free again");
    });
}

#[test]
fn solero_counter_chain_never_repeats_within_field_range() {
    forall(64, 0xC0_4D_05, |g| {
        let start = g.gen_range(0u64..=FIELD_MAX - 1000);
        let steps = g.size(1, 1000);
        // Successive releases produce pairwise distinct counter words as
        // long as the 56-bit space does not wrap (the paper: > 68 years).
        let mut w = SoleroWord::with_counter(start);
        let first = w;
        for _ in 0..steps {
            let next = w.next_counter();
            assert_ne!(next, w);
            assert_ne!(next, first);
            w = next;
        }
        assert_eq!(w.counter(), Some(start + steps as u64));
    });
}

#[test]
fn held_word_equals_figure6_encoding() {
    forall(256, 0xC0_4D_06, |g| {
        let tid = gen_tid(g.rng());
        // Figure 6 line 4: val = thread_id + LOCK_BIT.
        let w = SoleroWord::held_by(tid);
        assert_eq!(w.raw(), tid.field_bits() + 0x4);
    });
}
