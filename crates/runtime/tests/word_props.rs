//! Property tests for the lock-word layouts: every state the protocols
//! can produce must decode back to itself, and the state predicates
//! must be mutually exclusive in the ways the fast paths rely on.

use proptest::prelude::*;
use solero_runtime::thread::ThreadId;
use solero_runtime::word::{
    ConvWord, SoleroWord, CONV_RECURSION_MAX, FIELD_MAX, SOLERO_RECURSION_MAX,
};

fn tid_strategy() -> impl Strategy<Value = ThreadId> {
    (1u64..=FIELD_MAX).prop_map(|r| ThreadId::from_raw(r).unwrap())
}

proptest! {
    #[test]
    fn conv_held_words_roundtrip(tid in tid_strategy(), rec in 0u64..=CONV_RECURSION_MAX) {
        let mut w = ConvWord::held_by(tid);
        for _ in 0..rec {
            w = w.recurse();
        }
        prop_assert_eq!(w.tid(), Some(tid));
        prop_assert_eq!(w.recursion(), rec);
        prop_assert!(!w.is_inflated());
        prop_assert!(w.is_held_flat());
        // Fast release requires recursion 0 and clear flags.
        prop_assert_eq!(w.fast_releasable(), rec == 0);
        // FLC set/clear is an involution that preserves everything else.
        prop_assert_eq!(w.with_flc().without_flc(), w);
        prop_assert_eq!(w.with_flc().recursion(), rec);
        prop_assert_eq!(w.with_flc().tid(), Some(tid));
    }

    #[test]
    fn conv_inflated_words_decode(monitor in 1u64..=FIELD_MAX) {
        let w = ConvWord::inflated(monitor);
        prop_assert!(w.is_inflated());
        prop_assert_eq!(w.monitor_id(), Some(monitor));
        prop_assert_eq!(w.tid(), None);
        prop_assert!(!w.fast_releasable());
    }

    #[test]
    fn solero_state_predicates_are_exclusive(
        tid in tid_strategy(),
        counter in 0u64..=FIELD_MAX,
        monitor in 1u64..=FIELD_MAX,
        rec in 0u64..=SOLERO_RECURSION_MAX,
    ) {
        let free = SoleroWord::with_counter(counter);
        let mut held = SoleroWord::held_by(tid);
        for _ in 0..rec {
            held = held.recurse();
        }
        let fat = SoleroWord::inflated(monitor);

        // Exactly one of the three states per word.
        prop_assert!(free.is_elidable() && !free.is_held_flat() && !free.is_inflated());
        prop_assert!(!held.is_elidable() && held.is_held_flat() && !held.is_inflated());
        prop_assert!(!fat.is_elidable() && fat.is_inflated());

        // Decoding.
        prop_assert_eq!(free.counter(), Some(counter));
        prop_assert_eq!(held.tid(), Some(tid));
        prop_assert_eq!(held.recursion(), rec);
        prop_assert_eq!(fat.monitor_id(), Some(monitor));

        // Fast release iff held with recursion 0 and clear flags.
        prop_assert_eq!(held.fast_releasable(), rec == 0);
        prop_assert!(!free.fast_releasable());
        prop_assert!(!fat.fast_releasable());

        // Monitor escalation: only FLC/inflation demand it.
        prop_assert!(!free.needs_monitor());
        prop_assert!(!held.needs_monitor());
        prop_assert!(fat.needs_monitor());
        prop_assert!(held.with_flc().needs_monitor());
    }

    #[test]
    fn solero_release_always_changes_the_word(counter in 0u64..=FIELD_MAX) {
        // The elision protocol's core invariant: a write section's
        // release never republishes the pre-acquisition word.
        let v1 = SoleroWord::with_counter(counter);
        let released = v1.next_counter();
        prop_assert_ne!(released, v1);
        prop_assert!(released.is_elidable(), "released word is free again");
    }

    #[test]
    fn solero_counter_chain_never_repeats_within_field_range(
        start in 0u64..=FIELD_MAX - 1000,
        steps in 1usize..1000,
    ) {
        // Successive releases produce pairwise distinct counter words as
        // long as the 56-bit space does not wrap (the paper: > 68 years).
        let mut w = SoleroWord::with_counter(start);
        let first = w;
        for _ in 0..steps {
            let next = w.next_counter();
            prop_assert_ne!(next, w);
            prop_assert_ne!(next, first);
            w = next;
        }
        prop_assert_eq!(w.counter(), Some(start + steps as u64));
    }

    #[test]
    fn held_word_equals_figure6_encoding(tid in tid_strategy()) {
        // Figure 6 line 4: val = thread_id + LOCK_BIT.
        let w = SoleroWord::held_by(tid);
        prop_assert_eq!(w.raw(), tid.field_bits() + 0x4);
    }
}
