//! Thread identity.
//!
//! The flat-lock fast paths write the owning thread's id into the lock
//! word, so ids must be non-zero (zero means "free") and fit the 56-bit
//! upper field. The JVM hands out such ids at thread start; we do the
//! same with a process-global registry and a thread-local cache.

use core::fmt;
use core::num::NonZeroU64;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::word::{FIELD_MAX, FIELD_SHIFT};

/// A non-zero thread id that fits the lock word's 56-bit field.
///
/// # Examples
///
/// ```
/// use solero_runtime::thread::ThreadId;
///
/// let me = ThreadId::current();
/// assert_eq!(ThreadId::current(), me, "stable within a thread");
/// assert_ne!(me.as_u64(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(NonZeroU64);

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: ThreadId = ThreadId::allocate();
}

impl ThreadId {
    /// The id of the calling thread, assigned on first use.
    #[inline]
    pub fn current() -> Self {
        CURRENT.with(|id| *id)
    }

    /// Allocates a fresh id (normally done implicitly by [`current`]).
    ///
    /// # Panics
    ///
    /// Panics if the 56-bit id space is exhausted (2^56 − 1 threads).
    ///
    /// [`current`]: ThreadId::current
    pub fn allocate() -> Self {
        let raw = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        assert!(raw <= FIELD_MAX, "thread-id space exhausted");
        ThreadId(NonZeroU64::new(raw).expect("ids start at 1"))
    }

    /// Builds an id from a raw value, for tests and word decoding.
    ///
    /// Returns `None` if `raw` is zero or exceeds the 56-bit field.
    #[inline]
    pub fn from_raw(raw: u64) -> Option<Self> {
        if raw > FIELD_MAX {
            return None;
        }
        NonZeroU64::new(raw).map(ThreadId)
    }

    /// The raw id.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0.get()
    }

    /// The id positioned in the lock word's upper field (`id << 8`).
    #[inline]
    pub fn field_bits(self) -> u64 {
        self.0.get() << FIELD_SHIFT
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadId({})", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn current_is_stable_per_thread() {
        let a = ThreadId::current();
        let b = ThreadId::current();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_threads_get_distinct_ids() {
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let id = ThreadId::current();
                    assert!(seen.lock().unwrap().insert(id), "duplicate id {id}");
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 8);
    }

    #[test]
    fn from_raw_rejects_zero_and_oversize() {
        assert!(ThreadId::from_raw(0).is_none());
        assert!(ThreadId::from_raw(FIELD_MAX + 1).is_none());
        assert_eq!(ThreadId::from_raw(FIELD_MAX).unwrap().as_u64(), FIELD_MAX);
    }

    #[test]
    fn field_bits_leaves_low_byte_clear() {
        let id = ThreadId::from_raw(0xabcd).unwrap();
        assert_eq!(id.field_bits() & 0xff, 0);
        assert_eq!(id.field_bits() >> FIELD_SHIFT, 0xabcd);
    }
}
