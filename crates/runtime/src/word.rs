//! Lock-word layouts.
//!
//! The paper uses two flat-lock word layouts (its Figures 1 and 5), both
//! 64 bits wide in the evaluated JVM:
//!
//! ```text
//! Conventional (tasuki) flat lock            SOLERO flat lock
//! ┌──────────────┬──────────┬───┬───┐        ┌──────────────┬─────────┬───┬───┬───┐
//! │ tid (56)     │ rec (6)  │FLC│INF│        │ ctr/tid (56) │ rec (5) │LCK│FLC│INF│
//! └──────────────┴──────────┴───┴───┘        └──────────────┴─────────┴───┴───┴───┘
//!  63           8 7        2  1   0           63           8 7       3  2   1   0
//! ```
//!
//! * `INF` — inflation bit: the word holds a fat-lock (OS monitor) id.
//! * `FLC` — flat-lock-contention bit: a contender is waiting on the
//!   monitor for the flat lock to be released.
//! * `LCK` — (SOLERO only) the lock bit: the flat lock is held and the
//!   upper field is a thread id; when clear **and** `FLC`/`INF` are clear
//!   the upper field is the sequence counter.
//! * `rec` — recursion count of the flat-lock owner.
//!
//! The newtypes [`ConvWord`] and [`SoleroWord`] wrap raw `u64` values and
//! expose the layouts; they are deliberately `Copy` value types — the
//! atomic cell holding a word lives in the lock implementations.
//!
//! A third layout, [`CompactWord`], adopts the Compact Java Monitors
//! header (Dice & Kogan, arXiv 2102.04188) for the millions-of-objects
//! regime: the counter and thread-id fields coexist instead of sharing
//! bits, so the word is self-contained across every transition:
//!
//! ```text
//! Compact flat lock
//! ┌──────────────┬──────────────┬─────────┬───┬───┬───┐
//! │ ctr (36)     │ tid (20)     │ rec (5) │LCK│FLC│INF│
//! └──────────────┴──────────────┴─────────┴───┴───┴───┘
//!  63          28 27           8 7       3  2   1   0
//! ```
//!
//! While held, the displaced sequence counter stays **in the word**
//! (bits 28..=63) alongside the owner's id — no out-of-band `saved_v1`
//! cell — so an embedded compact lock is exactly eight bytes. While
//! inflated, the word is a monitor id (bits 8..=63) plus `INF`, and all
//! contended/wait-set state lives in the global hashed
//! [`MonitorTable`](crate::osmonitor::MonitorTable).

use core::fmt;

use crate::thread::ThreadId;

/// Bit 0: the lock is inflated; the upper field holds a monitor id.
pub const INFLATION_BIT: u64 = 0x1;
/// Bit 1: contention was detected on the flat lock.
pub const FLC_BIT: u64 = 0x2;
/// Bit 2 (SOLERO): the flat lock is held.
pub const LOCK_BIT: u64 = 0x4;

/// Shift of the upper field (thread id, counter, or monitor id).
pub const FIELD_SHIFT: u32 = 8;
/// Increment applied to the SOLERO counter on each release (`+ 0x100`).
pub const COUNTER_STEP: u64 = 1 << FIELD_SHIFT;
/// Width of the upper field in bits.
pub const FIELD_BITS: u32 = 64 - FIELD_SHIFT;
/// Maximum value representable in the upper (thread-id / counter) field.
pub const FIELD_MAX: u64 = (1 << FIELD_BITS) - 1;

/// Conventional layout: recursion occupies bits 2..=7, step `0x4`.
pub const CONV_RECURSION_STEP: u64 = 0x4;
/// Conventional recursion mask (six bits).
pub const CONV_RECURSION_MASK: u64 = 0xfc;
/// Maximum conventional recursion depth before the count saturates.
pub const CONV_RECURSION_MAX: u64 = CONV_RECURSION_MASK / CONV_RECURSION_STEP;

/// SOLERO layout: recursion occupies bits 3..=7, step `0x8`.
pub const SOLERO_RECURSION_STEP: u64 = 0x8;
/// SOLERO recursion mask (five bits).
pub const SOLERO_RECURSION_MASK: u64 = 0xf8;
/// Maximum SOLERO recursion depth before the count saturates.
pub const SOLERO_RECURSION_MAX: u64 = SOLERO_RECURSION_MASK / SOLERO_RECURSION_STEP;

/// Mask of the three low bits the SOLERO fast paths test (`v & 0x7`).
pub const SOLERO_FAST_MASK: u64 = INFLATION_BIT | FLC_BIT | LOCK_BIT;
/// Mask of all low (non-field) bits (`v & 0xff`).
pub const LOW_MASK: u64 = 0xff;

/// A conventional (tasuki) flat-lock word — the paper's Figure 1.
///
/// The word is zero when the lock is free. While held it contains the
/// owner's thread id in the upper field plus a recursion count; while
/// inflated it contains a monitor id and the inflation bit.
///
/// # Examples
///
/// ```
/// use solero_runtime::word::ConvWord;
/// use solero_runtime::thread::ThreadId;
///
/// let tid = ThreadId::from_raw(7).unwrap();
/// let held = ConvWord::held_by(tid);
/// assert!(held.is_held_flat());
/// assert_eq!(held.tid(), Some(tid));
/// assert_eq!(held.recursion(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ConvWord(pub u64);

impl ConvWord {
    /// The free (zero) word.
    pub const FREE: ConvWord = ConvWord(0);

    /// Word representing a first (non-recursive) acquisition by `tid`.
    #[inline]
    pub fn held_by(tid: ThreadId) -> Self {
        ConvWord(tid.field_bits())
    }

    /// Word representing inflation to monitor `monitor_id`.
    #[inline]
    pub fn inflated(monitor_id: u64) -> Self {
        debug_assert!(monitor_id <= FIELD_MAX);
        ConvWord((monitor_id << FIELD_SHIFT) | INFLATION_BIT)
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if the word is exactly zero (free, no FLC pending).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True if the inflation bit is set.
    #[inline]
    pub fn is_inflated(self) -> bool {
        self.0 & INFLATION_BIT != 0
    }

    /// True if the FLC (flat-lock contention) bit is set.
    #[inline]
    pub fn has_flc(self) -> bool {
        self.0 & FLC_BIT != 0
    }

    /// True if the flat lock is held by some thread (not inflated, tid set).
    #[inline]
    pub fn is_held_flat(self) -> bool {
        !self.is_inflated() && (self.0 >> FIELD_SHIFT) != 0
    }

    /// The owner thread id, if held flat.
    #[inline]
    pub fn tid(self) -> Option<ThreadId> {
        if self.is_held_flat() {
            ThreadId::from_raw(self.0 >> FIELD_SHIFT)
        } else {
            None
        }
    }

    /// Monitor id, if inflated.
    #[inline]
    pub fn monitor_id(self) -> Option<u64> {
        if self.is_inflated() {
            Some(self.0 >> FIELD_SHIFT)
        } else {
            None
        }
    }

    /// Recursion count of the flat owner.
    #[inline]
    pub fn recursion(self) -> u64 {
        (self.0 & CONV_RECURSION_MASK) / CONV_RECURSION_STEP
    }

    /// Word with the recursion count incremented by one.
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if the count is already at
    /// [`CONV_RECURSION_MAX`]: one more step would carry into the
    /// tid/monitor-id field and silently corrupt the word. The lock
    /// implementations inflate before saturation, so a panic here means
    /// a caller bypassed that contract.
    #[inline]
    pub fn recurse(self) -> Self {
        assert!(
            self.recursion() < CONV_RECURSION_MAX,
            "ConvWord recursion overflow: depth {} would carry into the tid field",
            self.recursion()
        );
        ConvWord(self.0 + CONV_RECURSION_STEP)
    }

    /// Word with the recursion count decremented by one.
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if the count is already zero:
    /// the decrement would borrow out of the recursion bits.
    #[inline]
    pub fn unrecurse(self) -> Self {
        assert!(
            self.recursion() > 0,
            "ConvWord recursion underflow: unrecurse on a non-recursed word"
        );
        ConvWord(self.0 - CONV_RECURSION_STEP)
    }

    /// Word with the FLC bit set.
    #[inline]
    pub fn with_flc(self) -> Self {
        ConvWord(self.0 | FLC_BIT)
    }

    /// Word with the FLC bit cleared.
    #[inline]
    pub fn without_flc(self) -> Self {
        ConvWord(self.0 & !FLC_BIT)
    }

    /// True if the fast-path release test passes (`(w & 0xff) == 0`):
    /// not inflated, no contention flag, recursion zero.
    #[inline]
    pub fn fast_releasable(self) -> bool {
        self.0 & LOW_MASK == 0
    }
}

impl fmt::Debug for ConvWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConvWord")
            .field("raw", &format_args!("{:#x}", self.0))
            .field("inflated", &self.is_inflated())
            .field("flc", &self.has_flc())
            .field("recursion", &self.recursion())
            .field("field", &(self.0 >> FIELD_SHIFT))
            .finish()
    }
}

impl fmt::Display for ConvWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inflated() {
            write!(f, "inflated(monitor={})", self.0 >> FIELD_SHIFT)
        } else if self.is_held_flat() {
            write!(
                f,
                "flat(tid={}, rec={}{})",
                self.0 >> FIELD_SHIFT,
                self.recursion(),
                if self.has_flc() { ", flc" } else { "" }
            )
        } else {
            write!(f, "free{}", if self.has_flc() { "(flc)" } else { "" })
        }
    }
}

impl fmt::LowerHex for ConvWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A SOLERO flat-lock word — the paper's Figure 5.
///
/// While **free** (low three bits clear) the upper field is a sequence
/// counter; every writing critical section leaves it at a new value.
/// While **held** the lock bit is set and the upper field is the owner's
/// thread id. Inflation and FLC work as in the conventional layout.
///
/// # Examples
///
/// ```
/// use solero_runtime::word::SoleroWord;
/// use solero_runtime::thread::ThreadId;
///
/// let free = SoleroWord::with_counter(41);
/// assert!(free.is_elidable());
/// let tid = ThreadId::from_raw(9).unwrap();
/// let held = SoleroWord::held_by(tid);
/// assert!(held.is_held_flat());
/// // Releasing increments the *pre-acquisition* counter value:
/// let released = free.next_counter();
/// assert_eq!(released.counter(), Some(42));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SoleroWord(pub u64);

impl SoleroWord {
    /// The initial word: counter zero, all flag bits clear.
    pub const INIT: SoleroWord = SoleroWord(0);

    /// Word holding counter value `c` with all flag bits clear.
    #[inline]
    pub fn with_counter(c: u64) -> Self {
        debug_assert!(c <= FIELD_MAX);
        SoleroWord(c << FIELD_SHIFT)
    }

    /// Word representing a first acquisition by `tid` (`tid | LOCK_BIT`).
    #[inline]
    pub fn held_by(tid: ThreadId) -> Self {
        SoleroWord(tid.field_bits() | LOCK_BIT)
    }

    /// Word representing inflation to monitor `monitor_id`.
    #[inline]
    pub fn inflated(monitor_id: u64) -> Self {
        debug_assert!(monitor_id <= FIELD_MAX);
        SoleroWord((monitor_id << FIELD_SHIFT) | INFLATION_BIT)
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if a read-only section may proceed optimistically:
    /// `(w & 0x7) == 0` — not held, not inflated, no pending contention.
    #[inline]
    pub fn is_elidable(self) -> bool {
        self.0 & SOLERO_FAST_MASK == 0
    }

    /// True if the lock bit is set (flat lock held).
    #[inline]
    pub fn is_held_flat(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// True if the inflation bit is set.
    #[inline]
    pub fn is_inflated(self) -> bool {
        self.0 & INFLATION_BIT != 0
    }

    /// True if the FLC bit is set.
    #[inline]
    pub fn has_flc(self) -> bool {
        self.0 & FLC_BIT != 0
    }

    /// The counter value, if the word is in the free/counter state.
    #[inline]
    pub fn counter(self) -> Option<u64> {
        if self.is_elidable() {
            Some(self.0 >> FIELD_SHIFT)
        } else {
            None
        }
    }

    /// The owner thread id, if held flat.
    #[inline]
    pub fn tid(self) -> Option<ThreadId> {
        if self.is_held_flat() && !self.is_inflated() {
            ThreadId::from_raw(self.0 >> FIELD_SHIFT)
        } else {
            None
        }
    }

    /// Monitor id, if inflated.
    #[inline]
    pub fn monitor_id(self) -> Option<u64> {
        if self.is_inflated() {
            Some(self.0 >> FIELD_SHIFT)
        } else {
            None
        }
    }

    /// Recursion count of the flat owner.
    #[inline]
    pub fn recursion(self) -> u64 {
        (self.0 & SOLERO_RECURSION_MASK) / SOLERO_RECURSION_STEP
    }

    /// Word with the recursion count incremented (`+ 0x8`).
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if the count is already at
    /// [`SOLERO_RECURSION_MAX`]: one more step would carry into the
    /// tid field. The lock implementations inflate before saturation.
    #[inline]
    pub fn recurse(self) -> Self {
        assert!(
            self.recursion() < SOLERO_RECURSION_MAX,
            "SoleroWord recursion overflow: depth {} would carry into the tid field",
            self.recursion()
        );
        SoleroWord(self.0 + SOLERO_RECURSION_STEP)
    }

    /// Word with the recursion count decremented (`- 0x8`).
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if the count is already zero.
    #[inline]
    pub fn unrecurse(self) -> Self {
        assert!(
            self.recursion() > 0,
            "SoleroWord recursion underflow: unrecurse on a non-recursed word"
        );
        SoleroWord(self.0 - SOLERO_RECURSION_STEP)
    }

    /// True if the fast-path release test passes
    /// (`(w & 0xff) == LOCK_BIT`): held, recursion zero, no FLC, thin.
    #[inline]
    pub fn fast_releasable(self) -> bool {
        self.0 & LOW_MASK == LOCK_BIT
    }

    /// The word a release publishes, given the word read **before** the
    /// acquiring CAS (the local lock variable `v1` of Figure 6):
    /// `v1 + 0x100`, advancing the sequence counter.
    #[inline]
    pub fn next_counter(self) -> Self {
        debug_assert!(self.is_elidable());
        SoleroWord(self.0.wrapping_add(COUNTER_STEP))
    }

    /// Word with the FLC bit set.
    #[inline]
    pub fn with_flc(self) -> Self {
        SoleroWord(self.0 | FLC_BIT)
    }

    /// Word with the FLC bit cleared.
    #[inline]
    pub fn without_flc(self) -> Self {
        SoleroWord(self.0 & !FLC_BIT)
    }

    /// True if the word's low **two** bits indicate the slow read path
    /// must go to the monitor (`(v & 0x3) != 0` in Figure 8): the lock is
    /// inflated or contended rather than merely held.
    #[inline]
    pub fn needs_monitor(self) -> bool {
        self.0 & (INFLATION_BIT | FLC_BIT) != 0
    }
}

/// Shift of the compact counter field (bits 28..=63).
pub const COMPACT_CTR_SHIFT: u32 = 28;
/// Increment applied to the compact counter on each release.
pub const COMPACT_CTR_STEP: u64 = 1 << COMPACT_CTR_SHIFT;
/// Mask selecting the compact counter bits.
pub const COMPACT_CTR_MASK: u64 = u64::MAX << COMPACT_CTR_SHIFT;
/// Width of the compact counter in bits.
pub const COMPACT_CTR_BITS: u32 = 64 - COMPACT_CTR_SHIFT;
/// Maximum compact counter value before it wraps off bit 63.
pub const COMPACT_CTR_MAX: u64 = (1 << COMPACT_CTR_BITS) - 1;
/// Shift of the compact thread-id field (bits 8..=27).
pub const COMPACT_TID_SHIFT: u32 = 8;
/// Width of the compact thread-id field in bits.
pub const COMPACT_TID_BITS: u32 = 20;
/// Maximum thread id representable in a compact word.
pub const COMPACT_TID_MAX: u64 = (1 << COMPACT_TID_BITS) - 1;
/// Mask selecting the compact thread-id bits.
pub const COMPACT_TID_MASK: u64 = COMPACT_TID_MAX << COMPACT_TID_SHIFT;

/// A compact flat-lock word (Compact Java Monitors, arXiv 2102.04188).
///
/// Unlike [`SoleroWord`], the counter and thread-id fields coexist:
/// bits 28..=63 are **always** the sequence counter while the word is
/// thin (free or held), and bits 8..=27 are the owner's thread id while
/// held. The displaced counter therefore travels inside the word across
/// acquire/release, so a compact lock needs no side `saved_v1` cell and
/// is exactly eight bytes embedded in an object.
///
/// While inflated the whole upper field (bits 8..=63) is a monitor id —
/// the id is load-bearing: fat-ownership claims require the in-word id
/// to match the monitor resolved from the global table, which is what
/// makes deflation + table removal safe against racing contenders.
///
/// The narrower 36-bit counter wraps off bit 63 roughly every 64 billion
/// writes per lock; an elided reader would have to sleep across an exact
/// multiple of 2^36 writes to mis-validate, the same ABA bound the
/// 56-bit layout has at 2^56.
///
/// # Examples
///
/// ```
/// use solero_runtime::word::CompactWord;
/// use solero_runtime::thread::ThreadId;
///
/// let free = CompactWord::with_counter(41);
/// assert!(free.is_elidable());
/// let tid = ThreadId::from_raw(9).unwrap();
/// let held = CompactWord::held_by(free, tid);
/// assert_eq!(held.counter(), Some(41)); // counter rides along
/// assert_eq!(held.tid(), Some(tid));
/// let released = held.release_word();
/// assert_eq!(released.counter(), Some(42));
/// assert!(released.is_elidable());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompactWord(pub u64);

impl CompactWord {
    /// The initial word: counter zero, all flag bits clear.
    pub const INIT: CompactWord = CompactWord(0);

    /// Word holding counter value `c` with all flag bits clear.
    #[inline]
    pub fn with_counter(c: u64) -> Self {
        debug_assert!(c <= COMPACT_CTR_MAX);
        CompactWord(c << COMPACT_CTR_SHIFT)
    }

    /// Word representing a first acquisition by `tid`, preserving the
    /// counter of the pre-acquisition word `v1`.
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if `tid` exceeds
    /// [`COMPACT_TID_MAX`]: a wider id would corrupt the counter field.
    #[inline]
    pub fn held_by(v1: CompactWord, tid: ThreadId) -> Self {
        assert!(
            tid.as_u64() <= COMPACT_TID_MAX,
            "thread id {} exceeds the compact word's 20-bit tid field",
            tid.as_u64()
        );
        CompactWord((v1.0 & COMPACT_CTR_MASK) | (tid.as_u64() << COMPACT_TID_SHIFT) | LOCK_BIT)
    }

    /// Word representing inflation to monitor `monitor_id`.
    #[inline]
    pub fn inflated(monitor_id: u64) -> Self {
        debug_assert!(monitor_id <= FIELD_MAX);
        CompactWord((monitor_id << FIELD_SHIFT) | INFLATION_BIT)
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if a read-only section may proceed optimistically:
    /// `(w & 0x7) == 0` — not held, not inflated, no pending contention.
    #[inline]
    pub fn is_elidable(self) -> bool {
        self.0 & SOLERO_FAST_MASK == 0
    }

    /// True if the lock bit is set (flat lock held).
    #[inline]
    pub fn is_held_flat(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// True if the inflation bit is set.
    #[inline]
    pub fn is_inflated(self) -> bool {
        self.0 & INFLATION_BIT != 0
    }

    /// True if the FLC bit is set.
    #[inline]
    pub fn has_flc(self) -> bool {
        self.0 & FLC_BIT != 0
    }

    /// The sequence counter. Present in **every** thin state (free,
    /// held, FLC pending) — that is the point of the layout; absent only
    /// while inflated, when the bits belong to the monitor id.
    #[inline]
    pub fn counter(self) -> Option<u64> {
        if self.is_inflated() {
            None
        } else {
            Some(self.0 >> COMPACT_CTR_SHIFT)
        }
    }

    /// The owner thread id, if held flat.
    #[inline]
    pub fn tid(self) -> Option<ThreadId> {
        if self.is_held_flat() && !self.is_inflated() {
            ThreadId::from_raw((self.0 & COMPACT_TID_MASK) >> COMPACT_TID_SHIFT)
        } else {
            None
        }
    }

    /// Monitor id, if inflated.
    #[inline]
    pub fn monitor_id(self) -> Option<u64> {
        if self.is_inflated() {
            Some(self.0 >> FIELD_SHIFT)
        } else {
            None
        }
    }

    /// Recursion count of the flat owner (same bits as [`SoleroWord`]).
    #[inline]
    pub fn recursion(self) -> u64 {
        (self.0 & SOLERO_RECURSION_MASK) / SOLERO_RECURSION_STEP
    }

    /// Word with the recursion count incremented (`+ 0x8`).
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if the count is already at
    /// [`SOLERO_RECURSION_MAX`]: one more step would carry into the
    /// tid field. The lock implementations inflate before saturation.
    #[inline]
    pub fn recurse(self) -> Self {
        assert!(
            self.recursion() < SOLERO_RECURSION_MAX,
            "CompactWord recursion overflow: depth {} would carry into the tid field",
            self.recursion()
        );
        CompactWord(self.0 + SOLERO_RECURSION_STEP)
    }

    /// Word with the recursion count decremented (`- 0x8`).
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) if the count is already zero.
    #[inline]
    pub fn unrecurse(self) -> Self {
        assert!(
            self.recursion() > 0,
            "CompactWord recursion underflow: unrecurse on a non-recursed word"
        );
        CompactWord(self.0 - SOLERO_RECURSION_STEP)
    }

    /// True if the fast-path release test passes
    /// (`(w & 0xff) == LOCK_BIT`): held, recursion zero, no FLC, thin.
    #[inline]
    pub fn fast_releasable(self) -> bool {
        self.0 & LOW_MASK == LOCK_BIT
    }

    /// The free word a release publishes: keep the counter bits, drop
    /// the tid/flag bits, advance the counter one step. Works from any
    /// thin word (held, or free-with-FLC when computing a displaced
    /// value), because the counter occupies the same bits in all of
    /// them. A carry off bit 63 vanishes — the counter wraps inside its
    /// own field.
    #[inline]
    pub fn release_word(self) -> Self {
        debug_assert!(!self.is_inflated());
        CompactWord((self.0 & COMPACT_CTR_MASK).wrapping_add(COMPACT_CTR_STEP))
    }

    /// Word with the FLC bit set.
    #[inline]
    pub fn with_flc(self) -> Self {
        CompactWord(self.0 | FLC_BIT)
    }

    /// Word with the FLC bit cleared.
    #[inline]
    pub fn without_flc(self) -> Self {
        CompactWord(self.0 & !FLC_BIT)
    }

    /// True if the slow read path must go to the monitor
    /// (`(v & 0x3) != 0`): the lock is inflated or contended rather
    /// than merely held.
    #[inline]
    pub fn needs_monitor(self) -> bool {
        self.0 & (INFLATION_BIT | FLC_BIT) != 0
    }
}

impl fmt::Debug for CompactWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompactWord")
            .field("raw", &format_args!("{:#x}", self.0))
            .field("inflated", &self.is_inflated())
            .field("flc", &self.has_flc())
            .field("held", &self.is_held_flat())
            .field("recursion", &self.recursion())
            .field("counter", &(self.0 >> COMPACT_CTR_SHIFT))
            .field("tid_bits", &((self.0 & COMPACT_TID_MASK) >> COMPACT_TID_SHIFT))
            .finish()
    }
}

impl fmt::Display for CompactWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inflated() {
            write!(f, "inflated(monitor={})", self.0 >> FIELD_SHIFT)
        } else if self.is_held_flat() {
            write!(
                f,
                "held(tid={}, ctr={}, rec={}{})",
                (self.0 & COMPACT_TID_MASK) >> COMPACT_TID_SHIFT,
                self.0 >> COMPACT_CTR_SHIFT,
                self.recursion(),
                if self.has_flc() { ", flc" } else { "" }
            )
        } else {
            write!(
                f,
                "free(ctr={}{})",
                self.0 >> COMPACT_CTR_SHIFT,
                if self.has_flc() { ", flc" } else { "" }
            )
        }
    }
}

impl fmt::LowerHex for CompactWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Debug for SoleroWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoleroWord")
            .field("raw", &format_args!("{:#x}", self.0))
            .field("inflated", &self.is_inflated())
            .field("flc", &self.has_flc())
            .field("held", &self.is_held_flat())
            .field("recursion", &self.recursion())
            .field("field", &(self.0 >> FIELD_SHIFT))
            .finish()
    }
}

impl fmt::Display for SoleroWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inflated() {
            write!(f, "inflated(monitor={})", self.0 >> FIELD_SHIFT)
        } else if self.is_held_flat() {
            write!(
                f,
                "held(tid={}, rec={}{})",
                self.0 >> FIELD_SHIFT,
                self.recursion(),
                if self.has_flc() { ", flc" } else { "" }
            )
        } else {
            write!(
                f,
                "free(ctr={}{})",
                self.0 >> FIELD_SHIFT,
                if self.has_flc() { ", flc" } else { "" }
            )
        }
    }
}

impl fmt::LowerHex for SoleroWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u64) -> ThreadId {
        ThreadId::from_raw(n).unwrap()
    }

    #[test]
    fn conv_free_is_zero() {
        assert!(ConvWord::FREE.is_zero());
        assert!(!ConvWord::FREE.is_inflated());
        assert!(!ConvWord::FREE.is_held_flat());
        assert!(ConvWord::FREE.fast_releasable());
        assert_eq!(ConvWord::FREE.tid(), None);
    }

    #[test]
    fn conv_held_roundtrip() {
        let w = ConvWord::held_by(tid(123));
        assert!(w.is_held_flat());
        assert_eq!(w.tid(), Some(tid(123)));
        assert_eq!(w.recursion(), 0);
        assert!(w.fast_releasable() == false || w.0 & LOW_MASK == 0);
    }

    #[test]
    fn conv_recursion_steps() {
        let mut w = ConvWord::held_by(tid(5));
        for depth in 1..=CONV_RECURSION_MAX {
            w = w.recurse();
            assert_eq!(w.recursion(), depth);
            assert_eq!(w.tid(), Some(tid(5)), "tid preserved at depth {depth}");
        }
        for depth in (0..CONV_RECURSION_MAX).rev() {
            w = w.unrecurse();
            assert_eq!(w.recursion(), depth);
        }
        assert!(w.0 & LOW_MASK == 0);
    }

    /// Nests to the documented maximum and verifies the adjacent tid
    /// field is never disturbed. Runs identically in debug and release:
    /// the bound is a real `assert!`, not a `debug_assert!`.
    #[test]
    fn conv_recursion_saturates_without_tid_corruption() {
        let mut w = ConvWord::held_by(tid(200));
        for _ in 0..CONV_RECURSION_MAX {
            w = w.recurse();
        }
        assert_eq!(w.recursion(), CONV_RECURSION_MAX);
        assert_eq!(w.tid(), Some(tid(200)), "tid intact at saturation");
    }

    #[test]
    #[should_panic(expected = "ConvWord recursion overflow")]
    fn conv_recursion_overflow_panics_in_release() {
        let mut w = ConvWord::held_by(tid(1));
        for _ in 0..CONV_RECURSION_MAX {
            w = w.recurse();
        }
        // Depth 64 would carry into the tid bits; must panic even with
        // debug assertions compiled out.
        let _ = w.recurse();
    }

    #[test]
    #[should_panic(expected = "ConvWord recursion underflow")]
    fn conv_unrecurse_underflow_panics_in_release() {
        let _ = ConvWord::held_by(tid(1)).unrecurse();
    }

    #[test]
    fn conv_inflated_monitor_id() {
        let w = ConvWord::inflated(99);
        assert!(w.is_inflated());
        assert_eq!(w.monitor_id(), Some(99));
        assert_eq!(w.tid(), None);
        assert!(!w.fast_releasable());
    }

    #[test]
    fn conv_flc_bit() {
        let w = ConvWord::held_by(tid(3)).with_flc();
        assert!(w.has_flc());
        assert!(!w.fast_releasable());
        assert_eq!(w.without_flc(), ConvWord::held_by(tid(3)));
    }

    #[test]
    fn solero_init_elidable() {
        let w = SoleroWord::INIT;
        assert!(w.is_elidable());
        assert_eq!(w.counter(), Some(0));
        assert!(!w.is_held_flat());
    }

    #[test]
    fn solero_counter_advances_by_release() {
        let w = SoleroWord::with_counter(7);
        let next = w.next_counter();
        assert_eq!(next.counter(), Some(8));
        assert_ne!(w, next);
    }

    #[test]
    fn solero_held_word_matches_figure6() {
        let t = tid(42);
        let held = SoleroWord::held_by(t);
        // Figure 6: val = thread_id + LOCK_BIT.
        assert_eq!(held.raw(), t.field_bits() | LOCK_BIT);
        assert!(held.is_held_flat());
        assert!(held.fast_releasable());
        assert_eq!(held.tid(), Some(t));
        assert!(!held.is_elidable());
    }

    #[test]
    fn solero_recursion_blocks_fast_release() {
        let w = SoleroWord::held_by(tid(1)).recurse();
        assert_eq!(w.recursion(), 1);
        assert!(!w.fast_releasable());
        assert!(w.unrecurse().fast_releasable());
    }

    #[test]
    fn solero_recursion_saturation_bound() {
        let mut w = SoleroWord::held_by(tid(1));
        for _ in 0..SOLERO_RECURSION_MAX {
            w = w.recurse();
        }
        assert_eq!(w.recursion(), SOLERO_RECURSION_MAX);
        assert_eq!(SOLERO_RECURSION_MAX, 31);
        assert_eq!(w.tid(), Some(tid(1)), "tid intact at saturation");
    }

    #[test]
    #[should_panic(expected = "SoleroWord recursion overflow")]
    fn solero_recursion_overflow_panics_in_release() {
        let mut w = SoleroWord::held_by(tid(1));
        for _ in 0..SOLERO_RECURSION_MAX {
            w = w.recurse();
        }
        let _ = w.recurse();
    }

    #[test]
    #[should_panic(expected = "SoleroWord recursion underflow")]
    fn solero_unrecurse_underflow_panics_in_release() {
        let _ = SoleroWord::held_by(tid(1)).unrecurse();
    }

    #[test]
    fn solero_inflated_never_elidable() {
        let w = SoleroWord::inflated(4);
        assert!(!w.is_elidable());
        assert!(w.needs_monitor());
        assert_eq!(w.monitor_id(), Some(4));
        assert_eq!(w.counter(), None);
    }

    #[test]
    fn solero_flc_needs_monitor() {
        let w = SoleroWord::held_by(tid(2)).with_flc();
        assert!(w.needs_monitor());
        assert!(!w.is_elidable());
        let plain = SoleroWord::held_by(tid(2));
        assert!(!plain.needs_monitor(), "merely-held spins, no monitor");
    }

    #[test]
    fn display_formats_are_nonempty() {
        for s in [
            format!("{}", ConvWord::FREE),
            format!("{}", ConvWord::held_by(tid(1))),
            format!("{}", ConvWord::inflated(2)),
            format!("{}", SoleroWord::INIT),
            format!("{}", SoleroWord::held_by(tid(1))),
            format!("{}", SoleroWord::inflated(2)),
        ] {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn counter_wraps_without_entering_flag_bits() {
        let w = SoleroWord::with_counter(FIELD_MAX);
        let next = w.next_counter();
        // Wrap-around folds back into the counter field, never the low bits.
        assert_eq!(next.raw() & LOW_MASK, 0);
    }

    #[test]
    fn compact_init_elidable() {
        let w = CompactWord::INIT;
        assert!(w.is_elidable());
        assert_eq!(w.counter(), Some(0));
        assert!(!w.is_held_flat());
        assert_eq!(core::mem::size_of::<CompactWord>(), 8);
    }

    #[test]
    fn compact_held_preserves_counter() {
        let free = CompactWord::with_counter(77);
        let held = CompactWord::held_by(free, tid(9));
        assert!(held.is_held_flat());
        assert!(held.fast_releasable());
        assert!(!held.is_elidable());
        assert_eq!(held.tid(), Some(tid(9)));
        // The point of the layout: the displaced counter stays in-word.
        assert_eq!(held.counter(), Some(77));
        assert_eq!(held.recursion(), 0);
    }

    #[test]
    fn compact_release_advances_in_word_counter() {
        let held = CompactWord::held_by(CompactWord::with_counter(7), tid(3));
        let released = held.release_word();
        assert!(released.is_elidable());
        assert_eq!(released.counter(), Some(8));
        // Release also works from a free-with-FLC word (displaced value
        // computation in the inflate path): FLC and tid bits are dropped.
        let displaced = CompactWord::with_counter(7).with_flc().release_word();
        assert_eq!(displaced, released);
    }

    #[test]
    fn compact_counter_wraps_off_bit_63() {
        let held = CompactWord::held_by(CompactWord::with_counter(COMPACT_CTR_MAX), tid(5));
        let released = held.release_word();
        // The carry off bit 63 vanishes; no flag or tid bit is touched.
        assert_eq!(released.counter(), Some(0));
        assert_eq!(released.raw() & !COMPACT_CTR_MASK, 0);
    }

    #[test]
    #[should_panic(expected = "20-bit tid field")]
    fn compact_wide_tid_panics_in_release() {
        let wide = ThreadId::from_raw(COMPACT_TID_MAX + 1).unwrap();
        let _ = CompactWord::held_by(CompactWord::INIT, wide);
    }

    #[test]
    fn compact_recursion_saturation_preserves_fields() {
        let mut w = CompactWord::held_by(CompactWord::with_counter(123), tid(6));
        for _ in 0..SOLERO_RECURSION_MAX {
            w = w.recurse();
        }
        assert_eq!(w.recursion(), SOLERO_RECURSION_MAX);
        assert_eq!(w.tid(), Some(tid(6)), "tid intact at saturation");
        assert_eq!(w.counter(), Some(123), "counter intact at saturation");
        for _ in 0..SOLERO_RECURSION_MAX {
            w = w.unrecurse();
        }
        assert!(w.fast_releasable());
    }

    #[test]
    #[should_panic(expected = "CompactWord recursion overflow")]
    fn compact_recursion_overflow_panics_in_release() {
        let mut w = CompactWord::held_by(CompactWord::INIT, tid(1));
        for _ in 0..SOLERO_RECURSION_MAX {
            w = w.recurse();
        }
        let _ = w.recurse();
    }

    #[test]
    #[should_panic(expected = "CompactWord recursion underflow")]
    fn compact_unrecurse_underflow_panics_in_release() {
        let _ = CompactWord::held_by(CompactWord::INIT, tid(1)).unrecurse();
    }

    #[test]
    fn compact_inflated_carries_monitor_id() {
        let w = CompactWord::inflated(99);
        assert!(w.is_inflated());
        assert!(w.needs_monitor());
        assert!(!w.is_elidable());
        assert_eq!(w.monitor_id(), Some(99));
        assert_eq!(w.counter(), None, "inflated bits belong to the id");
        assert_eq!(w.tid(), None);
    }

    #[test]
    fn compact_flc_round_trip() {
        let held = CompactWord::held_by(CompactWord::with_counter(4), tid(2));
        let flc = held.with_flc();
        assert!(flc.has_flc());
        assert!(flc.needs_monitor());
        assert!(!flc.fast_releasable());
        assert_eq!(flc.without_flc(), held);
        assert!(!held.needs_monitor(), "merely-held spins, no monitor");
    }

    #[test]
    fn compact_display_formats_are_nonempty() {
        for s in [
            format!("{}", CompactWord::INIT),
            format!("{}", CompactWord::held_by(CompactWord::INIT, tid(1))),
            format!("{}", CompactWord::inflated(2)),
        ] {
            assert!(!s.is_empty());
        }
    }
}
