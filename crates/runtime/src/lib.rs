//! Shared runtime substrate for the SOLERO reproduction.
//!
//! This crate provides the JVM-runtime machinery that both the
//! conventional (tasuki) lock and SOLERO are built on:
//!
//! * [`word`] — the flat-lock word layouts of the paper's Figures 1
//!   and 5;
//! * [`thread`] — non-zero 56-bit thread ids;
//! * [`spin`] — the three-tier contention loops of Figure 3;
//! * [`contention`] — the history-keyed back-off contention manager
//!   (arXiv 1305.5800) behind the slow write / fallback probes;
//! * [`osmonitor`] — reentrant Java-style OS monitors and the monitor
//!   table used by lock inflation;
//! * [`events`] — asynchronous validation events (the JVM's GC-check
//!   events the paper reuses to break inconsistent infinite loops);
//! * [`fence`] — the memory-ordering points of §3.4, including the
//!   deliberately weak `WeakBarrier-SOLERO` mode;
//! * [`stats`] — the per-lock counters behind Table 1 and Figure 15.
//!
//! # Examples
//!
//! ```
//! use solero_runtime::word::SoleroWord;
//! use solero_runtime::thread::ThreadId;
//!
//! // A free SOLERO word carries a counter; acquisition replaces it with
//! // tid|LOCK_BIT and release publishes counter+1.
//! let free = SoleroWord::with_counter(10);
//! let held = SoleroWord::held_by(ThreadId::current());
//! assert!(free.is_elidable() && !held.is_elidable());
//! assert_eq!(free.next_counter().counter(), Some(11));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod contention;
pub mod events;
pub mod fault;
pub mod fence;
pub mod osmonitor;
pub mod spin;
pub mod stats;
pub mod thread;
pub mod word;
