//! History-keyed CAS contention management.
//!
//! The retry-exhausted fallback and the slow write path used to re-probe
//! under the fixed three-tier loops of [`crate::spin`] — fine while
//! contention is rare, but a fallback storm (many readers losing
//! elision at once) turns the fixed-cadence probes into a CAS convoy
//! that collapses throughput exactly when elision is already losing.
//!
//! This module implements the lightweight contention manager of
//! Dice/Hendler/Mirsky ("Lightweight Contention Management for
//! Efficient Compare-and-Swap Operations", arXiv 1305.5800): each
//! thread keeps a private *failure history*; every failed probe grows
//! the history and the thread waits a capped exponential back-off
//! jittered by a thread-seeded [`SplitMix64`] stream, while successes
//! decay the history so quiet locks return to cheap immediate probing.
//!
//! Determinism: the jitter stream is derived from the runtime
//! [`ThreadId`](crate::thread::ThreadId) — no wall clock, no OS
//! entropy — so a pinned-seed stress schedule replays the identical
//! back-off sequence, the same constraint that shaped BRAVO's
//! counter-based re-bias policy. Under `--cfg solero_mc` the waits are
//! compiled out entirely (the history bookkeeping stays): busy-wait
//! iterations are invisible to the model checker and would only inflate
//! its step budget.

use std::cell::RefCell;
#[cfg(not(solero_mc))]
use std::hint;

use solero_testkit::pad::CachePadded;
use solero_testkit::rng::{derive_seed, SplitMix64};

use crate::spin::Probe;
use crate::thread::ThreadId;

/// Seed-stream domain separator for the per-thread jitter generators
/// (any fixed constant works; it only has to differ from the testkit's
/// own stream roots).
const JITTER_STREAM_ROOT: u64 = 0xC047_E417_1035_EEDD;

/// Tuning knobs for the history-keyed back-off policy.
///
/// All delays are expressed in `spin_loop` hint iterations — never wall
/// clock — so replay under a pinned seed is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionConfig {
    /// Probe attempts before [`ContentionConfig::run`] gives up and the
    /// caller escalates (for SOLERO: parks on the monitor).
    pub attempts: u32,
    /// Back-off bound for a thread with empty failure history, in spin
    /// units. `0` disables waiting entirely.
    pub base: u32,
    /// Maximum exponent: the bound stops doubling after the history
    /// exceeds this many failures.
    pub shift_cap: u32,
    /// Hard ceiling on any single back-off, in spin units.
    pub cap: u32,
    /// Consecutive successful probes that shed one level of failure
    /// history (arXiv 1305.5800's decay-on-success), so a quiet lock
    /// drifts back to immediate probing.
    pub decay_after: u32,
    /// Delays at or above this many spin units yield the CPU instead of
    /// busy-waiting — the uniprocessor-friendly tail of the policy.
    pub yield_threshold: u32,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            // Matches the probe budget of the old three-tier default
            // (tier2 * tier3 = 128), so escalation pressure is unchanged.
            attempts: 128,
            base: 32,
            shift_cap: 7,
            cap: 4096,
            decay_after: 2,
            yield_threshold: 2048,
        }
    }
}

impl ContentionConfig {
    /// The pre-manager behavior, for ablation benchmarks: a fixed
    /// busy-wait between probes regardless of failure history (the
    /// naive tier-1 cadence the manager replaces). `shift_cap = 0`
    /// turns the exponential into a constant.
    pub fn naive() -> Self {
        ContentionConfig {
            attempts: 128,
            base: 64,
            shift_cap: 0,
            cap: 64,
            decay_after: 1,
            yield_threshold: u32::MAX,
        }
    }

    /// A minimal-state-space configuration for model-checked scenarios:
    /// two probes, no waiting, so contention adds at most one schedule
    /// point before escalation.
    pub fn minimal() -> Self {
        ContentionConfig {
            attempts: 2,
            base: 0,
            shift_cap: 0,
            cap: 0,
            decay_after: 1,
            yield_threshold: u32::MAX,
        }
    }

    /// The back-off *bound* (pre-jitter) for a thread whose failure
    /// history is `history`: `min(cap, base << min(history, shift_cap))`.
    pub fn bound_for(&self, history: u32) -> u32 {
        let shift = history.min(self.shift_cap);
        self.base
            .checked_shl(shift)
            .unwrap_or(u32::MAX)
            .min(self.cap)
    }

    /// Runs the probe loop under the calling thread's contention state.
    /// Returns `Some(value)` when a probe completed, `None` after
    /// `attempts` failed probes (the caller escalates).
    pub fn run<T>(&self, probe: impl FnMut() -> Probe<T>) -> Option<T> {
        self.run_observed(probe, |_| {})
    }

    /// [`ContentionConfig::run`] with an observer invoked once per
    /// back-off wait with the chosen delay — the hook the lock uses to
    /// feed its `contention_backoffs` statistics counter.
    pub fn run_observed<T>(
        &self,
        mut probe: impl FnMut() -> Probe<T>,
        mut on_backoff: impl FnMut(u32),
    ) -> Option<T> {
        for attempt in 0..self.attempts {
            match probe() {
                Probe::Done(v) => {
                    with_thread_state(|s| s.on_success(self));
                    return Some(v);
                }
                Probe::Retry => {}
            }
            let delay = with_thread_state(|s| s.on_failure(self));
            // As in the spin tiers, no wait after the final probe: the
            // next action is escalation, not another probe.
            if attempt + 1 < self.attempts {
                on_backoff(delay);
                self.wait(delay);
            }
        }
        None
    }

    /// One back-off wait of `delay` spin units (or a yield past the
    /// threshold). Compiled out under the model checker: waiting has no
    /// scheduling points, so it would only burn the step budget.
    fn wait(&self, delay: u32) {
        #[cfg(solero_mc)]
        let _ = delay;
        #[cfg(not(solero_mc))]
        if delay >= self.yield_threshold {
            std::thread::yield_now();
        } else {
            for _ in 0..delay {
                hint::spin_loop();
            }
        }
    }
}

/// Per-thread contention state: the failure history, the success streak
/// driving decay, and the deterministic jitter stream.
///
/// The lock paths use the thread-local instance behind
/// [`ContentionConfig::run`]; tests construct their own with
/// [`BackoffState::new`] to check the policy's algebra directly.
#[derive(Debug, Clone)]
pub struct BackoffState {
    history: u32,
    streak: u32,
    rng: SplitMix64,
}

impl BackoffState {
    /// Fresh state with an explicit jitter seed — identical seeds yield
    /// identical back-off sequences for identical failure patterns.
    pub fn new(seed: u64) -> Self {
        BackoffState {
            history: 0,
            streak: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The calling thread's canonical state: seeded from its runtime
    /// [`ThreadId`], so per-thread streams are decorrelated yet fully
    /// determined by thread creation order.
    pub fn for_current_thread() -> Self {
        Self::new(derive_seed(
            JITTER_STREAM_ROOT,
            ThreadId::current().as_u64(),
        ))
    }

    /// Current failure-history depth.
    pub fn history(&self) -> u32 {
        self.history
    }

    /// Registers a failed probe: resets the success streak, deepens the
    /// history, and returns the jittered delay (spin units) to wait,
    /// drawn uniformly from `[bound/2, bound]` where
    /// `bound = cfg.bound_for(history-before-this-failure)`.
    pub fn on_failure(&mut self, cfg: &ContentionConfig) -> u32 {
        self.streak = 0;
        let bound = cfg.bound_for(self.history);
        self.history = self.history.saturating_add(1);
        if bound == 0 {
            return 0;
        }
        let half = bound / 2;
        half + (self.rng.next_u64() % u64::from(bound - half + 1)) as u32
    }

    /// Registers a successful probe: every `cfg.decay_after` consecutive
    /// successes shed one level of failure history.
    pub fn on_success(&mut self, cfg: &ContentionConfig) {
        self.streak = self.streak.saturating_add(1);
        if self.streak >= cfg.decay_after.max(1) {
            self.streak = 0;
            self.history = self.history.saturating_sub(1);
        }
    }
}

thread_local! {
    static THREAD_STATE: RefCell<CachePadded<BackoffState>> =
        RefCell::new(CachePadded::new(BackoffState::for_current_thread()));
}

fn with_thread_state<R>(f: impl FnOnce(&mut BackoffState) -> R) -> R {
    THREAD_STATE.with(|s| f(&mut s.borrow_mut()))
}

/// The calling thread's current failure-history depth (diagnostics and
/// stress-test assertions).
pub fn thread_history() -> u32 {
    with_thread_state(|s| s.history())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_success_never_waits() {
        let cfg = ContentionConfig::default();
        let mut backoffs = 0;
        let got = cfg.run_observed(|| Probe::Done(7), |_| backoffs += 1);
        assert_eq!(got, Some(7));
        assert_eq!(backoffs, 0);
    }

    #[test]
    fn exhaustion_probes_attempts_times() {
        let cfg = ContentionConfig {
            attempts: 5,
            base: 0,
            ..ContentionConfig::default()
        };
        let mut probes = 0u32;
        let mut backoffs = 0u32;
        let got: Option<()> = cfg.run_observed(
            || {
                probes += 1;
                Probe::Retry
            },
            |_| backoffs += 1,
        );
        assert_eq!(got, None);
        assert_eq!(probes, 5);
        assert_eq!(backoffs, 4, "no wait after the final probe");
    }

    #[test]
    fn zero_attempts_never_probes() {
        let cfg = ContentionConfig {
            attempts: 0,
            ..ContentionConfig::default()
        };
        let got: Option<()> = cfg.run(|| panic!("probe must not run"));
        assert_eq!(got, None);
    }

    #[test]
    fn bound_is_capped_exponential() {
        let cfg = ContentionConfig {
            base: 8,
            shift_cap: 4,
            cap: 100,
            ..ContentionConfig::default()
        };
        assert_eq!(cfg.bound_for(0), 8);
        assert_eq!(cfg.bound_for(1), 16);
        assert_eq!(cfg.bound_for(3), 64);
        assert_eq!(cfg.bound_for(4), 100, "hard cap");
        assert_eq!(cfg.bound_for(400), 100, "shift cap + hard cap");
    }

    #[test]
    fn failure_grows_success_decays() {
        let cfg = ContentionConfig {
            decay_after: 2,
            ..ContentionConfig::default()
        };
        let mut s = BackoffState::new(1);
        for _ in 0..3 {
            s.on_failure(&cfg);
        }
        assert_eq!(s.history(), 3);
        s.on_success(&cfg);
        assert_eq!(s.history(), 3, "one success is below the decay streak");
        s.on_success(&cfg);
        assert_eq!(s.history(), 2, "two consecutive successes shed a level");
        s.on_failure(&cfg);
        s.on_success(&cfg);
        s.on_success(&cfg);
        assert_eq!(s.history(), 2, "a failure resets the streak");
    }

    #[test]
    fn naive_mode_is_constant_cadence() {
        let cfg = ContentionConfig::naive();
        for h in 0..40 {
            assert_eq!(cfg.bound_for(h), 64);
        }
    }

    #[test]
    fn thread_history_is_observable() {
        let cfg = ContentionConfig {
            attempts: 3,
            base: 0,
            decay_after: 1,
            ..ContentionConfig::default()
        };
        // Drain whatever history earlier tests on this thread left.
        while thread_history() > 0 {
            let _ = cfg.run(|| Probe::Done(()));
        }
        let got: Option<()> = cfg.run(|| Probe::Retry);
        assert_eq!(got, None);
        assert_eq!(thread_history(), 3);
        let _ = cfg.run(|| Probe::Done(()));
        assert_eq!(thread_history(), 2, "decay_after=1 sheds on every success");
    }
}
