//! OS monitors and the monitor table.
//!
//! When a flat lock inflates, the lock word is replaced by a fat-lock id
//! and all synchronization goes through an *OS monitor* — in the JVM a
//! heavyweight mutex + condition-variable pair fetched from a table that
//! maps the object to its monitor. We reproduce that: [`OsMonitor`] is a
//! reentrant logical monitor built on a mutex and two condition variables
//! (an entry set and a wait set, as in Java), and [`MonitorTable`] maps a
//! lock's identity — word address **plus allocation generation**
//! ([`MonitorKey`]) — to its monitor, holding entries only while the
//! lock is inflated (Compact Java Monitors, arXiv 2102.04188).
//!
//! For SOLERO the monitor additionally stores the **displaced counter**:
//! the sequence value (already incremented) that is written back to the
//! lock word on deflation, so concurrent speculative readers observe a
//! changed value across any inflate/deflate cycle (paper §3.2).

use std::collections::HashMap;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, PoisonError};

// The monitor itself synchronizes protocol-visible state, so it lives
// on the `solero-sync` facade (std in normal builds, instrumented under
// `--cfg solero_mc`). The table below, by contrast, is lookup plumbing
// the paper's protocol never races on; it stays on raw `std` so monitor
// cache lookups do not pollute the model checker's state space.
use solero_sync::atomic::{AtomicU64, Ordering};
use solero_sync::{Condvar, Mutex, MutexGuard};

use crate::thread::ThreadId;

/// Poison-tolerant lock: a panic inside a monitor operation is already
/// a lock-implementation bug (the asserts below); subsequent operations
/// should still see consistent counters rather than cascade poison
/// panics through unrelated threads.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn plock_std<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn pwait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug, Default)]
struct MonitorInner {
    /// Raw id of the owning thread, 0 when unowned.
    owner: u64,
    /// Recursive entries by the owner beyond the first.
    recursion: u32,
    /// Threads blocked in `enter`.
    queued: u32,
    /// Threads parked in the wait set.
    waiting: u32,
}

/// A reentrant, Java-style monitor.
///
/// Ownership is logical (recorded in the monitor state) rather than tied
/// to a guard lifetime, so `enter` and `exit` may be separate calls — as
/// the lock slow paths require.
///
/// # Examples
///
/// ```
/// use solero_runtime::osmonitor::OsMonitor;
/// use solero_runtime::thread::ThreadId;
///
/// let m = OsMonitor::new(1);
/// let me = ThreadId::current();
/// m.enter(me);
/// m.enter(me); // reentrant
/// m.exit(me);
/// m.exit(me);
/// assert!(!m.is_owned());
/// ```
#[derive(Debug)]
pub struct OsMonitor {
    id: u64,
    inner: Mutex<MonitorInner>,
    /// Entry set: threads waiting to own the monitor.
    entry: Condvar,
    /// Wait set: threads parked by [`OsMonitor::wait`].
    waitset: Condvar,
    /// SOLERO displaced counter word, written back on deflation.
    displaced: AtomicU64,
}

impl OsMonitor {
    /// Creates a monitor with the given fat-lock id.
    pub fn new(id: u64) -> Self {
        OsMonitor {
            id,
            inner: Mutex::new(MonitorInner::default()),
            entry: Condvar::new(),
            waitset: Condvar::new(),
            displaced: AtomicU64::new(0),
        }
    }

    /// The fat-lock id stored in inflated lock words.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the calling thread owns the monitor. Reentrant.
    pub fn enter(&self, tid: ThreadId) {
        let raw = tid.as_u64();
        let mut g = plock(&self.inner);
        if g.owner == raw {
            g.recursion += 1;
            return;
        }
        g.queued += 1;
        while g.owner != 0 {
            g = pwait(&self.entry, g);
        }
        g.queued -= 1;
        g.owner = raw;
    }

    /// Attempts to own the monitor without blocking.
    pub fn try_enter(&self, tid: ThreadId) -> bool {
        let raw = tid.as_u64();
        let mut g = plock(&self.inner);
        if g.owner == raw {
            g.recursion += 1;
            true
        } else if g.owner == 0 {
            g.owner = raw;
            true
        } else {
            false
        }
    }

    /// Releases one level of ownership.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor — that is a
    /// lock-implementation bug, not a recoverable condition.
    pub fn exit(&self, tid: ThreadId) {
        let mut g = plock(&self.inner);
        assert_eq!(g.owner, tid.as_u64(), "monitor exit by non-owner");
        if g.recursion > 0 {
            g.recursion -= 1;
        } else {
            g.owner = 0;
            self.entry.notify_one();
        }
    }

    /// Java-style `wait`: atomically releases ownership (all recursion
    /// levels) and parks until notified, then reacquires to the previous
    /// depth before returning.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor.
    pub fn wait(&self, tid: ThreadId) {
        let raw = tid.as_u64();
        let mut g = plock(&self.inner);
        assert_eq!(g.owner, raw, "monitor wait by non-owner");
        let saved = g.recursion;
        g.owner = 0;
        g.recursion = 0;
        g.waiting += 1;
        self.entry.notify_one();
        // One park, Java semantics: spurious wakeups are permitted, so
        // callers loop on their condition around `wait`.
        g = pwait(&self.waitset, g);
        g.waiting -= 1;
        g.queued += 1;
        while g.owner != 0 {
            g = pwait(&self.entry, g);
        }
        g.queued -= 1;
        g.owner = raw;
        g.recursion = saved;
    }

    /// Like [`OsMonitor::wait`], but returns after `timeout` even without
    /// a notification. Returns `true` if notified, `false` on timeout.
    ///
    /// The flat-lock-contention protocol uses a timed wait: the paper's
    /// Figure 2/6 fast-path releases are plain stores guarded by a prior
    /// load, so an FLC bit set in the load→store window can be lost; the
    /// timed re-check restores liveness without putting an atomic
    /// read-modify-write on the release fast path.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the monitor.
    pub fn wait_timeout(&self, tid: ThreadId, timeout: std::time::Duration) -> bool {
        let raw = tid.as_u64();
        let mut g = plock(&self.inner);
        assert_eq!(g.owner, raw, "monitor wait by non-owner");
        let saved = g.recursion;
        g.owner = 0;
        g.recursion = 0;
        g.waiting += 1;
        self.entry.notify_one();
        let (g2, res) = self
            .waitset
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        g = g2;
        // As in Java, a spurious wakeup is indistinguishable from a
        // notification here; only a timeout is reported as `false`.
        let notified = !res.timed_out();
        g.waiting -= 1;
        g.queued += 1;
        while g.owner != 0 {
            g = pwait(&self.entry, g);
        }
        g.queued -= 1;
        g.owner = raw;
        g.recursion = saved;
        notified
    }

    /// The calling thread's ownership depth (1 = first entry), or 0 if it
    /// does not own the monitor. The lock deflation policy checks
    /// `depth == 1` before publishing a thin word on the final exit.
    pub fn depth(&self, tid: ThreadId) -> u32 {
        let g = plock(&self.inner);
        if g.owner == tid.as_u64() {
            g.recursion + 1
        } else {
            0
        }
    }

    /// Wakes every thread in the wait set.
    pub fn notify_all(&self) {
        self.waitset.notify_all();
    }

    /// Wakes one thread in the wait set.
    pub fn notify_one(&self) {
        self.waitset.notify_one();
    }

    /// True if some thread currently owns the monitor.
    pub fn is_owned(&self) -> bool {
        plock(&self.inner).owner != 0
    }

    /// True if the calling thread owns the monitor.
    pub fn owned_by(&self, tid: ThreadId) -> bool {
        plock(&self.inner).owner == tid.as_u64()
    }

    /// True if threads are blocked trying to enter — the deflation
    /// heuristic keeps the lock fat while there is queued contention.
    pub fn has_queued(&self) -> bool {
        plock(&self.inner).queued > 0
    }

    /// True if threads are parked in the wait set. Deflation must be
    /// deferred while waiters exist: a waiter that reacquires the
    /// monitor after a deflation would believe it holds a lock whose
    /// word says otherwise.
    pub fn has_waiters(&self) -> bool {
        plock(&self.inner).waiting > 0
    }

    /// Combined deflation guard: entry queue and wait set both empty.
    pub fn idle_for_deflation(&self) -> bool {
        let g = plock(&self.inner);
        g.queued == 0 && g.waiting == 0
    }

    /// Stores the displaced SOLERO counter word (already incremented past
    /// the value speculative readers may have captured).
    pub fn set_displaced(&self, word: u64) {
        self.displaced.store(word, Ordering::Release);
    }

    /// The displaced counter word to publish on deflation.
    pub fn displaced(&self) -> u64 {
        self.displaced.load(Ordering::Acquire)
    }

    /// Advances the displaced counter by one release step of the
    /// caller's word layout (`COUNTER_STEP` for [`SoleroWord`],
    /// `COMPACT_CTR_STEP` for [`CompactWord`]), returning the new value.
    /// Used when a writing critical section completes while the lock is
    /// inflated, so that deflation never republishes a value a
    /// speculative reader might still hold.
    ///
    /// [`SoleroWord`]: crate::word::SoleroWord
    /// [`CompactWord`]: crate::word::CompactWord
    pub fn bump_displaced(&self, step: u64) -> u64 {
        self.displaced
            .fetch_add(step, Ordering::AcqRel)
            .wrapping_add(step)
    }
}

/// Returns a fresh, never-reused generation nonce for a lock identity.
///
/// Monitor-table keys pair an address with a generation so that a lock
/// allocated at a dropped lock's address can never adopt the old lock's
/// monitor (and its stale displaced counter). Heap objects use the heap
/// header's allocation generation; standalone locks draw a nonce from
/// this process-global counter at construction.
pub fn next_lock_gen() -> u64 {
    static NEXT_GEN: StdAtomicU64 = StdAtomicU64::new(1);
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// Identity of a lock in the [`MonitorTable`]: its word address **plus a
/// generation**, so address reuse across drop/realloc never aliases two
/// distinct locks onto one monitor.
///
/// The generation namespaces are disjoint by construction — embedded
/// `SoleroLock`s draw a process-unique nonce from [`next_lock_gen`],
/// heap-resident compact words use the heap's per-slot allocation
/// generation, and raw compact cells bound without a heap use
/// generation 0 — and even a cross-namespace collision would be benign:
/// fat-ownership claims are validated against the monitor *id* stored in
/// the lock word, never against table membership alone.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MonitorKey {
    /// Address of the lock word.
    pub addr: usize,
    /// Allocation generation of the identity the word belongs to.
    pub gen: u64,
}

impl MonitorKey {
    /// Key for `addr` under generation `gen`.
    #[inline]
    pub fn new(addr: usize, gen: u64) -> Self {
        MonitorKey { addr, gen }
    }

    /// Key for an address with no generation domain (generation 0) —
    /// raw compact cells whose storage the caller guarantees outlives
    /// the table entry.
    #[inline]
    pub fn of_addr(addr: usize) -> Self {
        MonitorKey { addr, gen: 0 }
    }

    /// SplitMix64 finalizer over both fields — addresses are
    /// pointer-aligned and generations are sequential, so the shard
    /// index needs real mixing to spread either dimension.
    #[inline]
    fn mix(self) -> u64 {
        let mut z = (self.addr as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.gen);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const SHARDS: usize = 16;

/// Process-global sharded table mapping a lock's identity
/// ([`MonitorKey`]: word address + generation) to its [`OsMonitor`],
/// like the JVM's monitor cache in the Compact Java Monitors design.
///
/// Entries exist only while a lock is inflated (plus narrow race
/// windows): inflation inserts via [`MonitorTable::monitor_for`],
/// deflation removes via [`MonitorTable::remove_if`] *before* the thin
/// word is republished, and lock teardown sweeps any leftover via
/// [`MonitorTable::remove`]. Reactive paths (contenders, observers,
/// FLC releases) use [`MonitorTable::existing`] so they can never
/// resurrect an entry the deflater just pruned.
///
/// # Examples
///
/// ```
/// use solero_runtime::osmonitor::{MonitorKey, MonitorTable};
///
/// let key = MonitorKey::new(0xdead_beef, 1);
/// let m1 = MonitorTable::global().monitor_for(key);
/// let m2 = MonitorTable::global().monitor_for(key);
/// assert_eq!(m1.id(), m2.id(), "same key, same monitor");
/// // A different generation at the same address is a different lock:
/// let other = MonitorTable::global().monitor_for(MonitorKey::new(0xdead_beef, 2));
/// assert_ne!(m1.id(), other.id());
/// MonitorTable::global().remove(key);
/// MonitorTable::global().remove(MonitorKey::new(0xdead_beef, 2));
/// ```
#[derive(Debug)]
pub struct MonitorTable {
    shards: Vec<StdMutex<HashMap<MonitorKey, Arc<OsMonitor>>>>,
    next_id: StdAtomicU64,
}

impl MonitorTable {
    fn new() -> Self {
        MonitorTable {
            shards: (0..SHARDS).map(|_| StdMutex::new(HashMap::new())).collect(),
            next_id: StdAtomicU64::new(1),
        }
    }

    /// The process-global table.
    pub fn global() -> &'static MonitorTable {
        static TABLE: OnceLock<MonitorTable> = OnceLock::new();
        TABLE.get_or_init(MonitorTable::new)
    }

    #[inline]
    fn shard(&self, key: MonitorKey) -> &StdMutex<HashMap<MonitorKey, Arc<OsMonitor>>> {
        &self.shards[(key.mix() as usize) % SHARDS]
    }

    /// Returns the monitor for `key`, creating one on first use.
    ///
    /// Monitor ids are globally unique and never reused, which is what
    /// lets inflated lock words carry the id as proof of binding: a
    /// fresh monitor created after a deflate can never satisfy a claim
    /// check against a stale inflated word.
    ///
    /// Only inflating paths (and wait re-entry, which holds fat
    /// ownership) may call this; reactive paths use
    /// [`MonitorTable::existing`].
    pub fn monitor_for(&self, key: MonitorKey) -> Arc<OsMonitor> {
        let mut g = plock_std(self.shard(key));
        if let Some(m) = g.get(&key) {
            return Arc::clone(m);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let m = Arc::new(OsMonitor::new(id));
        g.insert(key, Arc::clone(&m));
        m
    }

    /// Returns the monitor for `key` only if one is currently tabled.
    /// The lookup-only counterpart of [`MonitorTable::monitor_for`] for
    /// reactive paths: a `None` means the lock deflated (retry from the
    /// word) — creating a monitor here would resurrect a pruned entry.
    pub fn existing(&self, key: MonitorKey) -> Option<Arc<OsMonitor>> {
        plock_std(self.shard(key)).get(&key).map(Arc::clone)
    }

    /// True if `key` is still bound to exactly `m`. Inflators must
    /// verify this (while owning `m`, which pins the binding — removal
    /// requires ownership) before CASing `m`'s id into a lock word.
    pub fn is_current(&self, key: MonitorKey, m: &Arc<OsMonitor>) -> bool {
        plock_std(self.shard(key))
            .get(&key)
            .is_some_and(|cur| Arc::ptr_eq(cur, m))
    }

    /// Removes the association for `key` only if it is still bound to
    /// exactly `m`; returns whether an entry was removed. The deflation
    /// path calls this *before* republishing the thin word so a racing
    /// re-inflation (which must create a *new* entry) can never have
    /// its entry swept by a stale deflater.
    pub fn remove_if(&self, key: MonitorKey, m: &Arc<OsMonitor>) -> bool {
        let mut g = plock_std(self.shard(key));
        if g.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, m)) {
            g.remove(&key);
            true
        } else {
            false
        }
    }

    /// Drops the association for `key` unconditionally. Called from
    /// lock teardown so a future lock reusing the address starts fresh
    /// even if the final exit lost a removal race.
    pub fn remove(&self, key: MonitorKey) {
        plock_std(self.shard(key)).remove(&key);
    }

    /// Number of live associations (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| plock_std(s).len()).sum()
    }

    /// True if the table holds no associations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn enter_exit_roundtrip() {
        let m = OsMonitor::new(1);
        let me = ThreadId::current();
        assert!(!m.is_owned());
        m.enter(me);
        assert!(m.owned_by(me));
        m.exit(me);
        assert!(!m.is_owned());
    }

    #[test]
    fn reentrancy_counts() {
        let m = OsMonitor::new(1);
        let me = ThreadId::current();
        m.enter(me);
        m.enter(me);
        m.enter(me);
        m.exit(me);
        assert!(m.owned_by(me));
        m.exit(me);
        assert!(m.owned_by(me));
        m.exit(me);
        assert!(!m.is_owned());
    }

    #[test]
    fn try_enter_fails_when_contended() {
        let m = Arc::new(OsMonitor::new(1));
        let me = ThreadId::current();
        m.enter(me);
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            let other = ThreadId::current();
            assert!(!m2.try_enter(other));
        })
        .join()
        .unwrap();
        m.exit(me);
    }

    #[test]
    fn contended_enter_blocks_until_exit() {
        let m = Arc::new(OsMonitor::new(1));
        let me = ThreadId::current();
        m.enter(me);
        let entered = Arc::new(AtomicBool::new(false));
        let (m2, e2) = (Arc::clone(&m), Arc::clone(&entered));
        let h = std::thread::spawn(move || {
            let other = ThreadId::current();
            m2.enter(other);
            e2.store(true, Ordering::SeqCst);
            m2.exit(other);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!entered.load(Ordering::SeqCst), "must block while owned");
        assert!(m.has_queued());
        m.exit(me);
        h.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_releases_and_reacquires_recursion() {
        let m = Arc::new(OsMonitor::new(1));
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let me = ThreadId::current();
            m2.enter(me);
            m2.enter(me); // depth 2
            m2.wait(me); // releases fully
            assert!(m2.owned_by(me));
            m2.exit(me);
            m2.exit(me);
            assert!(!m2.is_owned());
        });
        // Let the waiter park, then take the monitor ourselves and notify.
        std::thread::sleep(Duration::from_millis(20));
        let me = ThreadId::current();
        m.enter(me);
        m.notify_all();
        m.exit(me);
        h.join().unwrap();
    }

    #[test]
    fn displaced_counter_bumps() {
        let m = OsMonitor::new(9);
        m.set_displaced(0x500);
        assert_eq!(m.displaced(), 0x500);
        assert_eq!(m.bump_displaced(crate::word::COUNTER_STEP), 0x600);
        assert_eq!(m.displaced(), 0x600);
        // A compact-layout caller bumps by its own (wider) step.
        assert_eq!(
            m.bump_displaced(crate::word::COMPACT_CTR_STEP),
            0x600 + crate::word::COMPACT_CTR_STEP
        );
    }

    #[test]
    fn table_is_idempotent_per_key() {
        let t = MonitorTable::global();
        let addr = &t as *const _ as usize; // any unique address
        let k = MonitorKey::new(addr, next_lock_gen());
        let a = t.monitor_for(k);
        let b = t.monitor_for(k);
        assert_eq!(a.id(), b.id());
        t.remove(k);
        let c = t.monitor_for(k);
        assert_ne!(a.id(), c.id(), "fresh monitor after removal");
        t.remove(k);
    }

    #[test]
    fn generation_disambiguates_reused_addresses() {
        let t = MonitorTable::global();
        let addr = 0x7000_0000_usize;
        let old = MonitorKey::new(addr, next_lock_gen());
        let new = MonitorKey::new(addr, next_lock_gen());
        let stale = t.monitor_for(old); // entry the old lock leaked
        let fresh = t.monitor_for(new);
        assert_ne!(
            stale.id(),
            fresh.id(),
            "same address, different generation: distinct monitors"
        );
        t.remove(old);
        t.remove(new);
    }

    #[test]
    fn existing_never_creates() {
        let t = MonitorTable::global();
        let k = MonitorKey::new(0x7100_0000, next_lock_gen());
        assert!(t.existing(k).is_none());
        let m = t.monitor_for(k);
        let found = t.existing(k).expect("tabled after monitor_for");
        assert_eq!(found.id(), m.id());
        t.remove(k);
        assert!(t.existing(k).is_none(), "existing sees the removal");
    }

    #[test]
    fn remove_if_only_removes_the_matching_binding() {
        let t = MonitorTable::global();
        let k = MonitorKey::new(0x7200_0000, next_lock_gen());
        let first = t.monitor_for(k);
        assert!(t.is_current(k, &first));
        assert!(t.remove_if(k, &first), "matching binding removed");
        assert!(!t.remove_if(k, &first), "second removal is a no-op");
        // A successor monitor at the same key is a different binding:
        // the stale Arc must neither pass is_current nor remove it.
        let second = t.monitor_for(k);
        assert!(!t.is_current(k, &first));
        assert!(t.is_current(k, &second));
        assert!(!t.remove_if(k, &first), "stale deflater cannot sweep successor");
        assert!(t.existing(k).is_some());
        assert!(t.remove_if(k, &second));
        assert!(t.existing(k).is_none());
    }

    #[test]
    fn lock_gen_nonces_are_unique() {
        let a = next_lock_gen();
        let b = next_lock_gen();
        assert_ne!(a, b);
        assert!(a >= 1 && b >= 1, "generation 0 is reserved for raw cells");
    }
}
