//! Memory-ordering points (paper §3.4).
//!
//! The correctness of the SOLERO fast paths depends on four orderings:
//!
//! 1. write entry: the acquiring CAS before the section's loads/stores —
//!    the CAS uses `AcqRel` (the paper inserts `lwsync` after it on
//!    POWER);
//! 2. write exit: the section's loads/stores before the releasing store —
//!    the store uses `Release`;
//! 3. read-only entry: the lock-word load before the section's loads —
//!    the load uses `Acquire`; additionally the Java lock semantics
//!    require *stores preceding the section* to be ordered before the
//!    section's loads, a Store→Load edge that even TSO machines need a
//!    full fence for — the paper inserts `sync` here; we issue
//!    [`core::sync::atomic::fence`]`(SeqCst)`;
//! 4. read-only exit: the section's loads before the re-load of the lock
//!    word — guaranteed because all speculative heap loads are `Acquire`,
//!    plus an explicit `Acquire` fence for belt and braces.
//!
//! [`BarrierMode::Weak`] deliberately drops the entry `SeqCst` fence,
//! reproducing the paper's **WeakBarrier-SOLERO** measurement (the cost
//! of the extra ordering), *not* a correct configuration.

use solero_sync::atomic::{fence, Ordering};

/// Which fences the read-only fast path issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierMode {
    /// The correct fences from §3.4 (the POWER `sync` analogue at
    /// read-only entry).
    #[default]
    Strong,
    /// The conventional lock's weaker fences — the paper's deliberately
    /// incorrect `WeakBarrier-SOLERO` configuration, measured to isolate
    /// the memory-ordering overhead.
    Weak,
}

/// A full Store→Load barrier.
///
/// On x86-64 this is the locked-RMW-to-the-stack idiom JIT compilers
/// emit instead of `mfence` (HotSpot's `lock addl $0, 0(%rsp)`): it
/// drains the store buffer like `mfence` but retires faster because the
/// target line is always exclusive in L1. Elsewhere it is a `SeqCst`
/// fence.
///
/// Under `--cfg solero_mc` the asm block would be invisible to the
/// cooperative scheduler (the §3.4 barrier the checker exists to test
/// would vanish from the model), so the barrier routes through the
/// `solero-sync` shim instead.
#[cfg(not(solero_mc))]
#[inline]
pub fn storeload_fence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: atomically adds 0 to the word at [rsp] — a no-op write to
    // our own stack; the `lock` prefix makes it a full barrier. The asm
    // block is maximally conservative (clobbers memory and flags), so
    // the compiler also treats it as a compiler fence.
    unsafe {
        core::arch::asm!("lock add qword ptr [rsp], 0");
    }
    #[cfg(not(target_arch = "x86_64"))]
    fence(Ordering::SeqCst);
}

/// Model-checked Store→Load barrier: a first-class scheduler op (see
/// the non-mc variant above for the hardware idiom this stands in for).
#[cfg(solero_mc)]
#[inline]
pub fn storeload_fence() {
    solero_sync::shim::storeload_fence();
}

impl BarrierMode {
    /// Fence after loading the lock word at read-only entry.
    #[inline]
    pub fn read_entry_fence(self) {
        match self {
            BarrierMode::Strong => storeload_fence(),
            BarrierMode::Weak => {}
        }
    }

    /// Fence before re-loading the lock word at read-only exit.
    #[inline]
    pub fn read_exit_fence(self) {
        match self {
            BarrierMode::Strong => fence(Ordering::Acquire),
            BarrierMode::Weak => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_strong() {
        assert_eq!(BarrierMode::default(), BarrierMode::Strong);
    }

    #[test]
    fn fences_execute() {
        // Smoke test: both modes run without panicking.
        for m in [BarrierMode::Strong, BarrierMode::Weak] {
            m.read_entry_fence();
            m.read_exit_fence();
        }
    }
}
