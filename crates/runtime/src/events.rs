//! Asynchronous validation events.
//!
//! The paper breaks infinite loops caused by inconsistent speculative
//! reads with the JVM's pre-existing asynchronous events (used for GC
//! checks): a ticker occasionally flags every thread, and JIT-inserted
//! check-points at method entries and loop back-edges poll the flag; a
//! flagged thread inside a read-only critical section re-validates its
//! local lock value (paper §3.3).
//!
//! [`EventSource`] is that ticker: a global epoch counter that a
//! background thread (or a test, via [`EventSource::bump`]) advances.
//! Sessions capture the epoch on entry; [`EventPoll`] makes the per-
//! check-point decision "should I validate now?", combining the epoch
//! with a deterministic every-N fallback so validation also happens in
//! runs without a ticker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// The global asynchronous-event epoch.
///
/// # Examples
///
/// ```
/// use solero_runtime::events::EventSource;
///
/// let before = EventSource::global().epoch();
/// EventSource::global().bump();
/// assert!(EventSource::global().epoch() > before);
/// ```
#[derive(Debug)]
pub struct EventSource {
    epoch: AtomicU64,
}

impl EventSource {
    /// The process-global source.
    pub fn global() -> &'static EventSource {
        static SRC: OnceLock<EventSource> = OnceLock::new();
        SRC.get_or_init(|| EventSource {
            epoch: AtomicU64::new(0),
        })
    }

    /// Current epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Manually delivers an asynchronous event to all threads.
    pub fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a background ticker delivering an event every `period`.
    /// The returned guard stops **and joins** the ticker when dropped —
    /// promptly, even mid-period: the ticker waits on a condition
    /// variable rather than sleeping, so a stop request interrupts the
    /// wait instead of being noticed only at the next tick.
    pub fn start_ticker(&'static self, period: Duration) -> TickerHandle {
        let shared = Arc::new(TickerShared {
            stopped: Mutex::new(false),
            cancel: Condvar::new(),
        });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("solero-async-events".into())
            .spawn(move || loop {
                let mut stopped = shared2
                    .stopped
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                while !*stopped {
                    let (g, timeout) = shared2
                        .cancel
                        .wait_timeout(stopped, period)
                        .unwrap_or_else(PoisonError::into_inner);
                    stopped = g;
                    if timeout.timed_out() {
                        break;
                    }
                }
                if *stopped {
                    return;
                }
                drop(stopped);
                EventSource::global().bump();
            })
            .expect("spawn ticker");
        TickerHandle {
            shared,
            handle: Some(handle),
        }
    }
}

struct TickerShared {
    stopped: Mutex<bool>,
    cancel: Condvar,
}

/// Shutdown guard for the background ticker: stops and joins the ticker
/// thread when dropped (or explicitly via [`TickerHandle::stop`]).
#[derive(Debug)]
pub struct TickerHandle {
    shared: Arc<TickerShared>,
    handle: Option<JoinHandle<()>>,
}

impl TickerHandle {
    /// Stops the ticker and waits for its thread to exit. Idempotent;
    /// dropping the handle does the same.
    pub fn stop(&mut self) {
        *self
            .shared
            .stopped
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.shared.cancel.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TickerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TickerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickerShared").finish_non_exhaustive()
    }
}

/// Per-session check-point poller.
///
/// `should_validate()` is called at every JIT check-point (loop
/// back-edges, method entries) and must therefore cost about as much as
/// the flag test the paper's JIT emits: the hot path is one decrement
/// and one branch. Every `batch` polls (at most 64) the poller checks
/// the global epoch and the deterministic period:
///
/// * it returns `true` when the epoch advanced since the last check
///   (an asynchronous event was delivered — detected within ≤ 64
///   polls, as the JVM's events are themselves only polled at
///   check-points);
/// * with `period != 0` it also returns `true` at least every `period`
///   polls, a deterministic fallback so validation happens even in runs
///   without a ticker.
///
/// # Examples
///
/// ```
/// use solero_runtime::events::EventPoll;
///
/// let mut poll = EventPoll::new(3);
/// assert!(!poll.should_validate());
/// assert!(!poll.should_validate());
/// assert!(poll.should_validate(), "every third poll validates");
/// ```
#[derive(Debug, Clone)]
pub struct EventPoll {
    last_epoch: u64,
    /// Polls accumulated since the last validation.
    polls: u64,
    period: u64,
    countdown: u32,
    batch: u32,
}

impl EventPoll {
    /// Creates a poller with the given deterministic period
    /// (`0` = events only).
    pub fn new(period: u64) -> Self {
        let batch = if period == 0 { 64 } else { period.min(64) as u32 };
        // The hot path counts this batch down; it must never be zero or
        // the first poll would wrap. The expression above cannot
        // produce zero today, but the invariant is enforced here rather
        // than re-derived at every call site.
        let batch = batch.max(1);
        EventPoll {
            last_epoch: EventSource::global().epoch(),
            polls: 0,
            period,
            countdown: batch,
            batch,
        }
    }

    /// One check-point poll; see the type docs.
    ///
    /// The countdown is tested *before* it is decremented, so no state
    /// — not even `countdown == 0` — can wrap the `u32`: any exhausted
    /// countdown lands in [`EventPoll::slow_poll`], which re-arms it to
    /// a full batch.
    #[inline]
    pub fn should_validate(&mut self) -> bool {
        if self.countdown > 1 {
            self.countdown -= 1;
            return false;
        }
        self.slow_poll()
    }

    #[cold]
    fn slow_poll(&mut self) -> bool {
        self.countdown = self.batch;
        self.polls += self.batch as u64;
        let epoch = EventSource::global().epoch();
        if epoch != self.last_epoch {
            self.last_epoch = epoch;
            self.polls = 0;
            return true;
        }
        if self.period != 0 && self.polls >= self.period {
            self.polls = 0;
            return true;
        }
        false
    }

    /// Resets the poll counter (used when a session restarts).
    pub fn reset(&mut self) {
        self.polls = 0;
        self.countdown = self.batch;
        self.last_epoch = EventSource::global().epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_triggers_validation_within_a_batch() {
        let mut p = EventPoll::new(0); // no deterministic fallback
        assert!(!p.should_validate());
        EventSource::global().bump();
        // The event is detected within one sampling batch (≤ 64 polls).
        let detected = (0..64).any(|_| p.should_validate());
        assert!(detected);
    }

    #[test]
    fn deterministic_period_fires() {
        let mut p = EventPoll::new(2);
        let fired: Vec<bool> = (0..6).map(|_| p.should_validate()).collect();
        // Unless another test bumps concurrently, every second poll fires.
        assert!(fired.iter().filter(|&&b| b).count() >= 3);
    }

    #[test]
    fn zero_period_never_fires_without_events() {
        // Snapshot-based: only count polls where the epoch was stable
        // across the whole run (other tests may bump concurrently).
        let before = EventSource::global().epoch();
        let mut p = EventPoll::new(0);
        let mut fired = false;
        for _ in 0..1000 {
            fired |= p.should_validate();
        }
        if EventSource::global().epoch() == before {
            assert!(!fired);
        }
    }

    /// `period > 64` still samples in batches of 64: with the epoch
    /// stable the deterministic fallback fires exactly at the first
    /// batch boundary past the period (poll 128 for period 100), never
    /// mid-batch.
    #[test]
    fn long_period_fires_at_batch_boundaries() {
        // Other tests may bump the global epoch concurrently; only
        // assert on a run where it stayed stable throughout.
        let before = EventSource::global().epoch();
        let mut p = EventPoll::new(100);
        let mut positions = Vec::new();
        for i in 1u32..=256 {
            if p.should_validate() {
                positions.push(i);
            }
        }
        if EventSource::global().epoch() == before {
            assert_eq!(positions, vec![128, 256]);
        }
    }

    /// The zero-period ("events only") construction survives arbitrary
    /// poll volume: the countdown is re-armed from `slow_poll` before
    /// it can ever wrap the `u32`, so a long quiet run neither panics
    /// nor spuriously validates.
    #[test]
    fn zero_period_long_run_cannot_underflow() {
        let before = EventSource::global().epoch();
        let mut p = EventPoll::new(0);
        let mut fired = 0u32;
        for _ in 0..100_000 {
            if p.should_validate() {
                fired += 1;
            }
        }
        if EventSource::global().epoch() == before {
            assert_eq!(fired, 0, "no events, no deterministic period");
        }
    }

    #[test]
    fn ticker_advances_epoch() {
        let src = EventSource::global();
        let before = src.epoch();
        {
            let _t = src.start_ticker(Duration::from_millis(5));
            std::thread::sleep(Duration::from_millis(40));
        }
        assert!(src.epoch() > before);
    }

    #[test]
    fn ticker_drop_is_prompt_even_mid_period() {
        // A 60 s period: if Drop still had to ride out the sleep, this
        // test would blow the suite's timeout; the Condvar wait makes
        // cancellation immediate.
        let src = EventSource::global();
        let start = std::time::Instant::now();
        let t = src.start_ticker(Duration::from_secs(60));
        std::thread::sleep(Duration::from_millis(20));
        drop(t);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "drop must interrupt the wait, not ride out the period"
        );
    }

    #[test]
    fn ticker_explicit_stop_is_idempotent() {
        let src = EventSource::global();
        let mut t = src.start_ticker(Duration::from_secs(60));
        t.stop();
        t.stop();
        drop(t); // stop-again via Drop is also fine
    }

    #[test]
    fn reset_clears_pending_validation() {
        let mut p = EventPoll::new(1);
        assert!(p.should_validate());
        p.reset();
        EventSource::global().bump();
        p.reset(); // absorbs the event
        // period==1 still fires deterministically though:
        assert!(p.should_validate());
    }
}
