//! Faults raised inside critical sections.
//!
//! A read-only critical section executed speculatively can observe
//! mutually inconsistent values, which in the paper manifests as Java
//! runtime exceptions (null-pointer dereference, division by zero,
//! array-index errors) or as infinite loops (§3.3). This reproduction
//! models those as values of [`Fault`]: speculative code returns
//! `Result<T, Fault>`, the recovery driver validates the lock word when
//! a fault surfaces, and either retries the section (value changed — the
//! fault may be a speculation artifact) or propagates it (value
//! unchanged — the fault is genuine, inherent to the program).

use core::fmt;

/// A runtime fault inside a critical section.
///
/// # Examples
///
/// ```
/// use solero_runtime::fault::Fault;
///
/// let f = Fault::NullPointer;
/// assert!(!f.is_artifact_only());
/// assert!(Fault::Inconsistent.is_artifact_only());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Dereference of a null object reference
    /// (`java.lang.NullPointerException`).
    NullPointer,
    /// Array or slot index out of bounds
    /// (`java.lang.ArrayIndexOutOfBoundsException`).
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The container length observed.
        len: u32,
    },
    /// Object observed with an unexpected class
    /// (`java.lang.ClassCastException`) — under speculation this arises
    /// when a recycled handle now refers to an object of another class.
    ClassCast {
        /// Class id the code expected.
        expected: u32,
        /// Class id actually found.
        found: u32,
    },
    /// Integer division or remainder by zero
    /// (`java.lang.ArithmeticException`).
    DivisionByZero,
    /// A handle that refers to no live object — the speculative analogue
    /// of a dangling pointer; never observable under a held lock.
    StaleHandle {
        /// The dangling handle value.
        handle: u32,
    },
    /// Raised by a validation check-point: the lock word changed under a
    /// speculative section (never a genuine program error).
    Inconsistent,
    /// Raised when a read-mostly section fails its in-place upgrade CAS
    /// (Figure 17) and must re-execute while holding the lock (never a
    /// genuine program error).
    UpgradeFailed,
}

impl Fault {
    /// True for faults that can only be produced by the speculation
    /// machinery itself, never by the user program.
    pub fn is_artifact_only(self) -> bool {
        matches!(self, Fault::Inconsistent | Fault::UpgradeFailed)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NullPointer => write!(f, "null pointer dereference"),
            Fault::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Fault::ClassCast { expected, found } => {
                write!(f, "class cast failed: expected class {expected}, found {found}")
            }
            Fault::DivisionByZero => write!(f, "division by zero"),
            Fault::StaleHandle { handle } => write!(f, "stale object handle {handle}"),
            Fault::Inconsistent => write!(f, "speculative reads were inconsistent"),
            Fault::UpgradeFailed => write!(f, "read-mostly in-place lock upgrade failed"),
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let faults = [
            Fault::NullPointer,
            Fault::IndexOutOfBounds { index: -1, len: 4 },
            Fault::ClassCast {
                expected: 1,
                found: 2,
            },
            Fault::DivisionByZero,
            Fault::StaleHandle { handle: 9 },
            Fault::Inconsistent,
            Fault::UpgradeFailed,
        ];
        for f in faults {
            let s = f.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn artifact_classification() {
        assert!(Fault::Inconsistent.is_artifact_only());
        assert!(Fault::UpgradeFailed.is_artifact_only());
        assert!(!Fault::NullPointer.is_artifact_only());
        assert!(!Fault::DivisionByZero.is_artifact_only());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(Fault::NullPointer);
        assert_eq!(e.to_string(), "null pointer dereference");
    }
}
