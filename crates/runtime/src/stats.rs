//! Lock-operation statistics.
//!
//! The paper's evaluation reports lock frequency and read-only ratio
//! (Table 1) and the speculative-failure ratio (Figure 15). Every lock
//! in this reproduction carries a [`LockStats`] of relaxed atomic
//! counters; the workload driver aggregates snapshots across locks and
//! threads.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$m:meta])* $name:ident),+ $(,)?) => {
        /// Per-lock event counters. All increments are `Relaxed`; the
        /// counters are statistics, not synchronization.
        #[derive(Debug, Default)]
        pub struct LockStats {
            $($(#[$m])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`LockStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$m])* pub $name: u64,)+
        }

        impl LockStats {
            /// Copies the counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Resets every counter to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl StatsSnapshot {
            /// Field-wise sum, for aggregating across locks.
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name + other.$name,)+
                }
            }

            /// Field-wise difference (`self - earlier`), for windowed
            /// measurements.
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }
        }
    };
}

counters! {
    /// Writing critical sections entered (fast or slow path).
    write_enters,
    /// Writing entries satisfied by the fast-path CAS.
    write_fast,
    /// Recursive flat-lock entries.
    recursive_enters,
    /// Read-only critical sections started (per attempt group, not retry).
    read_enters,
    /// Read-only sections completed with the lock elided.
    elision_success,
    /// Speculative executions that failed validation or faulted and were
    /// re-executed (counts each failed attempt).
    elision_failure,
    /// Read-only sections that fell back to acquiring the lock.
    fallback_acquires,
    /// Read-only sections that entered the slow entry path (lock busy at
    /// first probe).
    read_slow_enters,
    /// Transitions thin → fat.
    inflations,
    /// Transitions fat → thin.
    deflations,
    /// Times a thread parked on the monitor because of flat-lock
    /// contention (FLC protocol).
    flc_waits,
    /// Entries that went through the OS monitor (fat mode).
    monitor_enters,
    /// Validation checks triggered by asynchronous events at check-points.
    async_validations,
    /// Speculative faults (null pointer, bounds, ...) observed and
    /// recovered from by re-execution.
    speculative_faults,
    /// Read-mostly sections that upgraded in place to holding the lock
    /// (Figure 17 CAS succeeded).
    mostly_upgrades,
    /// Speculative read attempts aborted, any reason (sum of the
    /// `abort_*` counters below).
    read_aborts,
    /// Aborts: lock word busy at entry, speculation never started.
    abort_locked_at_entry,
    /// Aborts: exit/catch validation saw the captured word change.
    abort_word_changed_at_exit,
    /// Aborts: an asynchronous check-point re-validation failed.
    abort_async_revalidation,
    /// Aborts: retry budget exhausted, fell back to real acquisition.
    abort_retry_exhausted,
    /// Aborts: the lock inflated and the reader went through the
    /// monitor.
    abort_inflation,
    /// Read-only sections the adaptive policy sent straight to real
    /// acquisition (elision forfeited). Not an abort: speculation never
    /// started, so these do NOT contribute to `read_aborts`.
    policy_skips,
    /// Times the adaptive policy forfeited elision (a per-class retry
    /// budget hit zero while elision was still enabled).
    policy_disables,
    /// Times the adaptive policy re-armed elision (a forfeit window
    /// drained and speculation resumed).
    policy_rearms,
    /// BRAVO: writers that found the lock read-biased and revoked the
    /// bias (cleared `rbias`, then scanned the visible-readers table).
    /// Zero for every non-BRAVO lock.
    bias_revocations,
    /// BRAVO: times a slow-path reader re-installed the read bias after
    /// the uncontended-slow-path threshold was met. Zero for every
    /// non-BRAVO lock.
    bias_rebiases,
    /// Back-off waits taken by the history-keyed contention manager on
    /// the slow write / retry-exhausted fallback path (arXiv 1305.5800).
    /// Zero while every probe succeeds without waiting.
    contention_backoffs,
}

impl StatsSnapshot {
    /// Total critical sections (read + write) — the "lock operations" of
    /// Table 1.
    pub fn total_sections(&self) -> u64 {
        self.write_enters + self.read_enters
    }

    /// Fraction of sections that were read-only (Table 1, last column).
    pub fn read_only_ratio(&self) -> f64 {
        let total = self.total_sections();
        if total == 0 {
            0.0
        } else {
            self.read_enters as f64 / total as f64
        }
    }

    /// The abort counters paired with their stable reason names, in
    /// reporting order. The names match `solero-obs`'s `AbortReason`
    /// taxonomy so counter-based breakdowns and event traces agree.
    pub fn abort_reasons(&self) -> [(&'static str, u64); 5] {
        [
            ("locked_at_entry", self.abort_locked_at_entry),
            ("word_changed_at_exit", self.abort_word_changed_at_exit),
            ("async_revalidation_fail", self.abort_async_revalidation),
            ("retry_exhausted_fallback", self.abort_retry_exhausted),
            ("inflation", self.abort_inflation),
        ]
    }

    /// Sum of the per-reason abort counters. Invariant: equals
    /// [`read_aborts`](Self::read_aborts) — every abort is classified
    /// exactly once.
    pub fn abort_reason_sum(&self) -> u64 {
        self.abort_reasons().iter().map(|(_, n)| n).sum()
    }

    /// Fraction of speculative executions that failed (Figure 15).
    ///
    /// The denominator counts *executions* (successes + failed
    /// attempts), matching the paper's "ratio of failures in the
    /// speculative execution".
    pub fn failure_ratio(&self) -> f64 {
        let attempts = self.elision_success + self.elision_failure;
        if attempts == 0 {
            0.0
        } else {
            self.elision_failure as f64 / attempts as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sections={} (write={}, read={}), elided={}, failed={}, \
             fallbacks={}, inflations={}, deflations={}, faults={}",
            self.total_sections(),
            self.write_enters,
            self.read_enters,
            self.elision_success,
            self.elision_failure,
            self.fallback_acquires,
            self.inflations,
            self.deflations,
            self.speculative_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = LockStats::default();
        s.write_enters.fetch_add(3, Ordering::Relaxed);
        s.elision_success.fetch_add(5, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.write_enters, 3);
        assert_eq!(snap.elision_success, 5);
        assert_eq!(snap.read_enters, 0);
    }

    #[test]
    fn merge_and_since() {
        let a = StatsSnapshot {
            write_enters: 2,
            read_enters: 8,
            ..Default::default()
        };
        let b = StatsSnapshot {
            write_enters: 1,
            read_enters: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.write_enters, 3);
        assert_eq!(m.read_enters, 12);
        let d = a.since(&b);
        assert_eq!(d.write_enters, 1);
        assert_eq!(d.read_enters, 4);
    }

    #[test]
    fn ratios() {
        let s = StatsSnapshot {
            write_enters: 5,
            read_enters: 95,
            elision_success: 80,
            elision_failure: 20,
            ..Default::default()
        };
        assert!((s.read_only_ratio() - 0.95).abs() < 1e-12);
        assert!((s.failure_ratio() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = StatsSnapshot::default();
        assert_eq!(s.read_only_ratio(), 0.0);
        assert_eq!(s.failure_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let s = LockStats::default();
        s.inflations.fetch_add(7, Ordering::Relaxed);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn abort_reason_sum_matches_fields() {
        let s = StatsSnapshot {
            read_aborts: 15,
            abort_locked_at_entry: 5,
            abort_word_changed_at_exit: 4,
            abort_async_revalidation: 3,
            abort_retry_exhausted: 2,
            abort_inflation: 1,
            ..Default::default()
        };
        assert_eq!(s.abort_reason_sum(), 15);
        assert_eq!(s.abort_reason_sum(), s.read_aborts);
        let names: Vec<&str> = s.abort_reasons().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "locked_at_entry",
                "word_changed_at_exit",
                "async_revalidation_fail",
                "retry_exhausted_fallback",
                "inflation"
            ]
        );
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", StatsSnapshot::default()).is_empty());
    }
}
