//! Three-tier contention management — the paper's Figure 3.
//!
//! Flat-lock contention is resolved by three nested loops:
//!
//! * **tier 1** (innermost): a bounded busy-wait as back-off;
//! * **tier 2** (middle): repeated probe/CAS attempts;
//! * **tier 3** (outermost): yields the CPU between tier-2 rounds.
//!
//! When every tier is exhausted the caller escalates (inflates the lock).
//! The probe is a closure so the same skeleton serves the conventional
//! lock (Figure 3), the SOLERO write path, and the SOLERO slow read entry
//! (Figure 8), each of which exits the loops for different word states.
//!
//! The tier-1 busy-wait runs only *between* probes: after the final
//! probe of a tier-2 round the next action is a yield (or escalation),
//! so burning `tier1` `spin_loop` hints there would delay the very
//! escalation the loop decided on without buying another probe.

use core::fmt;
use std::hint;

/// What a spin probe decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe<T> {
    /// Stop spinning with this result (lock acquired, or a state that the
    /// caller handles outside the loops, e.g. "inflated — go to monitor").
    Done(T),
    /// Keep spinning.
    Retry,
}

/// Tier iteration counts.
///
/// The defaults are sized for a simulator running on commodity hardware;
/// the paper's exact `tier1/tier2/tier3` values are not published.
///
/// # Examples
///
/// ```
/// use solero_runtime::spin::{SpinConfig, Probe};
///
/// let cfg = SpinConfig::default();
/// let mut n = 0;
/// let got = cfg.run(|| {
///     n += 1;
///     if n == 3 { Probe::Done("acquired") } else { Probe::Retry }
/// });
/// assert_eq!(got, Some("acquired"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SpinConfig {
    /// Innermost busy-wait iterations between probes.
    pub tier1: u32,
    /// Probe attempts per tier-3 round.
    pub tier2: u32,
    /// Yield rounds before giving up (escalating to inflation).
    pub tier3: u32,
}

impl Default for SpinConfig {
    fn default() -> Self {
        Self::for_parallelism(detected_parallelism())
    }
}

/// The host's hardware parallelism, detected once and cached
/// process-wide (the production fast path behind
/// [`SpinConfig::default`]). Falls back to 2 when the host refuses to
/// answer, so detection failure never silently selects the
/// uniprocessor tiers.
pub fn detected_parallelism() -> usize {
    use std::sync::OnceLock;
    static PAR: OnceLock<usize> = OnceLock::new();
    *PAR.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
    })
}

impl fmt::Debug for SpinConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpinConfig(tier1={}, tier2={}, tier3={})",
            self.tier1, self.tier2, self.tier3
        )
    }
}

impl SpinConfig {
    /// A configuration that never spins: a single probe and out.
    /// Useful in tests that want deterministic escalation.
    pub fn immediate() -> Self {
        SpinConfig {
            tier1: 0,
            tier2: 1,
            tier3: 1,
        }
    }

    /// Tier sizes for a host with `parallelism` hardware threads — the
    /// pure, injectable form of [`SpinConfig::default`], so the
    /// uniprocessor branch is testable on any machine instead of being
    /// latched process-wide by the detection cache.
    ///
    /// Like production JVMs, spinning is effectively disabled on a
    /// uniprocessor: the lock holder cannot make progress while we
    /// spin, so yield almost immediately.
    ///
    /// ```
    /// use solero_runtime::spin::SpinConfig;
    ///
    /// assert_eq!(SpinConfig::for_parallelism(1).tier1, 0);
    /// assert!(SpinConfig::for_parallelism(16).tier1 > 0);
    /// ```
    pub fn for_parallelism(parallelism: usize) -> Self {
        if parallelism <= 1 {
            SpinConfig {
                tier1: 0,
                tier2: 2,
                tier3: 2,
            }
        } else {
            SpinConfig {
                tier1: 64,
                tier2: 32,
                tier3: 4,
            }
        }
    }

    /// Runs the three-tier loop. Returns `Some(value)` if the probe
    /// completed, or `None` when every tier is exhausted and the caller
    /// should escalate.
    pub fn run<T>(&self, probe: impl FnMut() -> Probe<T>) -> Option<T> {
        self.run_with(
            probe,
            |iters| {
                for _ in 0..iters {
                    hint::spin_loop();
                }
            },
            std::thread::yield_now,
        )
    }

    /// The three-tier loop with injectable back-off and yield actions —
    /// the instrumentable skeleton behind [`SpinConfig::run`], used by
    /// tests to observe the exact probe/backoff/yield interleaving.
    ///
    /// `backoff(tier1)` runs only between probes of the same tier-2
    /// round; after a round's final probe the next action is `yield_round`
    /// (or exhaustion), never a tier-1 wait.
    pub fn run_with<T>(
        &self,
        mut probe: impl FnMut() -> Probe<T>,
        mut backoff: impl FnMut(u32),
        mut yield_round: impl FnMut(),
    ) -> Option<T> {
        for round in 0..self.tier3 {
            for attempt in 0..self.tier2 {
                match probe() {
                    Probe::Done(v) => return Some(v),
                    Probe::Retry => {}
                }
                // No probe follows the last attempt of this round; the
                // tier-1 wait would only delay the yield or escalation.
                if attempt + 1 < self.tier2 {
                    backoff(self.tier1);
                }
            }
            if round + 1 < self.tier3 {
                yield_round();
            }
        }
        None
    }

    /// Total number of probe attempts the loop will make before
    /// exhaustion.
    pub fn max_probes(&self) -> u64 {
        u64::from(self.tier2) * u64::from(self.tier3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_succeeds_on_first_probe() {
        let got = SpinConfig::immediate().run(|| Probe::Done(7));
        assert_eq!(got, Some(7));
    }

    #[test]
    fn exhaustion_returns_none() {
        let cfg = SpinConfig {
            tier1: 0,
            tier2: 3,
            tier3: 2,
        };
        let mut probes = 0u64;
        let got: Option<()> = cfg.run(|| {
            probes += 1;
            Probe::Retry
        });
        assert_eq!(got, None);
        assert_eq!(probes, cfg.max_probes());
    }

    #[test]
    fn succeeds_midway() {
        let cfg = SpinConfig {
            tier1: 1,
            tier2: 10,
            tier3: 3,
        };
        let mut n = 0;
        let got = cfg.run(|| {
            n += 1;
            if n == 17 {
                Probe::Done(n)
            } else {
                Probe::Retry
            }
        });
        assert_eq!(got, Some(17));
    }

    #[test]
    fn zero_tiers_probe_never_runs() {
        let cfg = SpinConfig {
            tier1: 0,
            tier2: 0,
            tier3: 0,
        };
        let got: Option<()> = cfg.run(|| panic!("probe must not run"));
        assert_eq!(got, None);
    }

    /// Regression: the tier-1 busy-wait must not run after the final
    /// probe of a tier-2 round. Before the fix every escalation to
    /// inflation and every yield round burned `tier1` wasted
    /// `spin_loop` iterations after a probe that could no longer be
    /// retried.
    #[test]
    fn no_backoff_after_final_probe_of_a_round() {
        let cfg = SpinConfig {
            tier1: 7,
            tier2: 3,
            tier3: 2,
        };
        let trace = std::cell::RefCell::new(String::new());
        let got: Option<()> = cfg.run_with(
            || {
                trace.borrow_mut().push('P');
                Probe::Retry
            },
            |iters| {
                assert_eq!(iters, cfg.tier1);
                trace.borrow_mut().push('B');
            },
            || trace.borrow_mut().push('Y'),
        );
        let log = trace.into_inner();
        assert_eq!(got, None);
        // tier2=3 probes with backoff only *between* them, a yield
        // between the tier3=2 rounds, and no trailing backoff before
        // either the yield or the final escalation.
        assert_eq!(log, "PBPBPYPBPBP");
    }

    /// Regression: exhaustion runs exactly tier2 - 1 backoffs per round
    /// (not tier2), for every shape.
    #[test]
    fn backoff_count_is_probes_minus_rounds() {
        for (t1, t2, t3) in [(1u32, 1u32, 1u32), (4, 2, 3), (64, 32, 4), (0, 5, 2)] {
            let cfg = SpinConfig {
                tier1: t1,
                tier2: t2,
                tier3: t3,
            };
            let mut probes = 0u64;
            let mut backoffs = 0u64;
            let mut yields = 0u64;
            let got: Option<()> = cfg.run_with(
                || {
                    probes += 1;
                    Probe::Retry
                },
                |_| backoffs += 1,
                || yields += 1,
            );
            assert_eq!(got, None);
            assert_eq!(probes, cfg.max_probes());
            assert_eq!(backoffs, u64::from(t3) * u64::from(t2.saturating_sub(1)));
            assert_eq!(yields, u64::from(t3.saturating_sub(1)));
        }
    }

    /// A mid-round success stops before the following backoff.
    #[test]
    fn success_skips_the_trailing_backoff() {
        let cfg = SpinConfig {
            tier1: 9,
            tier2: 4,
            tier3: 1,
        };
        let mut probes = 0;
        let mut backoffs = 0;
        let got = cfg.run_with(
            || {
                probes += 1;
                if probes == 2 {
                    Probe::Done(())
                } else {
                    Probe::Retry
                }
            },
            |_| backoffs += 1,
            || {},
        );
        assert_eq!(got, Some(()));
        assert_eq!(backoffs, 1, "one backoff between probe 1 and probe 2");
    }

    /// The injectable constructor makes both detection branches
    /// testable on any host; the default stays the cached detection.
    #[test]
    fn parallelism_branches_are_injectable() {
        let up = SpinConfig::for_parallelism(1);
        assert_eq!((up.tier1, up.tier2, up.tier3), (0, 2, 2));
        let smp = SpinConfig::for_parallelism(8);
        assert_eq!((smp.tier1, smp.tier2, smp.tier3), (64, 32, 4));
        assert_eq!(SpinConfig::for_parallelism(0), up, "0 counts as uniprocessor");
        assert_eq!(
            SpinConfig::default(),
            SpinConfig::for_parallelism(detected_parallelism()),
            "Default must agree with the injectable constructor on the cached detection"
        );
        assert!(detected_parallelism() >= 1);
    }
}
