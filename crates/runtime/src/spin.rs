//! Three-tier contention management — the paper's Figure 3.
//!
//! Flat-lock contention is resolved by three nested loops:
//!
//! * **tier 1** (innermost): a bounded busy-wait as back-off;
//! * **tier 2** (middle): repeated probe/CAS attempts;
//! * **tier 3** (outermost): yields the CPU between tier-2 rounds.
//!
//! When every tier is exhausted the caller escalates (inflates the lock).
//! The probe is a closure so the same skeleton serves the conventional
//! lock (Figure 3), the SOLERO write path, and the SOLERO slow read entry
//! (Figure 8), each of which exits the loops for different word states.

use core::fmt;
use std::hint;

/// What a spin probe decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe<T> {
    /// Stop spinning with this result (lock acquired, or a state that the
    /// caller handles outside the loops, e.g. "inflated — go to monitor").
    Done(T),
    /// Keep spinning.
    Retry,
}

/// Tier iteration counts.
///
/// The defaults are sized for a simulator running on commodity hardware;
/// the paper's exact `tier1/tier2/tier3` values are not published.
///
/// # Examples
///
/// ```
/// use solero_runtime::spin::{SpinConfig, Probe};
///
/// let cfg = SpinConfig::default();
/// let mut n = 0;
/// let got = cfg.run(|| {
///     n += 1;
///     if n == 3 { Probe::Done("acquired") } else { Probe::Retry }
/// });
/// assert_eq!(got, Some("acquired"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SpinConfig {
    /// Innermost busy-wait iterations between probes.
    pub tier1: u32,
    /// Probe attempts per tier-3 round.
    pub tier2: u32,
    /// Yield rounds before giving up (escalating to inflation).
    pub tier3: u32,
}

impl Default for SpinConfig {
    fn default() -> Self {
        // Like production JVMs, spinning is effectively disabled on a
        // uniprocessor: the lock holder cannot make progress while we
        // spin, so yield almost immediately.
        if uniprocessor() {
            SpinConfig {
                tier1: 0,
                tier2: 2,
                tier3: 2,
            }
        } else {
            SpinConfig {
                tier1: 64,
                tier2: 32,
                tier3: 4,
            }
        }
    }
}

/// True when the host exposes a single hardware thread.
fn uniprocessor() -> bool {
    use std::sync::OnceLock;
    static UP: OnceLock<bool> = OnceLock::new();
    *UP.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() == 1)
            .unwrap_or(false)
    })
}

impl fmt::Debug for SpinConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpinConfig(tier1={}, tier2={}, tier3={})",
            self.tier1, self.tier2, self.tier3
        )
    }
}

impl SpinConfig {
    /// A configuration that never spins: a single probe and out.
    /// Useful in tests that want deterministic escalation.
    pub fn immediate() -> Self {
        SpinConfig {
            tier1: 0,
            tier2: 1,
            tier3: 1,
        }
    }

    /// Runs the three-tier loop. Returns `Some(value)` if the probe
    /// completed, or `None` when every tier is exhausted and the caller
    /// should escalate.
    pub fn run<T>(&self, mut probe: impl FnMut() -> Probe<T>) -> Option<T> {
        for round in 0..self.tier3 {
            for _ in 0..self.tier2 {
                match probe() {
                    Probe::Done(v) => return Some(v),
                    Probe::Retry => {}
                }
                for _ in 0..self.tier1 {
                    hint::spin_loop();
                }
            }
            if round + 1 < self.tier3 {
                std::thread::yield_now();
            }
        }
        None
    }

    /// Total number of probe attempts the loop will make before
    /// exhaustion.
    pub fn max_probes(&self) -> u64 {
        u64::from(self.tier2) * u64::from(self.tier3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_succeeds_on_first_probe() {
        let got = SpinConfig::immediate().run(|| Probe::Done(7));
        assert_eq!(got, Some(7));
    }

    #[test]
    fn exhaustion_returns_none() {
        let cfg = SpinConfig {
            tier1: 0,
            tier2: 3,
            tier3: 2,
        };
        let mut probes = 0u64;
        let got: Option<()> = cfg.run(|| {
            probes += 1;
            Probe::Retry
        });
        assert_eq!(got, None);
        assert_eq!(probes, cfg.max_probes());
    }

    #[test]
    fn succeeds_midway() {
        let cfg = SpinConfig {
            tier1: 1,
            tier2: 10,
            tier3: 3,
        };
        let mut n = 0;
        let got = cfg.run(|| {
            n += 1;
            if n == 17 {
                Probe::Done(n)
            } else {
                Probe::Retry
            }
        });
        assert_eq!(got, Some(17));
    }

    #[test]
    fn zero_tiers_probe_never_runs() {
        let cfg = SpinConfig {
            tier1: 0,
            tier2: 0,
            tier3: 0,
        };
        let got: Option<()> = cfg.run(|| panic!("probe must not run"));
        assert_eq!(got, None);
    }
}
