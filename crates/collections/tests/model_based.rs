//! Property-based model tests: the shadow-heap collections must behave
//! exactly like `std::collections` maps under arbitrary operation
//! sequences, and the red-black invariants must hold after every
//! mutation.

use solero::NullCheckpoint;
use solero_collections::{JHashMap, JTreeMap};
use solero_heap::Heap;
use solero_testkit::{forall, TestRng};

#[derive(Debug, Clone)]
enum Op {
    Put(i64, i64),
    Remove(i64),
    Get(i64),
}

// A small key space maximizes collisions and structural churn.
fn gen_op(rng: &mut TestRng) -> Op {
    let key = |rng: &mut TestRng| rng.gen_range(-32i64..32);
    match rng.gen_range(0u32..3) {
        0 => Op::Put(key(rng), rng.gen::<i64>()),
        1 => Op::Remove(key(rng)),
        _ => Op::Get(key(rng)),
    }
}

#[test]
fn hashmap_matches_std_model() {
    forall(256, 0x4A54, |g| {
        let ops = g.vec(1, 400, gen_op);
        let heap = Heap::new(1 << 20);
        let map = JHashMap::new(&heap, 4).unwrap();
        let mut model = std::collections::HashMap::new();
        let mut ck = NullCheckpoint;
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    assert_eq!(map.put(&heap, k, v).unwrap(), model.insert(k, v));
                }
                Op::Remove(k) => {
                    assert_eq!(map.remove(&heap, k).unwrap(), model.remove(&k));
                }
                Op::Get(k) => {
                    assert_eq!(map.get(&heap, k, &mut ck).unwrap(), model.get(&k).copied());
                }
            }
            assert_eq!(map.len(&heap).unwrap(), model.len());
        }
        let mut got = map.entries(&heap, &mut ck).unwrap();
        got.sort_unstable();
        let mut want: Vec<_> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    });
}

#[test]
fn treemap_matches_std_model_and_invariants() {
    forall(256, 0x74EE, |g| {
        let ops = g.vec(1, 400, gen_op);
        let heap = Heap::new(1 << 20);
        let map = JTreeMap::new(&heap).unwrap();
        let mut model = std::collections::BTreeMap::new();
        let mut ck = NullCheckpoint;
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    assert_eq!(map.put(&heap, k, v).unwrap(), model.insert(k, v));
                }
                Op::Remove(k) => {
                    assert_eq!(map.remove(&heap, k).unwrap(), model.remove(&k));
                }
                Op::Get(k) => {
                    assert_eq!(map.get(&heap, k, &mut ck).unwrap(), model.get(&k).copied());
                }
            }
            map.check_invariants(&heap).unwrap();
        }
        let got = map.entries(&heap, &mut ck).unwrap();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
    });
}

#[test]
fn treemap_floor_matches_model() {
    forall(256, 0xF100,  |g| {
        let n_keys = g.size(1, 51) - 1;
        let keys: std::collections::BTreeSet<i64> =
            (0..n_keys).map(|_| g.gen_range(-100i64..100)).collect();
        let probes = g.vec(1, 40, |rng| rng.gen_range(-110i64..110));
        let heap = Heap::new(1 << 18);
        let map = JTreeMap::new(&heap).unwrap();
        let mut ck = NullCheckpoint;
        for &k in &keys {
            map.put(&heap, k, k).unwrap();
        }
        for p in probes {
            let want = keys.range(..=p).next_back().copied();
            assert_eq!(map.floor_key(&heap, p, &mut ck).unwrap(), want);
        }
    });
}

/// Concurrency: speculative SOLERO readers racing a writer must only
/// ever *return* values that were actually stored for that key (torn
/// observations must be filtered out by validation).
#[test]
fn speculative_reads_are_never_torn() {
    use solero::{Fault, SoleroLock};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let heap = Arc::new(Heap::new(1 << 22));
    let map = JHashMap::new(&heap, 64).unwrap();
    let lock = Arc::new(SoleroLock::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Invariant: value for key k is always k * 1_000_003.
    const M: i64 = 1_000_003;
    std::thread::scope(|s| {
        {
            let (heap, lock, stop) = (Arc::clone(&heap), Arc::clone(&lock), Arc::clone(&stop));
            s.spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let k = i % 512;
                    lock.write(|| {
                        if i % 3 == 2 {
                            map.remove(&heap, k).unwrap();
                        } else {
                            map.put(&heap, k, k * M).unwrap();
                        }
                    });
                    i += 1;
                }
            });
        }
        for _ in 0..4 {
            let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
            s.spawn(move || {
                for i in 0..30_000i64 {
                    let k = i % 512;
                    let got = lock
                        .read_only(|ck| map.get(&heap, k, ck))
                        .unwrap_or_else(|e: Fault| panic!("genuine fault leaked: {e}"));
                    if let Some(v) = got {
                        assert_eq!(v, k * M, "validated read returned a torn value");
                    }
                }
            });
        }
        // Let readers finish, then stop the writer.
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    let snap = lock.stats().snapshot();
    assert!(snap.elision_success > 0, "some reads must have elided: {snap}");
}

/// Same property for the tree map, whose rotations give speculation far
/// more structural churn to trip over.
#[test]
fn speculative_tree_reads_are_never_torn() {
    use solero::{Fault, SoleroLock};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let heap = Arc::new(Heap::new(1 << 22));
    let map = JTreeMap::new(&heap).unwrap();
    let lock = Arc::new(SoleroLock::new());
    let stop = Arc::new(AtomicBool::new(false));

    const M: i64 = 777_777_777;
    std::thread::scope(|s| {
        {
            let (heap, lock, stop) = (Arc::clone(&heap), Arc::clone(&lock), Arc::clone(&stop));
            s.spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let k = (i * 37) % 256;
                    lock.write(|| {
                        if i % 4 == 3 {
                            map.remove(&heap, k).unwrap();
                        } else {
                            map.put(&heap, k, k * M).unwrap();
                        }
                    });
                    i += 1;
                }
            });
        }
        for _ in 0..4 {
            let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
            s.spawn(move || {
                for i in 0..20_000i64 {
                    let k = (i * 11) % 256;
                    let got = lock
                        .read_only(|ck| map.get(&heap, k, ck))
                        .unwrap_or_else(|e: Fault| panic!("genuine fault leaked: {e}"));
                    if let Some(v) = got {
                        assert_eq!(v, k * M, "validated tree read returned a torn value");
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    // The writer mutated constantly, so some speculative failures are
    // expected — and they must all have been recovered from.
    let snap = lock.stats().snapshot();
    assert!(snap.elision_success > 0, "{snap}");
}
