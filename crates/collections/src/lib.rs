//! Java-style collections on the shadow heap.
//!
//! The paper's HashMap and TreeMap micro-benchmarks access a single
//! `java.util.HashMap` / `java.util.TreeMap` inside synchronized blocks.
//! These are their shadow-heap equivalents: the entire pointer graph —
//! tables, chain nodes, tree nodes — lives in a [`solero_heap::Heap`],
//! so speculative readers traverse it exactly as a JVM reader would,
//! observing stale or torn state as recoverable faults
//! ([`solero_heap::Fault`]) rather than undefined behaviour.
//!
//! * [`JHashMap`] — chained hash table with Java's 0.75 load-factor
//!   resize policy;
//! * [`JTreeMap`] — red-black tree (insertion and deletion fix-ups
//!   ported from `java.util.TreeMap`).
//!
//! Read-only operations (`get`, `contains_key`, `first_key`,
//! `floor_key`, `entries`) accept a [`solero::Checkpoint`] and poll it
//! at every loop back-edge, mirroring the paper's JIT-inserted
//! asynchronous check-points that break inconsistent infinite loops.
//! Mutating operations must run under whichever lock strategy is being
//! evaluated.
//!
//! # Examples
//!
//! A read-mostly map shared between SOLERO readers and writers:
//!
//! ```
//! use solero::{Fault, SoleroLock};
//! use solero_collections::JHashMap;
//! use solero_heap::Heap;
//!
//! let heap = Heap::new(1 << 16);
//! let map = JHashMap::new(&heap, 64)?;
//! let lock = SoleroLock::new();
//!
//! lock.write(|| map.put(&heap, 7, 700)).unwrap();
//! let v = lock.read_only(|session| map.get(&heap, 7, session))?;
//! assert_eq!(v, Some(700));
//! # Ok::<(), Fault>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hashmap;
mod treemap;

pub use hashmap::{JHashMap, MAP_CLASS, NODE_CLASS, TABLE_CLASS};
pub use treemap::{JTreeMap, TMAP_CLASS, TNODE_CLASS};
