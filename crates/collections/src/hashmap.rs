//! `JHashMap` — a `java.util.HashMap`-shaped chained hash table on the
//! shadow heap.
//!
//! Layout (all on the heap, so speculative readers traverse the same
//! pointer graph a Java reader would):
//!
//! ```text
//! MAP object:   [table: ref TABLE, size: i64, threshold: i64]
//! TABLE object: [bucket 0: ref NODE, bucket 1, ...]   (len = capacity)
//! NODE object:  [hash, key, value, next: ref NODE]
//! ```
//!
//! `get` is read-only: it never touches the map's lock state or mutates
//! the heap, and it polls the validation [`Checkpoint`] on every chain
//! step so an inconsistent traversal (e.g. a cycle created by a racing
//! `resize`) cannot loop forever. `put`/`remove`/`resize` are
//! writer-side and must run under the evaluated lock.

use solero::Checkpoint;
use solero_heap::{ClassId, Fault, Heap, ObjRef};

/// Class id of the map header object.
pub const MAP_CLASS: ClassId = ClassId::new(10);
/// Class id of bucket tables.
pub const TABLE_CLASS: ClassId = ClassId::new(11);
/// Class id of chain nodes.
pub const NODE_CLASS: ClassId = ClassId::new(12);

const F_TABLE: u32 = 0;
const F_SIZE: u32 = 1;
const F_THRESHOLD: u32 = 2;
const MAP_FIELDS: u32 = 3;

const N_HASH: u32 = 0;
const N_KEY: u32 = 1;
const N_VALUE: u32 = 2;
const N_NEXT: u32 = 3;
const NODE_FIELDS: u32 = 4;

/// Java's default load factor.
const LOAD_FACTOR_NUM: u64 = 3;
const LOAD_FACTOR_DEN: u64 = 4;

/// Spreads a 64-bit key into a bucket hash, like `HashMap.hash()`
/// (xor-shift of the high bits) extended to 64 bits.
fn spread(key: i64) -> u64 {
    let h = key as u64;
    let h = h ^ (h >> 33);
    let h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// A `java.util.HashMap<long, long>` equivalent on the shadow heap.
///
/// # Examples
///
/// ```
/// use solero::NullCheckpoint;
/// use solero_collections::JHashMap;
/// use solero_heap::Heap;
///
/// let heap = Heap::new(1 << 16);
/// let map = JHashMap::new(&heap, 16).unwrap();
/// map.put(&heap, 1, 100).unwrap();
/// map.put(&heap, 2, 200).unwrap();
/// let mut ck = NullCheckpoint;
/// assert_eq!(map.get(&heap, 1, &mut ck).unwrap(), Some(100));
/// assert_eq!(map.get(&heap, 3, &mut ck).unwrap(), None);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct JHashMap {
    root: ObjRef,
}

impl JHashMap {
    /// Creates an empty map with the given initial capacity (rounded up
    /// to a power of two).
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion as [`Fault::StaleHandle`]-free
    /// allocation errors surfaced by [`solero_heap::OutOfMemory`] being
    /// mapped to a panic; construction happens at setup time.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the initial table.
    pub fn new(heap: &Heap, capacity: usize) -> Result<Self, Fault> {
        let cap = capacity.next_power_of_two().max(2) as u32;
        let root = heap.alloc(MAP_CLASS, MAP_FIELDS).expect("heap exhausted");
        let table = heap.alloc(TABLE_CLASS, cap).expect("heap exhausted");
        heap.store_ref(root, F_TABLE, table)?;
        heap.store_i64(root, F_SIZE, 0)?;
        heap.store_i64(
            root,
            F_THRESHOLD,
            (cap as u64 * LOAD_FACTOR_NUM / LOAD_FACTOR_DEN) as i64,
        )?;
        Ok(JHashMap { root })
    }

    /// The heap object anchoring this map.
    pub fn root(&self) -> ObjRef {
        self.root
    }

    /// Number of entries (writer-side or validated read).
    ///
    /// # Errors
    ///
    /// Heap faults on stale speculation.
    pub fn len(&self, heap: &Heap) -> Result<usize, Fault> {
        Ok(heap.load_i64(self.root, MAP_CLASS, F_SIZE)?.max(0) as usize)
    }

    /// True if the map holds no entries.
    ///
    /// # Errors
    ///
    /// Heap faults on stale speculation.
    pub fn is_empty(&self, heap: &Heap) -> Result<bool, Fault> {
        Ok(self.len(heap)? == 0)
    }

    /// Read-only lookup. Safe to call speculatively: every heap access
    /// is fault-checked and every chain step polls `ck`.
    ///
    /// # Errors
    ///
    /// Heap faults ([`Fault::NullPointer`], [`Fault::ClassCast`], ...)
    /// and [`Fault::Inconsistent`] from the check-point. Under a
    /// SOLERO read section these trigger re-execution, not failure.
    pub fn get(
        &self,
        heap: &Heap,
        key: i64,
        ck: &mut dyn Checkpoint,
    ) -> Result<Option<i64>, Fault> {
        let table = heap.load_ref(self.root, MAP_CLASS, F_TABLE)?;
        if table.is_null() {
            return Err(Fault::NullPointer);
        }
        let cap = heap.len_of(table)?;
        if cap == 0 || !cap.is_power_of_two() {
            // A stale table handle recycled into something odd.
            return Err(Fault::StaleHandle {
                handle: table.raw(),
            });
        }
        let idx = (spread(key) & (cap as u64 - 1)) as u32;
        let mut node = heap.load_ref(table, TABLE_CLASS, idx)?;
        while !node.is_null() {
            ck.checkpoint()?;
            if heap.load_i64(node, NODE_CLASS, N_KEY)? == key {
                return Ok(Some(heap.load_i64(node, NODE_CLASS, N_VALUE)?));
            }
            node = heap.load_ref(node, NODE_CLASS, N_NEXT)?;
        }
        Ok(None)
    }

    /// True if `key` is present (read-only).
    ///
    /// # Errors
    ///
    /// As [`JHashMap::get`].
    pub fn contains_key(
        &self,
        heap: &Heap,
        key: i64,
        ck: &mut dyn Checkpoint,
    ) -> Result<bool, Fault> {
        Ok(self.get(heap, key, ck)?.is_some())
    }

    /// Writer-side insert; returns the previous value if any. Must run
    /// under the evaluated lock.
    ///
    /// # Errors
    ///
    /// Writer-side heap faults are genuine errors.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn put(&self, heap: &Heap, key: i64, value: i64) -> Result<Option<i64>, Fault> {
        let table = heap.load_ref(self.root, MAP_CLASS, F_TABLE)?;
        let cap = heap.len_of(table)?;
        let hash = spread(key);
        let idx = (hash & (cap as u64 - 1)) as u32;
        // Search the chain for an existing key.
        let head = heap.load_ref(table, TABLE_CLASS, idx)?;
        let mut node = head;
        while !node.is_null() {
            if heap.load_i64(node, NODE_CLASS, N_KEY)? == key {
                let old = heap.load_i64(node, NODE_CLASS, N_VALUE)?;
                heap.store_i64(node, N_VALUE, value)?;
                return Ok(Some(old));
            }
            node = heap.load_ref(node, NODE_CLASS, N_NEXT)?;
        }
        // Prepend a new node (Java 7-style head insertion keeps the
        // write visible in one pointer store).
        let fresh = heap.alloc(NODE_CLASS, NODE_FIELDS).expect("heap exhausted");
        heap.store(fresh, N_HASH, hash)?;
        heap.store_i64(fresh, N_KEY, key)?;
        heap.store_i64(fresh, N_VALUE, value)?;
        heap.store_ref(fresh, N_NEXT, head)?;
        heap.store_ref(table, idx, fresh)?;
        let size = heap.load_i64(self.root, MAP_CLASS, F_SIZE)? + 1;
        heap.store_i64(self.root, F_SIZE, size)?;
        if size > heap.load_i64(self.root, MAP_CLASS, F_THRESHOLD)? {
            self.resize(heap)?;
        }
        Ok(None)
    }

    /// Writer-side removal; returns the removed value if any.
    ///
    /// # Errors
    ///
    /// Writer-side heap faults are genuine errors.
    pub fn remove(&self, heap: &Heap, key: i64) -> Result<Option<i64>, Fault> {
        let table = heap.load_ref(self.root, MAP_CLASS, F_TABLE)?;
        let cap = heap.len_of(table)?;
        let idx = (spread(key) & (cap as u64 - 1)) as u32;
        let mut prev = ObjRef::NULL;
        let mut node = heap.load_ref(table, TABLE_CLASS, idx)?;
        while !node.is_null() {
            let next = heap.load_ref(node, NODE_CLASS, N_NEXT)?;
            if heap.load_i64(node, NODE_CLASS, N_KEY)? == key {
                let old = heap.load_i64(node, NODE_CLASS, N_VALUE)?;
                if prev.is_null() {
                    heap.store_ref(table, idx, next)?;
                } else {
                    heap.store_ref(prev, N_NEXT, next)?;
                }
                heap.free(node); // recycled storage → stale readers fault
                let size = heap.load_i64(self.root, MAP_CLASS, F_SIZE)? - 1;
                heap.store_i64(self.root, F_SIZE, size)?;
                return Ok(Some(old));
            }
            prev = node;
            node = next;
        }
        Ok(None)
    }

    /// Forces one rehash right now, regardless of the load factor.
    ///
    /// Scenario hook for the model checker and stress tests: a rehash
    /// window is the interesting race against speculative readers, and
    /// driving it directly keeps a model-checked schedule small instead
    /// of burning scheduling points on the inserts needed to cross the
    /// threshold. Semantically identical to a threshold-triggered
    /// resize.
    ///
    /// # Errors
    ///
    /// Writer-side heap faults are genuine errors.
    pub fn force_resize(&self, heap: &Heap) -> Result<(), Fault> {
        self.resize(heap)
    }

    /// Doubles the table, relinking every node — the operation whose
    /// races with speculative readers the recovery machinery exists for.
    fn resize(&self, heap: &Heap) -> Result<(), Fault> {
        let old_table = heap.load_ref(self.root, MAP_CLASS, F_TABLE)?;
        let old_cap = heap.len_of(old_table)?;
        let new_cap = old_cap * 2;
        let new_table = heap.alloc(TABLE_CLASS, new_cap).expect("heap exhausted");
        for b in 0..old_cap {
            let mut node = heap.load_ref(old_table, TABLE_CLASS, b)?;
            while !node.is_null() {
                let next = heap.load_ref(node, NODE_CLASS, N_NEXT)?;
                let hash = heap.load_untyped(node, N_HASH)?;
                let idx = (hash & (new_cap as u64 - 1)) as u32;
                let head = heap.load_ref(new_table, TABLE_CLASS, idx)?;
                heap.store_ref(node, N_NEXT, head)?;
                heap.store_ref(new_table, idx, node)?;
                node = next;
            }
        }
        heap.store_ref(self.root, F_TABLE, new_table)?;
        heap.store_i64(
            self.root,
            F_THRESHOLD,
            (new_cap as u64 * LOAD_FACTOR_NUM / LOAD_FACTOR_DEN) as i64,
        )?;
        heap.free(old_table);
        Ok(())
    }

    /// Collects all entries in unspecified order (read-only, checkpointed).
    ///
    /// # Errors
    ///
    /// As [`JHashMap::get`].
    pub fn entries(
        &self,
        heap: &Heap,
        ck: &mut dyn Checkpoint,
    ) -> Result<Vec<(i64, i64)>, Fault> {
        let table = heap.load_ref(self.root, MAP_CLASS, F_TABLE)?;
        let cap = heap.len_of(table)?;
        let mut out = Vec::new();
        for b in 0..cap {
            let mut node = heap.load_ref(table, TABLE_CLASS, b)?;
            while !node.is_null() {
                ck.checkpoint()?;
                out.push((
                    heap.load_i64(node, NODE_CLASS, N_KEY)?,
                    heap.load_i64(node, NODE_CLASS, N_VALUE)?,
                ));
                node = heap.load_ref(node, NODE_CLASS, N_NEXT)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::NullCheckpoint;

    fn setup() -> (Heap, JHashMap) {
        let heap = Heap::new(1 << 18);
        let map = JHashMap::new(&heap, 16).unwrap();
        (heap, map)
    }

    #[test]
    fn put_get_roundtrip() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        assert_eq!(map.put(&heap, 5, 50).unwrap(), None);
        assert_eq!(map.put(&heap, 5, 55).unwrap(), Some(50));
        assert_eq!(map.get(&heap, 5, &mut ck).unwrap(), Some(55));
        assert_eq!(map.get(&heap, 6, &mut ck).unwrap(), None);
        assert_eq!(map.len(&heap).unwrap(), 1);
    }

    #[test]
    fn remove_relinks_chain() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        for k in 0..100 {
            map.put(&heap, k, k * 10).unwrap();
        }
        for k in (0..100).step_by(2) {
            assert_eq!(map.remove(&heap, k).unwrap(), Some(k * 10));
        }
        assert_eq!(map.remove(&heap, 2).unwrap(), None);
        for k in 0..100 {
            let expect = if k % 2 == 0 { None } else { Some(k * 10) };
            assert_eq!(map.get(&heap, k, &mut ck).unwrap(), expect, "key {k}");
        }
        assert_eq!(map.len(&heap).unwrap(), 50);
    }

    #[test]
    fn resize_preserves_entries() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        for k in 0..1_000 {
            map.put(&heap, k, -k).unwrap();
        }
        for k in 0..1_000 {
            assert_eq!(map.get(&heap, k, &mut ck).unwrap(), Some(-k));
        }
        assert_eq!(map.len(&heap).unwrap(), 1_000);
    }

    #[test]
    fn entries_matches_model() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        let mut model = std::collections::BTreeMap::new();
        for k in [3, 1, 4, 1, 5, 9, 2, 6] {
            map.put(&heap, k, k * k).unwrap();
            model.insert(k, k * k);
        }
        let mut got = map.entries(&heap, &mut ck).unwrap();
        got.sort_unstable();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn negative_keys_work() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        map.put(&heap, -7, 1).unwrap();
        map.put(&heap, i64::MIN, 2).unwrap();
        map.put(&heap, i64::MAX, 3).unwrap();
        assert_eq!(map.get(&heap, -7, &mut ck).unwrap(), Some(1));
        assert_eq!(map.get(&heap, i64::MIN, &mut ck).unwrap(), Some(2));
        assert_eq!(map.get(&heap, i64::MAX, &mut ck).unwrap(), Some(3));
    }
}
