//! `JTreeMap` — a `java.util.TreeMap`-shaped red-black tree on the
//! shadow heap.
//!
//! Layout:
//!
//! ```text
//! MAP object:  [root: ref NODE, size: i64]
//! NODE object: [key, value, left, right, parent, color]  (0 red, 1 black)
//! ```
//!
//! `get`/`first_key`/`entries` are read-only and poll the validation
//! [`Checkpoint`] at every descent/walk step, so a speculatively
//! observed cycle (e.g. a rotation racing with the traversal) cannot
//! loop forever. `put`/`remove` implement the standard insertion and
//! deletion fix-ups (ported from `java.util.TreeMap`) and must run under
//! the evaluated lock.

use solero::Checkpoint;
use solero_heap::{ClassId, Fault, Heap, ObjRef};

/// Class id of the map header object.
pub const TMAP_CLASS: ClassId = ClassId::new(20);
/// Class id of tree nodes.
pub const TNODE_CLASS: ClassId = ClassId::new(21);

const F_ROOT: u32 = 0;
const F_SIZE: u32 = 1;
const MAP_FIELDS: u32 = 2;

const N_KEY: u32 = 0;
const N_VALUE: u32 = 1;
const N_LEFT: u32 = 2;
const N_RIGHT: u32 = 3;
const N_PARENT: u32 = 4;
const N_COLOR: u32 = 5;
const NODE_FIELDS: u32 = 6;

const RED: i64 = 0;
const BLACK: i64 = 1;

/// A `java.util.TreeMap<long, long>` equivalent on the shadow heap.
///
/// # Examples
///
/// ```
/// use solero::NullCheckpoint;
/// use solero_collections::JTreeMap;
/// use solero_heap::Heap;
///
/// let heap = Heap::new(1 << 16);
/// let map = JTreeMap::new(&heap).unwrap();
/// for k in [5, 1, 9, 3] {
///     map.put(&heap, k, k * 10).unwrap();
/// }
/// let mut ck = NullCheckpoint;
/// assert_eq!(map.get(&heap, 3, &mut ck).unwrap(), Some(30));
/// assert_eq!(map.first_key(&heap, &mut ck).unwrap(), Some(1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct JTreeMap {
    root_obj: ObjRef,
}

impl JTreeMap {
    /// Creates an empty map.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the map header.
    pub fn new(heap: &Heap) -> Result<Self, Fault> {
        let root_obj = heap.alloc(TMAP_CLASS, MAP_FIELDS).expect("heap exhausted");
        heap.store_ref(root_obj, F_ROOT, ObjRef::NULL)?;
        heap.store_i64(root_obj, F_SIZE, 0)?;
        Ok(JTreeMap { root_obj })
    }

    /// The heap object anchoring this map.
    pub fn root(&self) -> ObjRef {
        self.root_obj
    }

    /// Number of entries.
    ///
    /// # Errors
    ///
    /// Heap faults on stale speculation.
    pub fn len(&self, heap: &Heap) -> Result<usize, Fault> {
        Ok(heap.load_i64(self.root_obj, TMAP_CLASS, F_SIZE)?.max(0) as usize)
    }

    /// True if the map holds no entries.
    ///
    /// # Errors
    ///
    /// Heap faults on stale speculation.
    pub fn is_empty(&self, heap: &Heap) -> Result<bool, Fault> {
        Ok(self.len(heap)? == 0)
    }

    // ---- read-only operations -------------------------------------

    /// Read-only lookup; descends the tree polling `ck` per step.
    ///
    /// # Errors
    ///
    /// Heap faults and [`Fault::Inconsistent`] from the check-point;
    /// under a SOLERO read section these trigger re-execution.
    pub fn get(
        &self,
        heap: &Heap,
        key: i64,
        ck: &mut dyn Checkpoint,
    ) -> Result<Option<i64>, Fault> {
        let mut n = heap.load_ref(self.root_obj, TMAP_CLASS, F_ROOT)?;
        while !n.is_null() {
            ck.checkpoint()?;
            let k = heap.load_i64(n, TNODE_CLASS, N_KEY)?;
            n = match key.cmp(&k) {
                std::cmp::Ordering::Less => heap.load_ref(n, TNODE_CLASS, N_LEFT)?,
                std::cmp::Ordering::Greater => heap.load_ref(n, TNODE_CLASS, N_RIGHT)?,
                std::cmp::Ordering::Equal => {
                    return Ok(Some(heap.load_i64(n, TNODE_CLASS, N_VALUE)?))
                }
            };
        }
        Ok(None)
    }

    /// True if `key` is present (read-only).
    ///
    /// # Errors
    ///
    /// As [`JTreeMap::get`].
    pub fn contains_key(
        &self,
        heap: &Heap,
        key: i64,
        ck: &mut dyn Checkpoint,
    ) -> Result<bool, Fault> {
        Ok(self.get(heap, key, ck)?.is_some())
    }

    /// Smallest key, if any (read-only).
    ///
    /// # Errors
    ///
    /// As [`JTreeMap::get`].
    pub fn first_key(&self, heap: &Heap, ck: &mut dyn Checkpoint) -> Result<Option<i64>, Fault> {
        let mut n = heap.load_ref(self.root_obj, TMAP_CLASS, F_ROOT)?;
        if n.is_null() {
            return Ok(None);
        }
        loop {
            ck.checkpoint()?;
            let l = heap.load_ref(n, TNODE_CLASS, N_LEFT)?;
            if l.is_null() {
                return Ok(Some(heap.load_i64(n, TNODE_CLASS, N_KEY)?));
            }
            n = l;
        }
    }

    /// Largest key `<= key`, if any (read-only floor query).
    ///
    /// # Errors
    ///
    /// As [`JTreeMap::get`].
    pub fn floor_key(
        &self,
        heap: &Heap,
        key: i64,
        ck: &mut dyn Checkpoint,
    ) -> Result<Option<i64>, Fault> {
        let mut n = heap.load_ref(self.root_obj, TMAP_CLASS, F_ROOT)?;
        let mut best = None;
        while !n.is_null() {
            ck.checkpoint()?;
            let k = heap.load_i64(n, TNODE_CLASS, N_KEY)?;
            match key.cmp(&k) {
                std::cmp::Ordering::Less => n = heap.load_ref(n, TNODE_CLASS, N_LEFT)?,
                std::cmp::Ordering::Equal => return Ok(Some(k)),
                std::cmp::Ordering::Greater => {
                    best = Some(k);
                    n = heap.load_ref(n, TNODE_CLASS, N_RIGHT)?;
                }
            }
        }
        Ok(best)
    }

    /// Collects all entries in key order (read-only in-order walk).
    ///
    /// # Errors
    ///
    /// As [`JTreeMap::get`].
    pub fn entries(
        &self,
        heap: &Heap,
        ck: &mut dyn Checkpoint,
    ) -> Result<Vec<(i64, i64)>, Fault> {
        let mut out = Vec::new();
        // Iterative in-order walk with an explicit stack (the tree is on
        // the shadow heap; the stack is ordinary Rust memory).
        let mut stack = Vec::new();
        let mut n = heap.load_ref(self.root_obj, TMAP_CLASS, F_ROOT)?;
        loop {
            ck.checkpoint()?;
            if !n.is_null() {
                stack.push(n);
                n = heap.load_ref(n, TNODE_CLASS, N_LEFT)?;
            } else if let Some(top) = stack.pop() {
                out.push((
                    heap.load_i64(top, TNODE_CLASS, N_KEY)?,
                    heap.load_i64(top, TNODE_CLASS, N_VALUE)?,
                ));
                n = heap.load_ref(top, TNODE_CLASS, N_RIGHT)?;
            } else {
                break;
            }
            // A speculative cycle could grow the stack without bound;
            // bound it by the only thing that can be this deep.
            if stack.len() > 1_000_000 {
                return Err(Fault::Inconsistent);
            }
        }
        Ok(out)
    }

    // ---- writer-side helpers (null-safe, as in java.util.TreeMap) --

    fn tree_root(&self, heap: &Heap) -> Result<ObjRef, Fault> {
        heap.load_ref(self.root_obj, TMAP_CLASS, F_ROOT)
    }

    fn set_tree_root(&self, heap: &Heap, n: ObjRef) -> Result<(), Fault> {
        heap.store_ref(self.root_obj, F_ROOT, n)
    }

    fn key(heap: &Heap, n: ObjRef) -> Result<i64, Fault> {
        heap.load_i64(n, TNODE_CLASS, N_KEY)
    }

    fn left_of(heap: &Heap, n: ObjRef) -> Result<ObjRef, Fault> {
        if n.is_null() {
            Ok(ObjRef::NULL)
        } else {
            heap.load_ref(n, TNODE_CLASS, N_LEFT)
        }
    }

    fn right_of(heap: &Heap, n: ObjRef) -> Result<ObjRef, Fault> {
        if n.is_null() {
            Ok(ObjRef::NULL)
        } else {
            heap.load_ref(n, TNODE_CLASS, N_RIGHT)
        }
    }

    fn parent_of(heap: &Heap, n: ObjRef) -> Result<ObjRef, Fault> {
        if n.is_null() {
            Ok(ObjRef::NULL)
        } else {
            heap.load_ref(n, TNODE_CLASS, N_PARENT)
        }
    }

    fn color_of(heap: &Heap, n: ObjRef) -> Result<i64, Fault> {
        if n.is_null() {
            Ok(BLACK)
        } else {
            heap.load_i64(n, TNODE_CLASS, N_COLOR)
        }
    }

    fn set_color(heap: &Heap, n: ObjRef, c: i64) -> Result<(), Fault> {
        if !n.is_null() {
            heap.store_i64(n, N_COLOR, c)?;
        }
        Ok(())
    }

    fn set_left(heap: &Heap, n: ObjRef, v: ObjRef) -> Result<(), Fault> {
        heap.store_ref(n, N_LEFT, v)
    }

    fn set_right(heap: &Heap, n: ObjRef, v: ObjRef) -> Result<(), Fault> {
        heap.store_ref(n, N_RIGHT, v)
    }

    fn set_parent(heap: &Heap, n: ObjRef, v: ObjRef) -> Result<(), Fault> {
        heap.store_ref(n, N_PARENT, v)
    }

    fn rotate_left(&self, heap: &Heap, p: ObjRef) -> Result<(), Fault> {
        if p.is_null() {
            return Ok(());
        }
        let r = Self::right_of(heap, p)?;
        let rl = Self::left_of(heap, r)?;
        Self::set_right(heap, p, rl)?;
        if !rl.is_null() {
            Self::set_parent(heap, rl, p)?;
        }
        let pp = Self::parent_of(heap, p)?;
        Self::set_parent(heap, r, pp)?;
        if pp.is_null() {
            self.set_tree_root(heap, r)?;
        } else if Self::left_of(heap, pp)? == p {
            Self::set_left(heap, pp, r)?;
        } else {
            Self::set_right(heap, pp, r)?;
        }
        Self::set_left(heap, r, p)?;
        Self::set_parent(heap, p, r)?;
        Ok(())
    }

    fn rotate_right(&self, heap: &Heap, p: ObjRef) -> Result<(), Fault> {
        if p.is_null() {
            return Ok(());
        }
        let l = Self::left_of(heap, p)?;
        let lr = Self::right_of(heap, l)?;
        Self::set_left(heap, p, lr)?;
        if !lr.is_null() {
            Self::set_parent(heap, lr, p)?;
        }
        let pp = Self::parent_of(heap, p)?;
        Self::set_parent(heap, l, pp)?;
        if pp.is_null() {
            self.set_tree_root(heap, l)?;
        } else if Self::right_of(heap, pp)? == p {
            Self::set_right(heap, pp, l)?;
        } else {
            Self::set_left(heap, pp, l)?;
        }
        Self::set_right(heap, l, p)?;
        Self::set_parent(heap, p, l)?;
        Ok(())
    }

    // ---- writer-side operations ------------------------------------

    /// Writer-side insert; returns the previous value if any. Must run
    /// under the evaluated lock.
    ///
    /// # Errors
    ///
    /// Writer-side heap faults are genuine errors.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn put(&self, heap: &Heap, key: i64, value: i64) -> Result<Option<i64>, Fault> {
        let mut t = self.tree_root(heap)?;
        if t.is_null() {
            let n = self.new_node(heap, key, value, ObjRef::NULL)?;
            Self::set_color(heap, n, BLACK)?;
            self.set_tree_root(heap, n)?;
            heap.store_i64(self.root_obj, F_SIZE, 1)?;
            return Ok(None);
        }
        let parent;
        loop {
            let k = Self::key(heap, t)?;
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => {
                    let old = heap.load_i64(t, TNODE_CLASS, N_VALUE)?;
                    heap.store_i64(t, N_VALUE, value)?;
                    return Ok(Some(old));
                }
                std::cmp::Ordering::Less => {
                    let l = Self::left_of(heap, t)?;
                    if l.is_null() {
                        parent = t;
                        break;
                    }
                    t = l;
                }
                std::cmp::Ordering::Greater => {
                    let r = Self::right_of(heap, t)?;
                    if r.is_null() {
                        parent = t;
                        break;
                    }
                    t = r;
                }
            }
        }
        let n = self.new_node(heap, key, value, parent)?;
        if key < Self::key(heap, parent)? {
            Self::set_left(heap, parent, n)?;
        } else {
            Self::set_right(heap, parent, n)?;
        }
        self.fix_after_insertion(heap, n)?;
        let size = heap.load_i64(self.root_obj, TMAP_CLASS, F_SIZE)? + 1;
        heap.store_i64(self.root_obj, F_SIZE, size)?;
        Ok(None)
    }

    fn new_node(
        &self,
        heap: &Heap,
        key: i64,
        value: i64,
        parent: ObjRef,
    ) -> Result<ObjRef, Fault> {
        let n = heap.alloc(TNODE_CLASS, NODE_FIELDS).expect("heap exhausted");
        heap.store_i64(n, N_KEY, key)?;
        heap.store_i64(n, N_VALUE, value)?;
        heap.store_ref(n, N_LEFT, ObjRef::NULL)?;
        heap.store_ref(n, N_RIGHT, ObjRef::NULL)?;
        heap.store_ref(n, N_PARENT, parent)?;
        heap.store_i64(n, N_COLOR, RED)?;
        Ok(n)
    }

    fn fix_after_insertion(&self, heap: &Heap, mut x: ObjRef) -> Result<(), Fault> {
        Self::set_color(heap, x, RED)?;
        while !x.is_null() {
            let p = Self::parent_of(heap, x)?;
            if p.is_null() || Self::color_of(heap, p)? != RED {
                break;
            }
            let g = Self::parent_of(heap, p)?;
            if p == Self::left_of(heap, g)? {
                let y = Self::right_of(heap, g)?;
                if Self::color_of(heap, y)? == RED {
                    Self::set_color(heap, p, BLACK)?;
                    Self::set_color(heap, y, BLACK)?;
                    Self::set_color(heap, g, RED)?;
                    x = g;
                } else {
                    if x == Self::right_of(heap, p)? {
                        x = p;
                        self.rotate_left(heap, x)?;
                    }
                    let p = Self::parent_of(heap, x)?;
                    let g = Self::parent_of(heap, p)?;
                    Self::set_color(heap, p, BLACK)?;
                    Self::set_color(heap, g, RED)?;
                    self.rotate_right(heap, g)?;
                }
            } else {
                let y = Self::left_of(heap, g)?;
                if Self::color_of(heap, y)? == RED {
                    Self::set_color(heap, p, BLACK)?;
                    Self::set_color(heap, y, BLACK)?;
                    Self::set_color(heap, g, RED)?;
                    x = g;
                } else {
                    if x == Self::left_of(heap, p)? {
                        x = p;
                        self.rotate_right(heap, x)?;
                    }
                    let p = Self::parent_of(heap, x)?;
                    let g = Self::parent_of(heap, p)?;
                    Self::set_color(heap, p, BLACK)?;
                    Self::set_color(heap, g, RED)?;
                    self.rotate_left(heap, g)?;
                }
            }
        }
        let root = self.tree_root(heap)?;
        Self::set_color(heap, root, BLACK)?;
        Ok(())
    }

    /// Writer-side removal; returns the removed value if any.
    ///
    /// # Errors
    ///
    /// Writer-side heap faults are genuine errors.
    pub fn remove(&self, heap: &Heap, key: i64) -> Result<Option<i64>, Fault> {
        // Locate the node (writer-side: no checkpoints needed).
        let mut p = self.tree_root(heap)?;
        while !p.is_null() {
            let k = Self::key(heap, p)?;
            match key.cmp(&k) {
                std::cmp::Ordering::Less => p = Self::left_of(heap, p)?,
                std::cmp::Ordering::Greater => p = Self::right_of(heap, p)?,
                std::cmp::Ordering::Equal => break,
            }
        }
        if p.is_null() {
            return Ok(None);
        }
        let old = heap.load_i64(p, TNODE_CLASS, N_VALUE)?;
        self.delete_entry(heap, p)?;
        let size = heap.load_i64(self.root_obj, TMAP_CLASS, F_SIZE)? - 1;
        heap.store_i64(self.root_obj, F_SIZE, size)?;
        Ok(Some(old))
    }

    /// `java.util.TreeMap.deleteEntry`, ported.
    fn delete_entry(&self, heap: &Heap, mut p: ObjRef) -> Result<(), Fault> {
        // If strictly internal, copy successor's element to p, then make
        // p point to successor.
        if !Self::left_of(heap, p)?.is_null() && !Self::right_of(heap, p)?.is_null() {
            let mut s = Self::right_of(heap, p)?;
            loop {
                let l = Self::left_of(heap, s)?;
                if l.is_null() {
                    break;
                }
                s = l;
            }
            heap.store_i64(p, N_KEY, Self::key(heap, s)?)?;
            heap.store_i64(p, N_VALUE, heap.load_i64(s, TNODE_CLASS, N_VALUE)?)?;
            p = s;
        }
        // Start fixup at replacement node, if it exists.
        let left = Self::left_of(heap, p)?;
        let replacement = if !left.is_null() {
            left
        } else {
            Self::right_of(heap, p)?
        };
        if !replacement.is_null() {
            // Link replacement to parent.
            let pp = Self::parent_of(heap, p)?;
            Self::set_parent(heap, replacement, pp)?;
            if pp.is_null() {
                self.set_tree_root(heap, replacement)?;
            } else if p == Self::left_of(heap, pp)? {
                Self::set_left(heap, pp, replacement)?;
            } else {
                Self::set_right(heap, pp, replacement)?;
            }
            if Self::color_of(heap, p)? == BLACK {
                self.fix_after_deletion(heap, replacement)?;
            }
        } else if Self::parent_of(heap, p)?.is_null() {
            // Sole node.
            self.set_tree_root(heap, ObjRef::NULL)?;
        } else {
            // No children: use self as phantom replacement.
            if Self::color_of(heap, p)? == BLACK {
                self.fix_after_deletion(heap, p)?;
            }
            let pp = Self::parent_of(heap, p)?;
            if !pp.is_null() {
                if p == Self::left_of(heap, pp)? {
                    Self::set_left(heap, pp, ObjRef::NULL)?;
                } else if p == Self::right_of(heap, pp)? {
                    Self::set_right(heap, pp, ObjRef::NULL)?;
                }
            }
        }
        heap.free(p); // recycled storage → stale readers fault
        Ok(())
    }

    /// `java.util.TreeMap.fixAfterDeletion`, ported (null-safe helpers
    /// treat null as black, exactly as Java's static accessors do).
    fn fix_after_deletion(&self, heap: &Heap, mut x: ObjRef) -> Result<(), Fault> {
        while x != self.tree_root(heap)? && Self::color_of(heap, x)? == BLACK {
            let p = Self::parent_of(heap, x)?;
            if x == Self::left_of(heap, p)? {
                let mut sib = Self::right_of(heap, p)?;
                if Self::color_of(heap, sib)? == RED {
                    Self::set_color(heap, sib, BLACK)?;
                    Self::set_color(heap, p, RED)?;
                    self.rotate_left(heap, p)?;
                    sib = Self::right_of(heap, Self::parent_of(heap, x)?)?;
                }
                if Self::color_of(heap, Self::left_of(heap, sib)?)? == BLACK
                    && Self::color_of(heap, Self::right_of(heap, sib)?)? == BLACK
                {
                    Self::set_color(heap, sib, RED)?;
                    x = Self::parent_of(heap, x)?;
                } else {
                    if Self::color_of(heap, Self::right_of(heap, sib)?)? == BLACK {
                        Self::set_color(heap, Self::left_of(heap, sib)?, BLACK)?;
                        Self::set_color(heap, sib, RED)?;
                        self.rotate_right(heap, sib)?;
                        sib = Self::right_of(heap, Self::parent_of(heap, x)?)?;
                    }
                    let p = Self::parent_of(heap, x)?;
                    Self::set_color(heap, sib, Self::color_of(heap, p)?)?;
                    Self::set_color(heap, p, BLACK)?;
                    Self::set_color(heap, Self::right_of(heap, sib)?, BLACK)?;
                    self.rotate_left(heap, p)?;
                    x = self.tree_root(heap)?;
                }
            } else {
                // Symmetric.
                let mut sib = Self::left_of(heap, p)?;
                if Self::color_of(heap, sib)? == RED {
                    Self::set_color(heap, sib, BLACK)?;
                    Self::set_color(heap, p, RED)?;
                    self.rotate_right(heap, p)?;
                    sib = Self::left_of(heap, Self::parent_of(heap, x)?)?;
                }
                if Self::color_of(heap, Self::right_of(heap, sib)?)? == BLACK
                    && Self::color_of(heap, Self::left_of(heap, sib)?)? == BLACK
                {
                    Self::set_color(heap, sib, RED)?;
                    x = Self::parent_of(heap, x)?;
                } else {
                    if Self::color_of(heap, Self::left_of(heap, sib)?)? == BLACK {
                        Self::set_color(heap, Self::right_of(heap, sib)?, BLACK)?;
                        Self::set_color(heap, sib, RED)?;
                        self.rotate_left(heap, sib)?;
                        sib = Self::left_of(heap, Self::parent_of(heap, x)?)?;
                    }
                    let p = Self::parent_of(heap, x)?;
                    Self::set_color(heap, sib, Self::color_of(heap, p)?)?;
                    Self::set_color(heap, p, BLACK)?;
                    Self::set_color(heap, Self::left_of(heap, sib)?, BLACK)?;
                    self.rotate_right(heap, p)?;
                    x = self.tree_root(heap)?;
                }
            }
        }
        Self::set_color(heap, x, BLACK)?;
        Ok(())
    }

    // ---- invariant checking (tests/diagnostics) --------------------

    /// Verifies the red-black invariants; returns the black-height.
    ///
    /// Writer-side diagnostic used by the tests and property checks.
    ///
    /// # Errors
    ///
    /// Heap faults, or [`Fault::Inconsistent`] if an invariant is
    /// violated.
    pub fn check_invariants(&self, heap: &Heap) -> Result<u32, Fault> {
        let root = self.tree_root(heap)?;
        if root.is_null() {
            return Ok(0);
        }
        if Self::color_of(heap, root)? != BLACK {
            return Err(Fault::Inconsistent);
        }
        self.check_node(heap, root, i64::MIN, i64::MAX)
    }

    fn check_node(&self, heap: &Heap, n: ObjRef, lo: i64, hi: i64) -> Result<u32, Fault> {
        if n.is_null() {
            return Ok(1); // null leaves are black
        }
        let k = Self::key(heap, n)?;
        if k < lo || k > hi {
            return Err(Fault::Inconsistent); // BST order violated
        }
        let c = Self::color_of(heap, n)?;
        let l = Self::left_of(heap, n)?;
        let r = Self::right_of(heap, n)?;
        if c == RED
            && (Self::color_of(heap, l)? == RED || Self::color_of(heap, r)? == RED)
        {
            return Err(Fault::Inconsistent); // red-red violation
        }
        // Parent pointers must be consistent.
        if !l.is_null() && Self::parent_of(heap, l)? != n {
            return Err(Fault::Inconsistent);
        }
        if !r.is_null() && Self::parent_of(heap, r)? != n {
            return Err(Fault::Inconsistent);
        }
        let hl = self.check_node(heap, l, lo, k.saturating_sub(1))?;
        let hr = self.check_node(heap, r, k.saturating_add(1), hi)?;
        if hl != hr {
            return Err(Fault::Inconsistent); // black-height mismatch
        }
        Ok(hl + if c == BLACK { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::NullCheckpoint;

    fn setup() -> (Heap, JTreeMap) {
        let heap = Heap::new(1 << 18);
        let map = JTreeMap::new(&heap).unwrap();
        (heap, map)
    }

    #[test]
    fn put_get_ordered() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        for k in [50, 20, 70, 10, 30, 60, 80] {
            map.put(&heap, k, k * 2).unwrap();
        }
        for k in [50, 20, 70, 10, 30, 60, 80] {
            assert_eq!(map.get(&heap, k, &mut ck).unwrap(), Some(k * 2));
        }
        assert_eq!(map.get(&heap, 55, &mut ck).unwrap(), None);
        assert_eq!(map.first_key(&heap, &mut ck).unwrap(), Some(10));
        map.check_invariants(&heap).unwrap();
    }

    #[test]
    fn overwrite_returns_old() {
        let (heap, map) = setup();
        assert_eq!(map.put(&heap, 1, 10).unwrap(), None);
        assert_eq!(map.put(&heap, 1, 11).unwrap(), Some(10));
        assert_eq!(map.len(&heap).unwrap(), 1);
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        for k in 0..1_000 {
            map.put(&heap, k, -k).unwrap();
        }
        let bh = map.check_invariants(&heap).unwrap();
        // A red-black tree of 1000 nodes has black-height ≤ ~2·log2(n)/2.
        assert!(bh >= 5 && bh <= 11, "black height {bh}");
        assert_eq!(map.first_key(&heap, &mut ck).unwrap(), Some(0));
        let es = map.entries(&heap, &mut ck).unwrap();
        assert_eq!(es.len(), 1_000);
        assert!(es.windows(2).all(|w| w[0].0 < w[1].0), "in-order walk sorted");
    }

    #[test]
    fn remove_all_permutations_of_small_sets() {
        // Exhaustively delete in every order from a 6-element tree.
        fn permutations(v: &mut Vec<i64>, k: usize, out: &mut Vec<Vec<i64>>) {
            if k == v.len() {
                out.push(v.clone());
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permutations(v, k + 1, out);
                v.swap(k, i);
            }
        }
        let mut orders = Vec::new();
        permutations(&mut vec![1, 2, 3, 4, 5, 6], 0, &mut orders);
        for order in orders {
            let (heap, map) = setup();
            for k in [4, 2, 6, 1, 3, 5] {
                map.put(&heap, k, k).unwrap();
            }
            for (i, &k) in order.iter().enumerate() {
                assert_eq!(map.remove(&heap, k).unwrap(), Some(k), "order {order:?}");
                map.check_invariants(&heap)
                    .unwrap_or_else(|e| panic!("invariants after removing {k} in {order:?}: {e}"));
                assert_eq!(map.len(&heap).unwrap(), 6 - i - 1);
            }
            assert!(map.is_empty(&heap).unwrap());
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let (heap, map) = setup();
        map.put(&heap, 5, 5).unwrap();
        assert_eq!(map.remove(&heap, 9).unwrap(), None);
        assert_eq!(map.len(&heap).unwrap(), 1);
    }

    #[test]
    fn floor_queries() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        for k in [10, 20, 30] {
            map.put(&heap, k, k).unwrap();
        }
        assert_eq!(map.floor_key(&heap, 25, &mut ck).unwrap(), Some(20));
        assert_eq!(map.floor_key(&heap, 30, &mut ck).unwrap(), Some(30));
        assert_eq!(map.floor_key(&heap, 5, &mut ck).unwrap(), None);
    }

    #[test]
    fn interleaved_insert_delete_matches_model() {
        let (heap, map) = setup();
        let mut ck = NullCheckpoint;
        let mut model = std::collections::BTreeMap::new();
        // Deterministic pseudo-random sequence.
        let mut state = 0x12345678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            let k = (next() % 200) as i64;
            match next() % 3 {
                0 | 1 => {
                    let got = map.put(&heap, k, k * 7).unwrap();
                    let want = model.insert(k, k * 7);
                    assert_eq!(got, want);
                }
                _ => {
                    let got = map.remove(&heap, k).unwrap();
                    let want = model.remove(&k);
                    assert_eq!(got, want);
                }
            }
        }
        map.check_invariants(&heap).unwrap();
        let got = map.entries(&heap, &mut ck).unwrap();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
    }
}
