//! Profile-guided demotion from a prior run's observability export.
//!
//! [`crate::profile`] adapts plans to *intra-method* behaviour (which
//! blocks are cold). This module closes the loop one level up: a
//! previous run's `solero-obs` JSONL export says how each *lock*
//! actually behaved — how often it was written, how often speculative
//! readers aborted — and a statically read-only region on a lock that
//! the profile shows to be write-hot is better compiled conventionally
//! than left to abort its way to the fallback path at runtime.
//!
//! The pipeline:
//!
//! 1. run a workload with the `trace` feature and export JSONL
//!    (`solero_workloads::driver::export_obs`);
//! 2. [`ObsProfile::parse`] the export — every line is validated
//!    against the [`solero_obs::schema`] used by the `obs_check` CI
//!    binary, and a malformed line is an **error carrying its line
//!    number**, never silently skipped (a truncated profile that loses
//!    its write events would otherwise quietly demote nothing);
//! 3. [`ObsProfile::write_heavy`] names the offending locks;
//! 4. [`crate::lower::ProgramPlan::demote_locks`] flips their regions
//!    to [`crate::lower::LockPlan::Conventional`].

use std::collections::{BTreeMap, BTreeSet};

use solero_obs::json::{parse, Value};
use solero_obs::schema::validate_line;

use crate::ir::LockId;

/// What one lock did during the profiled run, aggregated from `event`
/// lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockActivity {
    /// `write_acquire` events: real writing sections.
    pub writes: u64,
    /// `elision_attempt` events: speculative read-only entries.
    pub elisions: u64,
    /// `abort` events: speculation that failed, any reason.
    pub aborts: u64,
    /// `mostly_upgrade` events: read-mostly sections that did write.
    pub upgrades: u64,
}

impl LockActivity {
    /// Sections that touched the lock word for real: writes plus
    /// in-place upgrades.
    pub fn writing_sections(&self) -> u64 {
        self.writes + self.upgrades
    }

    /// All section entries the profile attributes to this lock.
    pub fn entries(&self) -> u64 {
        self.writes + self.upgrades + self.elisions
    }
}

/// A parsed, schema-validated observability export, aggregated per
/// lock.
#[derive(Debug, Clone, Default)]
pub struct ObsProfile {
    locks: BTreeMap<LockId, LockActivity>,
}

impl ObsProfile {
    /// Parses a JSONL export.
    ///
    /// Non-`event` lines (`meta`, `abort_summary`, `hist`) are
    /// validated but contribute nothing; blank lines are permitted.
    ///
    /// # Errors
    ///
    /// The first line that fails [`validate_line`], as
    /// `"line N: <why>"`. Rejecting instead of skipping is deliberate:
    /// a corrupt profile must not masquerade as a quiet one.
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut locks: BTreeMap<LockId, LockActivity> = BTreeMap::new();
        for (i, raw) in input.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            // validate_line parsed it once already; a second parse keeps
            // this module decoupled from the validator's internals.
            let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let o = v.as_obj().expect("validated lines are objects");
            if o.get("type").and_then(Value::as_str) != Some("event") {
                continue;
            }
            let lock = o
                .get("lock")
                .and_then(Value::as_num)
                .expect("validated events carry a numeric lock") as LockId;
            let kind = o
                .get("kind")
                .and_then(Value::as_str)
                .expect("validated events carry a kind");
            let a = locks.entry(lock).or_default();
            match kind {
                "write_acquire" => a.writes += 1,
                "elision_attempt" => a.elisions += 1,
                "abort" => a.aborts += 1,
                "mostly_upgrade" => a.upgrades += 1,
                // Releases, read acquires and fallback acquires shape
                // no demotion decision.
                _ => {}
            }
        }
        Ok(ObsProfile { locks })
    }

    /// The recorded activity for `lock`, if the profile saw it at all.
    pub fn activity(&self, lock: LockId) -> Option<&LockActivity> {
        self.locks.get(&lock)
    }

    /// Locks the profile shows to be poor elision candidates: at least
    /// `min_entries` recorded section entries, of which at least
    /// `write_fraction` were writing sections (writes + upgrades).
    ///
    /// Locks below `min_entries` are never demoted — a profile that
    /// barely saw a lock has no standing to disable its elision.
    pub fn write_heavy(&self, min_entries: u64, write_fraction: f64) -> BTreeSet<LockId> {
        self.locks
            .iter()
            .filter(|(_, a)| {
                let entries = a.entries();
                entries >= min_entries.max(1)
                    && a.writing_sections() as f64 >= write_fraction * entries as f64
            })
            .map(|(&l, _)| l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero_obs::json::JsonObject;

    fn event(lock: u64, kind: &str) -> String {
        let mut o = JsonObject::new()
            .str("type", "event")
            .num("ts_ns", 1)
            .num("thread", 0)
            .num("lock", lock)
            .str("kind", kind);
        if kind == "abort" {
            o = o.str("reason", "locked_at_entry");
        }
        o.finish()
    }

    #[test]
    fn aggregates_events_per_lock() {
        let lines = [
            event(3, "write_acquire"),
            event(3, "write_release"),
            event(3, "elision_attempt"),
            event(3, "abort"),
            event(9, "elision_attempt"),
            event(9, "mostly_upgrade"),
        ]
        .join("\n");
        let p = ObsProfile::parse(&lines).unwrap();
        let a3 = p.activity(3).unwrap();
        assert_eq!(
            (a3.writes, a3.elisions, a3.aborts, a3.upgrades),
            (1, 1, 1, 0)
        );
        let a9 = p.activity(9).unwrap();
        assert_eq!(a9.upgrades, 1);
        assert_eq!(a9.writing_sections(), 1);
        assert!(p.activity(4).is_none());
    }

    #[test]
    fn malformed_line_is_an_error_with_its_number() {
        let lines = format!("{}\nnot json at all\n", event(1, "release"));
        let err = ObsProfile::parse(&lines).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");

        // Schema violations are rejected too, not just parse failures.
        let bad = r#"{"type":"event","ts_ns":1,"thread":0,"lock":2,"kind":"abort"}"#;
        let err = ObsProfile::parse(bad).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn blank_lines_and_non_event_lines_are_fine() {
        let lines = format!(
            "{}\n\n{}\n",
            JsonObject::new()
                .str("type", "meta")
                .num("version", 1)
                .num("threads", 2)
                .num("events_recorded", 0)
                .num("events_retained", 0)
                .finish(),
            event(5, "elision_attempt"),
        );
        let p = ObsProfile::parse(&lines).unwrap();
        assert_eq!(p.activity(5).unwrap().elisions, 1);
    }

    #[test]
    fn write_heavy_applies_both_thresholds() {
        let mut lines = Vec::new();
        // Lock 1: 8 writes, 2 elisions — write-heavy.
        for _ in 0..8 {
            lines.push(event(1, "write_acquire"));
        }
        for _ in 0..2 {
            lines.push(event(1, "elision_attempt"));
        }
        // Lock 2: 1 write, 99 elisions — read-dominated.
        lines.push(event(2, "write_acquire"));
        for _ in 0..99 {
            lines.push(event(2, "elision_attempt"));
        }
        // Lock 3: 2 writes, nothing else — but under min_entries.
        lines.push(event(3, "write_acquire"));
        lines.push(event(3, "write_acquire"));
        let p = ObsProfile::parse(&lines.join("\n")).unwrap();
        let heavy = p.write_heavy(5, 0.5);
        assert!(heavy.contains(&1));
        assert!(!heavy.contains(&2));
        assert!(!heavy.contains(&3), "too few entries to judge");
    }
}
