//! Live-variable analysis.
//!
//! The read-only classification forbids writes to locals that are
//! **live at region entry** (paper §3.2): restoring such locals after a
//! failed speculative execution would require checkpointing them. The
//! classifier asks this module which locals are live at the
//! `monitorenter` point; a def of any of them inside the region
//! disqualifies it.
//!
//! Standard backward may-liveness over the CFG, to a fixed point.

use std::collections::HashSet;

use crate::ir::{LocalId, Method, Point, Terminator};

/// Per-block live-in/live-out sets for one method.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<LocalId>>,
    live_out: Vec<HashSet<LocalId>>,
}

fn term_uses(t: &Terminator) -> Vec<LocalId> {
    match t {
        Terminator::Jump(_) => vec![],
        Terminator::Branch { lhs, rhs, .. } => vec![*lhs, *rhs],
        Terminator::Return(v) => v.iter().copied().collect(),
    }
}

impl Liveness {
    /// Computes liveness for `m`.
    pub fn compute(m: &Method) -> Self {
        let n = m.blocks.len();
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        // Precompute per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![HashSet::new(); n];
        let mut kill = vec![HashSet::new(); n];
        for (bi, b) in m.blocks.iter().enumerate() {
            let mut defined: HashSet<LocalId> = HashSet::new();
            for i in &b.insts {
                for u in i.uses() {
                    if !defined.contains(&u) {
                        gen[bi].insert(u);
                    }
                }
                if let Some(d) = i.def() {
                    defined.insert(d);
                    kill[bi].insert(d);
                }
            }
            for u in term_uses(&b.term) {
                if !defined.contains(&u) {
                    gen[bi].insert(u);
                }
            }
        }
        // Iterate to fixpoint (small methods; simplicity over speed).
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let mut out: HashSet<LocalId> = HashSet::new();
                for s in m.blocks[bi].term.successors() {
                    out.extend(live_in[s as usize].iter().copied());
                }
                let mut inn = gen[bi].clone();
                for &v in &out {
                    if !kill[bi].contains(&v) {
                        inn.insert(v);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Locals live on entry to a block.
    pub fn live_in(&self, block: u32) -> &HashSet<LocalId> {
        &self.live_in[block as usize]
    }

    /// Locals live on exit from a block.
    pub fn live_out(&self, block: u32) -> &HashSet<LocalId> {
        &self.live_out[block as usize]
    }

    /// Locals live immediately **before** executing the instruction at
    /// `p` (the terminator when `p.inst == insts.len()`).
    pub fn live_at(&self, m: &Method, p: Point) -> HashSet<LocalId> {
        let b = m.block(p.block);
        let mut live = self.live_out[p.block as usize].clone();
        // Walk the block backward from the end to the point.
        for u in term_uses(&b.term) {
            live.insert(u);
        }
        for idx in (p.inst..b.insts.len()).rev() {
            let i = &b.insts[idx];
            if let Some(d) = i.def() {
                live.remove(&d);
            }
            for u in i.uses() {
                live.insert(u);
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::ir::{BinOp, Cmp};

    #[test]
    fn straight_line_liveness() {
        // a = 1; b = a + a; return b   — `a` dead after the binop.
        let mut mb = MethodBuilder::new("sl", 0);
        let a = mb.fresh_local();
        let b = mb.fresh_local();
        mb.constant(a, 1).binop(BinOp::Add, b, a, a).ret(Some(b));
        let m = mb.finish();
        let lv = Liveness::compute(&m);
        assert!(lv.live_in(0).is_empty(), "nothing live at method entry");
        // Before the binop, `a` is live:
        let at_binop = lv.live_at(&m, Point { block: 0, inst: 1 });
        assert!(at_binop.contains(&a));
        assert!(!at_binop.contains(&b));
        // Before the return, only `b`:
        let at_ret = lv.live_at(&m, Point { block: 0, inst: 2 });
        assert!(at_ret.contains(&b));
        assert!(!at_ret.contains(&a));
    }

    #[test]
    fn loop_carried_variable_is_live() {
        // i = 0; while (i < n) { i = i + 1 } return i
        let mut mb = MethodBuilder::new("loopy", 1);
        let n = 0;
        let i = mb.fresh_local();
        let one = mb.fresh_local();
        mb.constant(i, 0).constant(one, 1);
        let head = mb.new_block();
        let body = mb.new_block();
        let done = mb.new_block();
        mb.jump(head);
        mb.switch_to(head).branch(i, Cmp::Lt, n, body, done);
        mb.switch_to(body).binop(BinOp::Add, i, i, one).jump(head);
        mb.switch_to(done).ret(Some(i));
        let m = mb.finish();
        let lv = Liveness::compute(&m);
        // At the loop head, i, n, and one are all live.
        assert!(lv.live_in(1).contains(&i));
        assert!(lv.live_in(1).contains(&n));
        assert!(lv.live_in(1).contains(&one));
        // At method entry only n (a parameter read later) is live.
        assert!(lv.live_in(0).contains(&n));
        assert!(!lv.live_in(0).contains(&i));
    }

    #[test]
    fn branch_condition_locals_are_live() {
        let mut mb = MethodBuilder::new("br", 2);
        let t = mb.new_block();
        let e = mb.new_block();
        mb.branch(0, Cmp::Lt, 1, t, e);
        mb.switch_to(t).ret(Some(0));
        mb.switch_to(e).ret(Some(1));
        let m = mb.finish();
        let lv = Liveness::compute(&m);
        assert!(lv.live_in(0).contains(&0));
        assert!(lv.live_in(0).contains(&1));
    }
}
