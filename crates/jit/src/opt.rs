//! Scalar optimizations: constant folding, branch folding, unreachable-
//! block elimination, and dead-code elimination.
//!
//! Besides being what any JIT runs before lock analysis, these passes
//! interact with elision in a way worth demonstrating: **optimization
//! can enable elision**. A synchronized block with a write behind a
//! statically false guard is classified `Writing` by the §3.2 rules;
//! after branch folding removes the guard and unreachable-block
//! elimination removes the write, the same region is provably
//! `ReadOnly` and elides. (The reverse is impossible: the passes never
//! introduce heap writes, monitor operations, or calls.)
//!
//! All passes are intentionally conservative:
//!
//! * constant propagation is block-local (no dataflow join), enough to
//!   fold guard patterns like `k = 0; if (k == 0) ...`;
//! * instructions with observable effects (heap accesses — they can
//!   fault, — `Div`/`Rem`, monitors, calls, `New`) are never removed or
//!   folded away;
//! * blocks made unreachable are replaced by empty `return` stubs so
//!   block ids (and therefore lock-plan points) stay stable.

use std::collections::{HashMap, HashSet};

use crate::ir::{BinOp, Block, Inst, LocalId, Method, Program, Terminator};

/// What a pass run changed, for diagnostics and fixpoint iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Conditional branches rewritten to jumps.
    pub branches_folded: usize,
    /// Blocks stubbed out as unreachable.
    pub blocks_removed: usize,
    /// Dead pure instructions removed.
    pub dead_removed: usize,
}

impl OptReport {
    fn merge(self, o: OptReport) -> OptReport {
        OptReport {
            folded: self.folded + o.folded,
            branches_folded: self.branches_folded + o.branches_folded,
            blocks_removed: self.blocks_removed + o.blocks_removed,
            dead_removed: self.dead_removed + o.dead_removed,
        }
    }

    /// True if the run changed nothing.
    pub fn is_noop(&self) -> bool {
        *self == OptReport::default()
    }
}

/// Runs all passes on every method to a fixpoint.
pub fn optimize_program(p: &mut Program) -> OptReport {
    let mut total = OptReport::default();
    for m in &mut p.methods {
        total = total.merge(optimize_method(m));
    }
    total
}

/// Runs all passes on one method to a fixpoint.
pub fn optimize_method(m: &mut Method) -> OptReport {
    let mut total = OptReport::default();
    loop {
        let mut round = fold_constants(m);
        round = round.merge(remove_unreachable(m));
        round = round.merge(eliminate_dead_code(m));
        if round.is_noop() {
            return total;
        }
        total = total.merge(round);
    }
}

fn eval_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Div/Rem can fault: never folded (folding a division by zero
        // would delete a required exception).
        BinOp::Div | BinOp::Rem => return None,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
    })
}

/// Block-local constant propagation + folding, and branch folding.
fn fold_constants(m: &mut Method) -> OptReport {
    let mut report = OptReport::default();
    for b in &mut m.blocks {
        let mut env: HashMap<LocalId, i64> = HashMap::new();
        for inst in &mut b.insts {
            let folded = match &mut *inst {
                Inst::Const { dst, value } => {
                    env.insert(*dst, *value);
                    None
                }
                Inst::Move { dst, src } => match env.get(src).copied() {
                    Some(v) => Some((*dst, v)),
                    None => {
                        env.remove(dst);
                        None
                    }
                },
                Inst::BinOp { op, dst, lhs, rhs } => {
                    match (env.get(lhs).copied(), env.get(rhs).copied()) {
                        (Some(a), Some(bv)) => eval_binop(*op, a, bv).map(|v| (*dst, v)),
                        _ => {
                            env.remove(dst);
                            None
                        }
                    }
                }
                other => {
                    // Anything else invalidates its def (if any).
                    if let Some(d) = other.def() {
                        env.remove(&d);
                    }
                    None
                }
            };
            if let Some((dst, v)) = folded {
                *inst = Inst::Const { dst, value: v };
                env.insert(dst, v);
                report.folded += 1;
            }
        }
        // Branch folding with the block-local environment.
        if let Terminator::Branch {
            lhs,
            cmp,
            rhs,
            then_bb,
            else_bb,
        } = b.term
        {
            if let (Some(a), Some(bv)) = (env.get(&lhs).copied(), env.get(&rhs).copied()) {
                let taken = if cmp.eval(a, bv) { then_bb } else { else_bb };
                b.term = Terminator::Jump(taken);
                report.branches_folded += 1;
            }
        }
    }
    report
}

/// Replaces unreachable blocks by empty `return` stubs (ids stay
/// stable so downstream point-keyed maps remain valid).
fn remove_unreachable(m: &mut Method) -> OptReport {
    let mut reachable = HashSet::new();
    let mut work = vec![0u32];
    while let Some(b) = work.pop() {
        if !reachable.insert(b) {
            continue;
        }
        for s in m.blocks[b as usize].term.successors() {
            work.push(s);
        }
    }
    let mut report = OptReport::default();
    for (bi, b) in m.blocks.iter_mut().enumerate() {
        let dead = !reachable.contains(&(bi as u32));
        if dead && !(b.insts.is_empty() && b.term == Terminator::Return(None)) {
            *b = Block {
                insts: vec![],
                term: Terminator::Return(None),
                cold: false,
            };
            report.blocks_removed += 1;
        }
    }
    report
}

/// Removes pure instructions whose results are never used (backward
/// liveness over the CFG via the existing analysis).
fn eliminate_dead_code(m: &mut Method) -> OptReport {
    let liveness = crate::liveness::Liveness::compute(m);
    let mut report = OptReport::default();
    for bi in 0..m.blocks.len() {
        // Walk each block backward tracking live-out.
        let mut live = liveness.live_out(bi as u32).clone();
        for u in term_uses(&m.blocks[bi].term) {
            live.insert(u);
        }
        let insts = std::mem::take(&mut m.blocks[bi].insts);
        let mut kept_rev = Vec::with_capacity(insts.len());
        for inst in insts.into_iter().rev() {
            let removable = is_pure(&inst)
                && inst.def().map(|d| !live.contains(&d)).unwrap_or(false);
            if removable {
                report.dead_removed += 1;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(&d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
            kept_rev.push(inst);
        }
        kept_rev.reverse();
        m.blocks[bi].insts = kept_rev;
    }
    report
}

fn term_uses(t: &Terminator) -> Vec<LocalId> {
    match t {
        Terminator::Jump(_) => vec![],
        Terminator::Branch { lhs, rhs, .. } => vec![*lhs, *rhs],
        Terminator::Return(v) => v.iter().copied().collect(),
    }
}

/// Pure = removable when dead: no heap access (faults!), no side
/// effects, no control relevance.
fn is_pure(i: &Inst) -> bool {
    match i {
        Inst::Const { .. } | Inst::Move { .. } => true,
        Inst::BinOp { op, .. } => !matches!(op, BinOp::Div | BinOp::Rem),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify_method, RegionClass};
    use crate::ir::Cmp;
    use crate::builder::MethodBuilder;
    use crate::verify::verify_program;
    use solero_heap::ClassId;

    const C: ClassId = ClassId::new(1);

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = MethodBuilder::new("fold", 0);
        let x = b.fresh_local();
        let y = b.fresh_local();
        let z = b.fresh_local();
        b.constant(x, 6)
            .constant(y, 7)
            .binop(BinOp::Mul, z, x, y)
            .ret(Some(z));
        let mut m = b.finish();
        let r = optimize_method(&mut m);
        assert!(r.folded >= 1);
        // The multiply became `z = 42` and x/y are dead.
        assert!(m.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Const { value: 42, .. })));
        assert!(r.dead_removed >= 2);
    }

    #[test]
    fn never_folds_division() {
        let mut b = MethodBuilder::new("div", 0);
        let x = b.fresh_local();
        let y = b.fresh_local();
        let z = b.fresh_local();
        b.constant(x, 1)
            .constant(y, 0)
            .binop(BinOp::Div, z, x, y)
            .ret(Some(z));
        let mut m = b.finish();
        optimize_method(&mut m);
        assert!(
            m.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::BinOp { op: BinOp::Div, .. })),
            "the faulting division must survive"
        );
    }

    #[test]
    fn optimization_enables_elision() {
        // synchronized { v = obj.f; k = 0; if (k == 1) { obj.g = v } }
        // — statically Writing; after folding the guard is provably
        // dead and the region is ReadOnly.
        let mut p = Program::new();
        let mut b = MethodBuilder::new("guarded", 1);
        let v = b.fresh_local();
        let k = b.fresh_local();
        let one = b.fresh_local();
        let exit_bb = b.new_block();
        let dead_write = b.new_block();
        b.monitor_enter(0)
            .get_field(v, 0, C, 0)
            .constant(k, 0)
            .constant(one, 1)
            .branch(k, Cmp::Eq, one, dead_write, exit_bb);
        b.switch_to(dead_write).put_field(0, C, 1, v).jump(exit_bb);
        b.switch_to(exit_bb).monitor_exit(0).ret(Some(v));
        let mid = p.add(b.finish());

        assert_eq!(
            classify_method(&p, mid)[0].class,
            RegionClass::Writing,
            "unoptimized: the guarded write disqualifies"
        );
        let r = optimize_program(&mut p);
        assert_eq!(r.branches_folded, 1);
        assert_eq!(r.blocks_removed, 1);
        assert_eq!(verify_program(&p), Ok(()), "optimized IR is well-formed");
        assert_eq!(
            classify_method(&p, mid)[0].class,
            RegionClass::ReadOnly,
            "optimized: the write path is provably dead — elide"
        );
    }

    #[test]
    fn dce_respects_cross_block_liveness() {
        // x defined in bb0, used in bb1: must survive.
        let mut b = MethodBuilder::new("crossbb", 0);
        let x = b.fresh_local();
        let next = b.new_block();
        b.constant(x, 9).jump(next);
        b.switch_to(next).ret(Some(x));
        let mut m = b.finish();
        let r = optimize_method(&mut m);
        assert_eq!(r.dead_removed, 0);
        assert_eq!(m.blocks[0].insts.len(), 1);
    }

    #[test]
    fn optimized_programs_still_run_correctly() {
        use crate::interp::{Interpreter, RuntimeLock};
        use solero::SoleroLock;
        use solero_heap::Heap;
        use std::sync::Arc;

        let mut p = Program::new();
        let mut b = MethodBuilder::new("math", 1);
        let x = b.fresh_local();
        let y = b.fresh_local();
        let z = b.fresh_local();
        b.constant(x, 10)
            .constant(y, 32)
            .binop(BinOp::Add, z, x, y)
            .binop(BinOp::Add, z, z, 0) // + param
            .ret(Some(z));
        p.add(b.finish());
        let mut optimized = p.clone();
        optimize_program(&mut optimized);

        let run = |prog: Program| {
            let heap = Arc::new(Heap::new(64));
            let i = Interpreter::new(
                prog,
                heap,
                vec![RuntimeLock::Solero(Arc::new(SoleroLock::new()))],
            )
            .unwrap();
            i.run(0, &[100]).unwrap()
        };
        assert_eq!(run(p), run(optimized));
    }
}
