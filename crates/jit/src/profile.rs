//! Execution profiling for read-mostly classification.
//!
//! The paper's §5 extension says the JIT "identifies a critical section
//! that contains writes or side effects as read-mostly **if the
//! execution of those writes or side effects is rare**" — a profile
//! property, not a static one. This module supplies it, mirroring a
//! tiered JIT:
//!
//! 1. run the program with a [`Profile`] attached (first tier: every
//!    region under conventional locking is fine);
//! 2. [`Profile::mark_cold`] flags blocks whose execution count is a
//!    small fraction of their method's hottest block;
//! 3. re-plan ([`crate::lower::ProgramPlan::compute`]): regions whose
//!    only writes sit in now-cold blocks become
//!    [`crate::analysis::RegionClass::ReadMostly`] and elide with the
//!    Figure 17 upgrade.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ir::{BlockId, MethodId, Program};

/// Per-block execution counts for one program.
///
/// Counters are relaxed atomics so a profiling run can be
/// multi-threaded, like real JIT profiling.
///
/// # Examples
///
/// ```
/// use solero_jit::builder::MethodBuilder;
/// use solero_jit::ir::Program;
/// use solero_jit::profile::Profile;
///
/// let mut p = Program::new();
/// let mut b = MethodBuilder::new("noop", 0);
/// b.ret(None);
/// let m = p.add(b.finish());
/// let prof = Profile::for_program(&p);
/// prof.hit(m, 0);
/// assert_eq!(prof.count(m, 0), 1);
/// ```
#[derive(Debug)]
pub struct Profile {
    counts: Vec<Vec<AtomicU64>>,
}

impl Profile {
    /// Creates an all-zero profile shaped like `p`.
    pub fn for_program(p: &Program) -> Self {
        Profile {
            counts: p
                .methods
                .iter()
                .map(|m| (0..m.blocks.len()).map(|_| AtomicU64::new(0)).collect())
                .collect(),
        }
    }

    /// Records one execution of `block` in `method`.
    #[inline]
    pub fn hit(&self, method: MethodId, block: BlockId) {
        self.counts[method as usize][block as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// The recorded count.
    pub fn count(&self, method: MethodId, block: BlockId) -> u64 {
        self.counts[method as usize][block as usize].load(Ordering::Relaxed)
    }

    /// Total executions recorded for a method (sum over blocks).
    pub fn method_total(&self, method: MethodId) -> u64 {
        self.counts[method as usize]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sets each block's `cold` flag from the profile: a block is cold
    /// when its count is at most `cold_fraction` of the hottest block of
    /// its method (and colder than the method entry). Typical fractions
    /// are 0.01–0.1, like JIT uncommon-trap thresholds.
    ///
    /// Methods that never ran keep their static flags — the profile has
    /// nothing to say about them.
    pub fn mark_cold(&self, p: &mut Program, cold_fraction: f64) {
        for (mi, m) in p.methods.iter_mut().enumerate() {
            let hottest = self.counts[mi]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0);
            if hottest == 0 {
                continue;
            }
            let threshold = (hottest as f64 * cold_fraction).floor() as u64;
            for (bi, b) in m.blocks.iter_mut().enumerate() {
                b.cold = self.counts[mi][bi].load(Ordering::Relaxed) <= threshold;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{classify_method, RegionClass};
    use crate::builder::MethodBuilder;
    use crate::ir::Cmp;
    use solero_heap::ClassId;

    const C: ClassId = ClassId::new(1);

    /// synchronized { v = obj.f; if (v == key) { obj.g = v } } with no
    /// static cold marks.
    fn guarded_write_method() -> (Program, MethodId, BlockId, BlockId) {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("mostly", 2);
        let (obj, key) = (0, 1);
        let v = b.fresh_local();
        let exit_bb = b.new_block();
        let write_bb = b.new_block();
        b.monitor_enter(0)
            .get_field(v, obj, C, 0)
            .branch(v, Cmp::Eq, key, write_bb, exit_bb);
        b.switch_to(write_bb).put_field(obj, C, 1, v).jump(exit_bb);
        b.switch_to(exit_bb).monitor_exit(0).ret(None);
        let mid = p.add(b.finish());
        (p, mid, write_bb, exit_bb)
    }

    #[test]
    fn unprofiled_guarded_write_is_conventional() {
        let (p, mid, _, _) = guarded_write_method();
        assert_eq!(classify_method(&p, mid)[0].class, RegionClass::Writing);
    }

    #[test]
    fn profile_promotes_rare_write_to_read_mostly() {
        let (mut p, mid, write_bb, exit_bb) = guarded_write_method();
        let prof = Profile::for_program(&p);
        // Simulate 10_000 executions where the write path ran 12 times.
        for _ in 0..10_000 {
            prof.hit(mid, 0);
            prof.hit(mid, exit_bb);
        }
        for _ in 0..12 {
            prof.hit(mid, write_bb);
        }
        prof.mark_cold(&mut p, 0.05);
        assert!(p.method(mid).block(write_bb).cold);
        assert!(!p.method(mid).block(0).cold);
        assert_eq!(classify_method(&p, mid)[0].class, RegionClass::ReadMostly);
    }

    #[test]
    fn profile_keeps_hot_write_conventional() {
        let (mut p, mid, write_bb, exit_bb) = guarded_write_method();
        let prof = Profile::for_program(&p);
        // The "guard" is taken half the time: not rare.
        for _ in 0..1_000 {
            prof.hit(mid, 0);
            prof.hit(mid, exit_bb);
        }
        for _ in 0..500 {
            prof.hit(mid, write_bb);
        }
        prof.mark_cold(&mut p, 0.05);
        assert!(!p.method(mid).block(write_bb).cold);
        assert_eq!(classify_method(&p, mid)[0].class, RegionClass::Writing);
    }

    #[test]
    fn unexecuted_methods_keep_static_flags() {
        let (mut p, mid, write_bb, _) = guarded_write_method();
        // Statically mark the write block cold, record nothing.
        p.methods[mid as usize].blocks[write_bb as usize].cold = true;
        let prof = Profile::for_program(&p);
        prof.mark_cold(&mut p, 0.05);
        assert!(p.method(mid).block(write_bb).cold, "static flag preserved");
    }
}
