//! A miniature JIT front end for automatic lock elision.
//!
//! **Substitution note (see DESIGN.md §2):** the paper implements SOLERO
//! inside a commercial JVM whose JIT compiler (a) identifies
//! synchronized blocks that are read-only, (b) honours a
//! `@SoleroReadOnly` annotation where the analysis is too conservative
//! (virtual calls), and (c) emits the elision entry/exit sequences plus
//! asynchronous validation check-points at method entries and loop
//! back-edges. This crate rebuilds that pipeline over a bytecode-like
//! IR:
//!
//! * [`ir`] / [`builder`] — the IR and a fluent constructor;
//! * [`verify`] — structural verification (balanced `monitorenter`/
//!   `monitorexit` along every path, as `javac` guarantees);
//! * [`liveness`] — live-variable analysis (the "no writes to live-in
//!   locals" rule);
//! * [`analysis`] — synchronized-region discovery and the §3.2
//!   read-only / §5 read-mostly classification, with violation
//!   diagnostics;
//! * [`lower`] — lock-plan selection and back-edge check-point
//!   placement;
//! * [`obsprofile`] — profile-guided demotion: a prior run's
//!   `solero-obs` JSONL export names write-heavy locks, whose regions
//!   are re-planned conventionally;
//! * [`interp`] — the execution engine: runs regions speculatively with
//!   frame rollback, exactly as the paper's generated code re-executes
//!   a failed critical section.
//!
//! # Examples
//!
//! The classifier in action:
//!
//! ```
//! use solero_jit::analysis::{classify_method, RegionClass};
//! use solero_jit::builder::MethodBuilder;
//! use solero_jit::ir::Program;
//! use solero_heap::ClassId;
//!
//! const C: ClassId = ClassId::new(1);
//! let mut p = Program::new();
//!
//! // synchronized(l0) { return obj.f; }   — read-only
//! let mut b = MethodBuilder::new("get", 1);
//! let v = b.fresh_local();
//! b.monitor_enter(0).get_field(v, 0, C, 0).monitor_exit(0).ret(Some(v));
//! let get = p.add(b.finish());
//!
//! // synchronized(l0) { obj.f = x; }      — writing
//! let mut b = MethodBuilder::new("set", 2);
//! b.monitor_enter(0).put_field(0, C, 0, 1).monitor_exit(0).ret(None);
//! let set = p.add(b.finish());
//!
//! assert_eq!(classify_method(&p, get)[0].class, RegionClass::ReadOnly);
//! assert_eq!(classify_method(&p, set)[0].class, RegionClass::Writing);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod builder;
pub mod disasm;
pub mod interp;
pub mod ir;
pub mod liveness;
pub mod lower;
pub mod obsprofile;
pub mod opt;
pub mod profile;
pub mod verify;
