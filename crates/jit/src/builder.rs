//! Fluent construction of IR methods.
//!
//! Tests, examples, and the workload programs build methods through
//! [`MethodBuilder`], which allocates locals and blocks and keeps the
//! common cases one-liners.

use solero_heap::ClassId;

use crate::ir::{BinOp, Block, BlockId, Cmp, Inst, LocalId, LockId, Method, MethodId, Terminator};

/// Builder for one [`Method`].
///
/// # Examples
///
/// Build `fn double(x) { return x + x; }`:
///
/// ```
/// use solero_jit::builder::MethodBuilder;
/// use solero_jit::ir::{BinOp, Terminator};
///
/// let mut b = MethodBuilder::new("double", 1);
/// let x = 0; // parameter 0
/// let r = b.fresh_local();
/// b.binop(BinOp::Add, r, x, x);
/// b.terminate(Terminator::Return(Some(r)));
/// let method = b.finish();
/// assert_eq!(method.name, "double");
/// ```
#[derive(Debug)]
pub struct MethodBuilder {
    name: String,
    params: u16,
    next_local: u16,
    blocks: Vec<Block>,
    current: BlockId,
    solero_read_only: bool,
}

impl MethodBuilder {
    /// Starts a method with `params` parameters in locals `0..params`.
    /// Block 0 is created and made current.
    pub fn new(name: impl Into<String>, params: u16) -> Self {
        MethodBuilder {
            name: name.into(),
            params,
            next_local: params,
            blocks: vec![Block {
                insts: vec![],
                term: Terminator::Return(None),
                cold: false,
            }],
            current: 0,
            solero_read_only: false,
        }
    }

    /// Marks the method `@SoleroReadOnly`.
    pub fn annotate_read_only(&mut self) -> &mut Self {
        self.solero_read_only = true;
        self
    }

    /// Allocates a fresh local slot.
    pub fn fresh_local(&mut self) -> LocalId {
        let l = self.next_local;
        self.next_local += 1;
        l
    }

    /// Creates a new (empty) block and returns its id; the current block
    /// is unchanged.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            insts: vec![],
            term: Terminator::Return(None),
            cold: false,
        });
        (self.blocks.len() - 1) as BlockId
    }

    /// Switches the current block.
    pub fn switch_to(&mut self, b: BlockId) -> &mut Self {
        self.current = b;
        self
    }

    /// The current block id.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Marks a block cold (profile hint for the read-mostly classifier).
    pub fn mark_cold(&mut self, b: BlockId) -> &mut Self {
        self.blocks[b as usize].cold = true;
        self
    }

    /// Appends a raw instruction to the current block.
    pub fn push(&mut self, i: Inst) -> &mut Self {
        self.blocks[self.current as usize].insts.push(i);
        self
    }

    /// `dst = value`.
    pub fn constant(&mut self, dst: LocalId, value: i64) -> &mut Self {
        self.push(Inst::Const { dst, value })
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: LocalId, src: LocalId) -> &mut Self {
        self.push(Inst::Move { dst, src })
    }

    /// `dst = lhs <op> rhs`.
    pub fn binop(&mut self, op: BinOp, dst: LocalId, lhs: LocalId, rhs: LocalId) -> &mut Self {
        self.push(Inst::BinOp { op, dst, lhs, rhs })
    }

    /// `dst = new class[len]`.
    pub fn new_object(&mut self, dst: LocalId, class: ClassId, len: u32) -> &mut Self {
        self.push(Inst::New { dst, class, len })
    }

    /// `dst = obj.field`.
    pub fn get_field(&mut self, dst: LocalId, obj: LocalId, class: ClassId, field: u32) -> &mut Self {
        self.push(Inst::GetField {
            dst,
            obj,
            class,
            field,
        })
    }

    /// `obj.field = src`.
    pub fn put_field(&mut self, obj: LocalId, class: ClassId, field: u32, src: LocalId) -> &mut Self {
        self.push(Inst::PutField {
            obj,
            class,
            field,
            src,
        })
    }

    /// `dst = arr.length`.
    pub fn array_len(&mut self, dst: LocalId, arr: LocalId) -> &mut Self {
        self.push(Inst::ArrayLen { dst, arr })
    }

    /// `dst = arr[index]`.
    pub fn array_load(&mut self, dst: LocalId, arr: LocalId, class: ClassId, index: LocalId) -> &mut Self {
        self.push(Inst::ArrayLoad {
            dst,
            arr,
            class,
            index,
        })
    }

    /// `arr[index] = src`.
    pub fn array_store(&mut self, arr: LocalId, class: ClassId, index: LocalId, src: LocalId) -> &mut Self {
        self.push(Inst::ArrayStore {
            arr,
            class,
            index,
            src,
        })
    }

    /// Opens a synchronized region on `lock`.
    pub fn monitor_enter(&mut self, lock: LockId) -> &mut Self {
        self.push(Inst::MonitorEnter { lock })
    }

    /// Closes the synchronized region on `lock`.
    pub fn monitor_exit(&mut self, lock: LockId) -> &mut Self {
        self.push(Inst::MonitorExit { lock })
    }

    /// `dst = method(args...)`.
    pub fn invoke(&mut self, dst: Option<LocalId>, method: MethodId, args: &[LocalId]) -> &mut Self {
        self.push(Inst::Invoke {
            dst,
            method,
            args: args.to_vec(),
        })
    }

    /// Sets the current block's terminator.
    pub fn terminate(&mut self, t: Terminator) -> &mut Self {
        self.blocks[self.current as usize].term = t;
        self
    }

    /// Terminates with an unconditional jump.
    pub fn jump(&mut self, b: BlockId) -> &mut Self {
        self.terminate(Terminator::Jump(b))
    }

    /// Terminates with a conditional branch.
    pub fn branch(
        &mut self,
        lhs: LocalId,
        cmp: Cmp,
        rhs: LocalId,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> &mut Self {
        self.terminate(Terminator::Branch {
            lhs,
            cmp,
            rhs,
            then_bb,
            else_bb,
        })
    }

    /// Terminates with a return.
    pub fn ret(&mut self, v: Option<LocalId>) -> &mut Self {
        self.terminate(Terminator::Return(v))
    }

    /// Finishes the method.
    pub fn finish(self) -> Method {
        Method {
            name: self.name,
            params: self.params,
            locals: self.next_local,
            blocks: self.blocks,
            solero_read_only: self.solero_read_only,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        // sum = 0; for i in 0..n { sum += i }
        let mut b = MethodBuilder::new("sum_to", 1);
        let n = 0;
        let i = b.fresh_local();
        let sum = b.fresh_local();
        let one = b.fresh_local();
        b.constant(i, 0).constant(sum, 0).constant(one, 1);
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jump(head);
        b.switch_to(head).branch(i, Cmp::Lt, n, body, done);
        b.switch_to(body)
            .binop(BinOp::Add, sum, sum, i)
            .binop(BinOp::Add, i, i, one)
            .jump(head);
        b.switch_to(done).ret(Some(sum));
        let m = b.finish();
        assert_eq!(m.blocks.len(), 4);
        assert_eq!(m.locals, 4);
        assert_eq!(m.block(1).term.successors(), vec![2, 3]);
    }
}
