//! Structural verification of IR methods.
//!
//! The verifier enforces the well-formedness the analysis and
//! interpreter rely on, the important one being **balanced monitors**:
//! along every path, each `monitorenter` is matched by exactly one
//! `monitorexit` of the same lock, properly nested, and no path returns
//! while a monitor is held — the same structured-locking property Java
//! compilers guarantee for `synchronized` blocks.

use std::collections::HashSet;

use crate::ir::{Inst, LockId, Method, MethodId, Program, Terminator};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A local id is out of the method's declared range.
    LocalOutOfRange {
        /// Offending method name.
        method: String,
        /// The local id.
        local: u16,
        /// Declared slot count.
        locals: u16,
    },
    /// A terminator targets a non-existent block.
    BadBlockTarget {
        /// Offending method name.
        method: String,
        /// The target block.
        target: u32,
    },
    /// An invoke names a non-existent method.
    BadInvokeTarget {
        /// Offending method name.
        method: String,
        /// The callee id.
        callee: MethodId,
    },
    /// An invoke passes the wrong number of arguments.
    BadArity {
        /// Offending method name.
        method: String,
        /// The callee id.
        callee: MethodId,
        /// Arguments passed.
        passed: usize,
        /// Parameters expected.
        expected: u16,
    },
    /// A `monitorexit` does not match the innermost open monitor.
    UnbalancedMonitor {
        /// Offending method name.
        method: String,
        /// The lock operand of the offending exit.
        lock: LockId,
    },
    /// A path returns (or falls off) while monitors are still held.
    ReturnWithHeldMonitor {
        /// Offending method name.
        method: String,
        /// The lock still held.
        lock: LockId,
    },
    /// The method has no blocks.
    Empty {
        /// Offending method name.
        method: String,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::LocalOutOfRange {
                method,
                local,
                locals,
            } => write!(f, "{method}: local {local} out of range (locals={locals})"),
            VerifyError::BadBlockTarget { method, target } => {
                write!(f, "{method}: branch to non-existent block {target}")
            }
            VerifyError::BadInvokeTarget { method, callee } => {
                write!(f, "{method}: invoke of non-existent method {callee}")
            }
            VerifyError::BadArity {
                method,
                callee,
                passed,
                expected,
            } => write!(
                f,
                "{method}: invoke of method {callee} passes {passed} args, expected {expected}"
            ),
            VerifyError::UnbalancedMonitor { method, lock } => {
                write!(f, "{method}: monitorexit of lock {lock} does not match innermost enter")
            }
            VerifyError::ReturnWithHeldMonitor { method, lock } => {
                write!(f, "{method}: return while holding lock {lock}")
            }
            VerifyError::Empty { method } => write!(f, "{method}: method has no blocks"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every method of a program.
///
/// # Errors
///
/// The first [`VerifyError`] found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    for m in &p.methods {
        verify_method(p, m)?;
    }
    Ok(())
}

/// Verifies a single method against a program (for invoke targets).
///
/// # Errors
///
/// The first [`VerifyError`] found.
pub fn verify_method(p: &Program, m: &Method) -> Result<(), VerifyError> {
    if m.blocks.is_empty() {
        return Err(VerifyError::Empty {
            method: m.name.clone(),
        });
    }
    let check_local = |l: u16| -> Result<(), VerifyError> {
        if l >= m.locals {
            Err(VerifyError::LocalOutOfRange {
                method: m.name.clone(),
                local: l,
                locals: m.locals,
            })
        } else {
            Ok(())
        }
    };
    for b in &m.blocks {
        for i in &b.insts {
            for u in i.uses() {
                check_local(u)?;
            }
            if let Some(d) = i.def() {
                check_local(d)?;
            }
            if let Inst::Invoke { method, args, .. } = i {
                let Some(callee) = p.methods.get(*method as usize) else {
                    return Err(VerifyError::BadInvokeTarget {
                        method: m.name.clone(),
                        callee: *method,
                    });
                };
                if args.len() != callee.params as usize {
                    return Err(VerifyError::BadArity {
                        method: m.name.clone(),
                        callee: *method,
                        passed: args.len(),
                        expected: callee.params,
                    });
                }
            }
        }
        match &b.term {
            Terminator::Jump(t) => {
                if *t as usize >= m.blocks.len() {
                    return Err(VerifyError::BadBlockTarget {
                        method: m.name.clone(),
                        target: *t,
                    });
                }
            }
            Terminator::Branch {
                lhs,
                rhs,
                then_bb,
                else_bb,
                ..
            } => {
                check_local(*lhs)?;
                check_local(*rhs)?;
                for t in [then_bb, else_bb] {
                    if *t as usize >= m.blocks.len() {
                        return Err(VerifyError::BadBlockTarget {
                            method: m.name.clone(),
                            target: *t,
                        });
                    }
                }
            }
            Terminator::Return(v) => {
                if let Some(v) = v {
                    check_local(*v)?;
                }
            }
        }
    }
    verify_monitor_balance(m)
}

/// DFS over `(block, monitor-stack)` states checking structured locking.
fn verify_monitor_balance(m: &Method) -> Result<(), VerifyError> {
    let mut seen: HashSet<(u32, Vec<LockId>)> = HashSet::new();
    let mut work: Vec<(u32, Vec<LockId>)> = vec![(0, vec![])];
    while let Some((bid, mut stack)) = work.pop() {
        if !seen.insert((bid, stack.clone())) {
            continue;
        }
        let b = &m.blocks[bid as usize];
        for i in &b.insts {
            match i {
                Inst::MonitorEnter { lock } => stack.push(*lock),
                Inst::MonitorExit { lock } => match stack.pop() {
                    Some(top) if top == *lock => {}
                    _ => {
                        return Err(VerifyError::UnbalancedMonitor {
                            method: m.name.clone(),
                            lock: *lock,
                        })
                    }
                },
                _ => {}
            }
        }
        match &b.term {
            Terminator::Return(_) => {
                if let Some(&lock) = stack.last() {
                    return Err(VerifyError::ReturnWithHeldMonitor {
                        method: m.name.clone(),
                        lock,
                    });
                }
            }
            t => {
                for s in t.successors() {
                    work.push((s, stack.clone()));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::ir::Cmp;

    fn wrap(m: Method) -> Program {
        let mut p = Program::new();
        p.add(m);
        p
    }

    #[test]
    fn accepts_balanced_region() {
        let mut b = MethodBuilder::new("ok", 0);
        b.monitor_enter(1).monitor_exit(1).ret(None);
        assert_eq!(verify_program(&wrap(b.finish())), Ok(()));
    }

    #[test]
    fn accepts_nested_regions() {
        let mut b = MethodBuilder::new("nested", 0);
        b.monitor_enter(1)
            .monitor_enter(2)
            .monitor_exit(2)
            .monitor_exit(1)
            .ret(None);
        assert_eq!(verify_program(&wrap(b.finish())), Ok(()));
    }

    #[test]
    fn rejects_crossed_exits() {
        let mut b = MethodBuilder::new("crossed", 0);
        b.monitor_enter(1)
            .monitor_enter(2)
            .monitor_exit(1) // wrong order
            .monitor_exit(2)
            .ret(None);
        assert!(matches!(
            verify_program(&wrap(b.finish())),
            Err(VerifyError::UnbalancedMonitor { lock: 1, .. })
        ));
    }

    #[test]
    fn rejects_return_inside_region() {
        let mut b = MethodBuilder::new("leaky", 0);
        b.monitor_enter(1).ret(None);
        assert!(matches!(
            verify_program(&wrap(b.finish())),
            Err(VerifyError::ReturnWithHeldMonitor { lock: 1, .. })
        ));
    }

    #[test]
    fn rejects_path_sensitive_imbalance() {
        // One branch arm exits the monitor, the other does not.
        let mut b = MethodBuilder::new("maybe", 1);
        let exit_bb = b.new_block();
        let skip_bb = b.new_block();
        let join = b.new_block();
        b.monitor_enter(7).branch(0, Cmp::Eq, 0, exit_bb, skip_bb);
        b.switch_to(exit_bb).monitor_exit(7).jump(join);
        b.switch_to(skip_bb).jump(join);
        b.switch_to(join).ret(None);
        assert!(verify_program(&wrap(b.finish())).is_err());
    }

    #[test]
    fn rejects_bad_local_and_target() {
        let mut b = MethodBuilder::new("bad", 0);
        b.mov(3, 4).ret(None); // locals 3,4 never allocated
        assert!(matches!(
            verify_program(&wrap(b.finish())),
            Err(VerifyError::LocalOutOfRange { .. })
        ));

        let mut b = MethodBuilder::new("badjump", 0);
        b.jump(9);
        assert!(matches!(
            verify_program(&wrap(b.finish())),
            Err(VerifyError::BadBlockTarget { target: 9, .. })
        ));
    }

    #[test]
    fn rejects_bad_invoke() {
        let mut b = MethodBuilder::new("caller", 0);
        b.invoke(None, 42, &[]).ret(None);
        assert!(matches!(
            verify_program(&wrap(b.finish())),
            Err(VerifyError::BadInvokeTarget { callee: 42, .. })
        ));
    }

    #[test]
    fn rejects_bad_arity() {
        let mut p = Program::new();
        let mut callee = MethodBuilder::new("callee", 2);
        callee.ret(None);
        let callee_id = p.add(callee.finish());
        let mut caller = MethodBuilder::new("caller", 0);
        let x = caller.fresh_local();
        caller.constant(x, 1).invoke(None, callee_id, &[x]).ret(None);
        p.add(caller.finish());
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadArity {
                passed: 1,
                expected: 2,
                ..
            })
        ));
    }

    #[test]
    fn accepts_loop_with_region_each_iteration() {
        let mut b = MethodBuilder::new("loopy", 1);
        let i = b.fresh_local();
        let one = b.fresh_local();
        b.constant(i, 0).constant(one, 1);
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jump(head);
        b.switch_to(head).branch(i, Cmp::Lt, 0, body, done);
        b.switch_to(body)
            .monitor_enter(1)
            .monitor_exit(1)
            .binop(crate::ir::BinOp::Add, i, i, one)
            .jump(head);
        b.switch_to(done).ret(None);
        assert_eq!(verify_program(&wrap(b.finish())), Ok(()));
    }
}
