//! Synchronized-region discovery and read-only classification (§3.2).
//!
//! The paper's JIT marks a synchronized block read-only when it contains
//! none of:
//!
//! * writes to instance variables, static variables, or array elements;
//! * writes to locals **live at the beginning** of the critical section
//!   (restoring them after a failed speculation would need checkpoints);
//! * method invocations, other than those that throw runtime exceptions
//!   — unless the callee is provably side-effect free or the enclosing
//!   method carries the `@SoleroReadOnly` annotation.
//!
//! We additionally treat object allocation and nested `monitorenter` as
//! disqualifying (the paper notes allocation "rarely occurs" in
//! read-only blocks because constructors write instance fields — we are
//! conservative and reject it outright).
//!
//! The §5 **read-mostly** extension classifies a region whose only
//! violations are heap writes sitting in *cold* (profile-rare) blocks:
//! those regions elide too, upgrading in place at the first write.

use std::collections::{BTreeSet, HashSet};

use crate::ir::{Inst, LocalId, LockId, Method, MethodId, Point, Program};
use crate::liveness::Liveness;

/// A discovered synchronized region.
#[derive(Debug, Clone)]
pub struct SyncRegion {
    /// The lock the region synchronizes on.
    pub lock: LockId,
    /// The point of the opening `monitorenter`.
    pub enter: Point,
    /// Instruction points strictly inside the region (excluding the
    /// enter and the matching exits).
    pub members: BTreeSet<Point>,
    /// Points of the matching `monitorexit` instructions.
    pub exits: Vec<Point>,
    /// Blocks any part of the region touches.
    pub blocks: BTreeSet<u32>,
}

/// The classification of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionClass {
    /// No writes, no side effects: elide unconditionally.
    ReadOnly,
    /// Writes only on cold paths: elide with in-place upgrade (§5).
    ReadMostly,
    /// Potentially writing: conventional locking.
    Writing,
}

/// Why a region is not read-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// A `putfield`/`arraystore` inside the region.
    HeapWrite,
    /// A `new` inside the region.
    Allocation,
    /// A write to a local that is live at region entry.
    LiveLocalWrite(LocalId),
    /// An invoke whose callee is not provably side-effect free.
    ImpureInvoke(MethodId),
    /// A nested `monitorenter` (any lock).
    NestedMonitor(LockId),
}

/// One disqualifying instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Where.
    pub point: Point,
    /// Why.
    pub reason: Reason,
    /// Whether the containing block is cold (profile-rare).
    pub cold: bool,
}

/// A region together with its classification evidence.
#[derive(Debug, Clone)]
pub struct ClassifiedRegion {
    /// The region.
    pub region: SyncRegion,
    /// The classification.
    pub class: RegionClass,
    /// Every violation found (empty for [`RegionClass::ReadOnly`]).
    pub violations: Vec<Violation>,
}

/// Discovers all synchronized regions of a verified method.
///
/// Traverses program points forward from each `monitorenter`, tracking
/// the nesting depth of that lock, until the matching `monitorexit` on
/// every path.
pub fn discover_regions(m: &Method) -> Vec<SyncRegion> {
    let mut regions = Vec::new();
    for (bi, b) in m.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Inst::MonitorEnter { lock } = inst {
                regions.push(trace_region(
                    m,
                    *lock,
                    Point {
                        block: bi as u32,
                        inst: ii,
                    },
                ));
            }
        }
    }
    regions
}

fn trace_region(m: &Method, lock: LockId, enter: Point) -> SyncRegion {
    let mut members = BTreeSet::new();
    let mut exits = Vec::new();
    let mut blocks = BTreeSet::new();
    blocks.insert(enter.block);
    // Worklist of (point, depth) with depth ≥ 1.
    let mut seen: HashSet<(Point, u32)> = HashSet::new();
    let mut work = vec![(
        Point {
            block: enter.block,
            inst: enter.inst + 1,
        },
        1u32,
    )];
    while let Some((p, depth)) = work.pop() {
        if !seen.insert((p, depth)) {
            continue;
        }
        let b = m.block(p.block);
        blocks.insert(p.block);
        if p.inst == b.insts.len() {
            // Terminator: follow successors (the verifier guarantees no
            // return escapes with the monitor held).
            for s in b.term.successors() {
                work.push((Point { block: s, inst: 0 }, depth));
            }
            continue;
        }
        let inst = &b.insts[p.inst];
        let next = Point {
            block: p.block,
            inst: p.inst + 1,
        };
        match inst {
            Inst::MonitorEnter { lock: l } if *l == lock => {
                members.insert(p);
                work.push((next, depth + 1));
            }
            Inst::MonitorExit { lock: l } if *l == lock => {
                if depth == 1 {
                    exits.push(p);
                } else {
                    members.insert(p);
                    work.push((next, depth - 1));
                }
            }
            _ => {
                members.insert(p);
                work.push((next, depth));
            }
        }
    }
    exits.sort_unstable();
    exits.dedup();
    SyncRegion {
        lock,
        enter,
        members,
        exits,
        blocks,
    }
}

/// Computes, for every method, whether a call to it is side-effect free
/// ("pure"): annotated `@SoleroReadOnly`, or transitively free of heap
/// writes, allocation, monitor operations, and impure calls. Cycles are
/// conservatively impure unless annotated.
pub fn method_purity(p: &Program) -> Vec<bool> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unknown,
        InProgress,
        Pure,
        Impure,
    }
    fn visit(p: &Program, id: usize, st: &mut Vec<State>) -> bool {
        match st[id] {
            State::Pure => return true,
            State::Impure => return false,
            State::InProgress => return false, // recursion: conservative
            State::Unknown => {}
        }
        if p.methods[id].solero_read_only {
            st[id] = State::Pure;
            return true;
        }
        st[id] = State::InProgress;
        let mut pure = true;
        'outer: for b in &p.methods[id].blocks {
            for i in &b.insts {
                match i {
                    Inst::PutField { .. }
                    | Inst::ArrayStore { .. }
                    | Inst::New { .. }
                    | Inst::MonitorEnter { .. }
                    | Inst::MonitorExit { .. } => {
                        pure = false;
                        break 'outer;
                    }
                    Inst::Invoke { method, .. } => {
                        if !visit(p, *method as usize, st) {
                            pure = false;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
        }
        st[id] = if pure { State::Pure } else { State::Impure };
        pure
    }
    let mut st = vec![State::Unknown; p.methods.len()];
    (0..p.methods.len())
        .map(|i| visit(p, i, &mut st))
        .collect()
}

/// Classifies every synchronized region of method `mid`.
pub fn classify_method(p: &Program, mid: MethodId) -> Vec<ClassifiedRegion> {
    let m = p.method(mid);
    let purity = method_purity(p);
    let liveness = Liveness::compute(m);
    discover_regions(m)
        .into_iter()
        .map(|region| classify_region(p, m, region, &purity, &liveness))
        .collect()
}

fn classify_region(
    p: &Program,
    m: &Method,
    region: SyncRegion,
    purity: &[bool],
    liveness: &Liveness,
) -> ClassifiedRegion {
    // Locals live at the beginning of the critical section.
    let live_at_entry = liveness.live_at(m, region.enter);
    let mut violations = Vec::new();
    for &pt in &region.members {
        let b = m.block(pt.block);
        let inst = &b.insts[pt.inst];
        let mut add = |reason| {
            violations.push(Violation {
                point: pt,
                reason,
                cold: b.cold,
            })
        };
        match inst {
            Inst::PutField { .. } | Inst::ArrayStore { .. } => add(Reason::HeapWrite),
            Inst::New { .. } => add(Reason::Allocation),
            Inst::MonitorEnter { lock } | Inst::MonitorExit { lock } => {
                add(Reason::NestedMonitor(*lock))
            }
            Inst::Invoke { method, .. } => {
                if !purity[*method as usize] {
                    add(Reason::ImpureInvoke(*method));
                }
            }
            _ => {}
        }
        if let Some(d) = inst.def() {
            if live_at_entry.contains(&d) {
                violations.push(Violation {
                    point: pt,
                    reason: Reason::LiveLocalWrite(d),
                    cold: b.cold,
                });
            }
        }
    }
    let class = if m.solero_read_only || violations.is_empty() {
        // The @SoleroReadOnly annotation overrides the analysis (the
        // paper introduces it precisely for regions the analysis cannot
        // prove read-only, e.g. virtual calls).
        RegionClass::ReadOnly
    } else if violations.iter().all(|v| {
        v.cold
            && matches!(
                v.reason,
                Reason::HeapWrite | Reason::Allocation | Reason::LiveLocalWrite(_)
            )
    }) {
        RegionClass::ReadMostly
    } else {
        RegionClass::Writing
    };
    let _ = p;
    ClassifiedRegion {
        region,
        class,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::ir::{BinOp, Cmp};
    use solero_heap::ClassId;

    const C: ClassId = ClassId::new(1);

    fn single(p: &Program, mid: MethodId) -> ClassifiedRegion {
        let mut rs = classify_method(p, mid);
        assert_eq!(rs.len(), 1, "expected one region");
        rs.remove(0)
    }

    #[test]
    fn pure_read_region_is_read_only() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("get", 1);
        let obj = 0;
        let v = b.fresh_local();
        b.monitor_enter(0)
            .get_field(v, obj, C, 0)
            .monitor_exit(0)
            .ret(Some(v));
        let mid = p.add(b.finish());
        let r = single(&p, mid);
        assert_eq!(r.class, RegionClass::ReadOnly);
        assert!(r.violations.is_empty());
        assert_eq!(r.region.exits.len(), 1);
    }

    #[test]
    fn heap_write_disqualifies() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("set", 2);
        b.monitor_enter(0)
            .put_field(0, C, 0, 1)
            .monitor_exit(0)
            .ret(None);
        let mid = p.add(b.finish());
        let r = single(&p, mid);
        assert_eq!(r.class, RegionClass::Writing);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].reason, Reason::HeapWrite);
    }

    #[test]
    fn allocation_disqualifies() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("mk", 0);
        let t = b.fresh_local();
        b.monitor_enter(0).new_object(t, C, 2).monitor_exit(0).ret(None);
        let mid = p.add(b.finish());
        assert_eq!(single(&p, mid).class, RegionClass::Writing);
    }

    #[test]
    fn dead_local_write_is_allowed() {
        // A scratch local defined *inside* the region is not live at
        // entry, so writing it is fine.
        let mut p = Program::new();
        let mut b = MethodBuilder::new("scratch", 1);
        let tmp = b.fresh_local();
        b.monitor_enter(0)
            .get_field(tmp, 0, C, 0)
            .binop(BinOp::Add, tmp, tmp, tmp)
            .monitor_exit(0)
            .ret(Some(tmp));
        let mid = p.add(b.finish());
        assert_eq!(single(&p, mid).class, RegionClass::ReadOnly);
    }

    #[test]
    fn live_local_write_disqualifies() {
        // `acc` is initialized before the region and read after it, so
        // it is live at entry; the region increments it.
        let mut p = Program::new();
        let mut b = MethodBuilder::new("acc", 1);
        let acc = b.fresh_local();
        let v = b.fresh_local();
        b.constant(acc, 0)
            .monitor_enter(0)
            .get_field(v, 0, C, 0)
            .binop(BinOp::Add, acc, acc, v)
            .monitor_exit(0)
            .ret(Some(acc));
        let mid = p.add(b.finish());
        let r = single(&p, mid);
        assert_eq!(r.class, RegionClass::Writing);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v.reason, Reason::LiveLocalWrite(_))));
    }

    #[test]
    fn pure_callee_is_allowed_impure_is_not() {
        let mut p = Program::new();
        // Pure helper: doubles its argument.
        let mut pure = MethodBuilder::new("pure", 1);
        let r = pure.fresh_local();
        pure.binop(BinOp::Add, r, 0, 0).ret(Some(r));
        let pure_id = p.add(pure.finish());
        // Impure helper: writes a field.
        let mut impure = MethodBuilder::new("impure", 1);
        impure.put_field(0, C, 0, 0).ret(None);
        let impure_id = p.add(impure.finish());

        let mut ok = MethodBuilder::new("calls_pure", 1);
        let t = ok.fresh_local();
        ok.monitor_enter(0)
            .invoke(Some(t), pure_id, &[0])
            .monitor_exit(0)
            .ret(Some(t));
        let ok_id = p.add(ok.finish());

        let mut bad = MethodBuilder::new("calls_impure", 1);
        bad.monitor_enter(0)
            .invoke(None, impure_id, &[0])
            .monitor_exit(0)
            .ret(None);
        let bad_id = p.add(bad.finish());

        assert_eq!(single(&p, ok_id).class, RegionClass::ReadOnly);
        let r = single(&p, bad_id);
        assert_eq!(r.class, RegionClass::Writing);
        assert_eq!(r.violations[0].reason, Reason::ImpureInvoke(impure_id));
    }

    #[test]
    fn annotation_overrides_analysis() {
        // A virtual-call-like region the analysis cannot prove pure,
        // force-classified by @SoleroReadOnly.
        let mut p = Program::new();
        let mut callee = MethodBuilder::new("opaque", 1);
        callee.annotate_read_only();
        // Body LOOKS impure to a conservative analysis only through
        // calls; here make the *caller* annotated instead.
        let cr = callee.fresh_local();
        callee.get_field(cr, 0, C, 0).ret(Some(cr));
        let callee_id = p.add(callee.finish());

        let mut m = MethodBuilder::new("annotated_caller", 1);
        m.annotate_read_only();
        let t = m.fresh_local();
        // A live-local write that would normally disqualify:
        m.constant(t, 0)
            .monitor_enter(0)
            .invoke(Some(t), callee_id, &[0])
            .binop(BinOp::Add, t, t, t)
            .monitor_exit(0)
            .ret(Some(t));
        let mid = p.add(m.finish());
        assert_eq!(single(&p, mid).class, RegionClass::ReadOnly);
    }

    #[test]
    fn nested_monitor_disqualifies() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("nested", 0);
        b.monitor_enter(0)
            .monitor_enter(1)
            .monitor_exit(1)
            .monitor_exit(0)
            .ret(None);
        let mid = p.add(b.finish());
        // Two regions are discovered; the outer one is disqualified by
        // the nested monitor, the inner one is read-only.
        let rs = classify_method(&p, mid);
        assert_eq!(rs.len(), 2);
        let outer = rs.iter().find(|r| r.region.lock == 0).unwrap();
        let inner = rs.iter().find(|r| r.region.lock == 1).unwrap();
        assert_eq!(outer.class, RegionClass::Writing);
        assert_eq!(inner.class, RegionClass::ReadOnly);
    }

    #[test]
    fn cold_write_makes_read_mostly() {
        // if (obj.f == key) { /* cold */ obj.g = v }
        let mut p = Program::new();
        let mut b = MethodBuilder::new("mostly", 3);
        let (obj, key, val) = (0, 1, 2);
        let f = b.fresh_local();
        let hot_exit = b.new_block();
        let cold_write = b.new_block();
        b.monitor_enter(0)
            .get_field(f, obj, C, 0)
            .branch(f, Cmp::Eq, key, cold_write, hot_exit);
        b.switch_to(cold_write).put_field(obj, C, 1, val).jump(hot_exit);
        b.mark_cold(cold_write);
        b.switch_to(hot_exit).monitor_exit(0).ret(None);
        let mid = p.add(b.finish());
        let r = single(&p, mid);
        assert_eq!(r.class, RegionClass::ReadMostly);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].cold);
    }

    #[test]
    fn hot_write_is_not_read_mostly() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("hot", 2);
        b.monitor_enter(0).put_field(0, C, 0, 1).monitor_exit(0).ret(None);
        let mid = p.add(b.finish());
        assert_eq!(single(&p, mid).class, RegionClass::Writing);
    }

    #[test]
    fn multi_block_region_with_loop_is_discovered() {
        // synchronized { while (i < n) { v = a[i]; i++ } }
        let mut p = Program::new();
        let mut b = MethodBuilder::new("scan", 2);
        let (arr, n) = (0, 1);
        let i = b.fresh_local();
        let v = b.fresh_local();
        let one = b.fresh_local();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.monitor_enter(0)
            .constant(i, 0)
            .constant(one, 1)
            .constant(v, 0) // define v inside the region: not live at entry
            .jump(head);
        b.switch_to(head).branch(i, Cmp::Lt, n, body, done);
        b.switch_to(body)
            .array_load(v, arr, C, i)
            .binop(BinOp::Add, i, i, one)
            .jump(head);
        b.switch_to(done).monitor_exit(0).ret(Some(v));
        let mid = p.add(b.finish());
        let r = single(&p, mid);
        assert_eq!(r.class, RegionClass::ReadOnly);
        assert!(r.region.blocks.len() >= 4, "region spans the loop blocks");
    }
}
