//! Textual disassembly of IR programs.
//!
//! Human-readable dumps for diagnostics, tests, and the examples —
//! optionally annotated with the lock plan chosen for each
//! `monitorenter`, which is how one inspects what the "JIT" decided:
//!
//! ```text
//! fn lookup(params=2, locals=3):
//!   bb0:
//!     monitorenter L0            ; plan=Elide
//!     l2 = l0.f0 : class#2
//!     monitorexit L0
//!     return l2
//! ```

use std::fmt::Write as _;

use crate::ir::{BinOp, Cmp, Inst, Method, Point, Program, Terminator};
use crate::lower::{LockPlan, ProgramPlan};

fn binop_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn cmp_symbol(c: Cmp) -> &'static str {
    match c {
        Cmp::Eq => "==",
        Cmp::Ne => "!=",
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
    }
}

fn fmt_inst(i: &Inst) -> String {
    match i {
        Inst::Const { dst, value } => format!("l{dst} = {value}"),
        Inst::Move { dst, src } => format!("l{dst} = l{src}"),
        Inst::BinOp { op, dst, lhs, rhs } => {
            format!("l{dst} = l{lhs} {} l{rhs}", binop_symbol(*op))
        }
        Inst::New { dst, class, len } => format!("l{dst} = new {class}[{len}]"),
        Inst::GetField {
            dst,
            obj,
            class,
            field,
        } => format!("l{dst} = l{obj}.f{field} : {class}"),
        Inst::PutField {
            obj,
            class,
            field,
            src,
        } => format!("l{obj}.f{field} = l{src} : {class}"),
        Inst::ArrayLen { dst, arr } => format!("l{dst} = l{arr}.length"),
        Inst::ArrayLoad {
            dst,
            arr,
            class,
            index,
        } => format!("l{dst} = l{arr}[l{index}] : {class}"),
        Inst::ArrayStore {
            arr,
            class,
            index,
            src,
        } => format!("l{arr}[l{index}] = l{src} : {class}"),
        Inst::MonitorEnter { lock } => format!("monitorenter L{lock}"),
        Inst::MonitorExit { lock } => format!("monitorexit L{lock}"),
        Inst::Invoke { dst, method, args } => {
            let args = args
                .iter()
                .map(|a| format!("l{a}"))
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => format!("l{d} = call m{method}({args})"),
                None => format!("call m{method}({args})"),
            }
        }
    }
}

fn fmt_term(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump bb{b}"),
        Terminator::Branch {
            lhs,
            cmp,
            rhs,
            then_bb,
            else_bb,
        } => format!(
            "if l{lhs} {} l{rhs} goto bb{then_bb} else bb{else_bb}",
            cmp_symbol(*cmp)
        ),
        Terminator::Return(Some(v)) => format!("return l{v}"),
        Terminator::Return(None) => "return".into(),
    }
}

/// Disassembles one method, optionally annotating `monitorenter`s with
/// their lock plans.
pub fn disassemble_method(m: &Method, mid: u32, plan: Option<&ProgramPlan>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}(params={}, locals={}){}:",
        m.name,
        m.params,
        m.locals,
        if m.solero_read_only {
            " @SoleroReadOnly"
        } else {
            ""
        }
    );
    for (bi, b) in m.blocks.iter().enumerate() {
        let _ = writeln!(
            out,
            "  bb{bi}:{}",
            if b.cold { "    ; cold" } else { "" }
        );
        for (ii, i) in b.insts.iter().enumerate() {
            let mut line = format!("    {}", fmt_inst(i));
            if matches!(i, Inst::MonitorEnter { .. }) {
                if let Some(plan) = plan {
                    if let Some(pr) = plan.region_at(
                        mid,
                        Point {
                            block: bi as u32,
                            inst: ii,
                        },
                    ) {
                        let tag = match pr.plan {
                            LockPlan::Elide => "Elide",
                            LockPlan::ElideMostly => "ElideMostly",
                            LockPlan::Conventional => "Conventional",
                        };
                        let _ = write!(line, "            ; plan={tag}");
                    }
                }
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "    {}", fmt_term(&b.term));
    }
    out
}

/// Disassembles a whole program with plan annotations.
pub fn disassemble(p: &Program, plan: Option<&ProgramPlan>) -> String {
    let mut out = String::new();
    for (mi, m) in p.methods.iter().enumerate() {
        out.push_str(&disassemble_method(m, mi as u32, plan));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use solero_heap::ClassId;

    const C: ClassId = ClassId::new(3);

    fn sample() -> Program {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("get", 1);
        let v = b.fresh_local();
        b.monitor_enter(0)
            .get_field(v, 0, C, 1)
            .monitor_exit(0)
            .ret(Some(v));
        p.add(b.finish());
        p
    }

    #[test]
    fn disassembly_mentions_every_construct() {
        let p = sample();
        let text = disassemble(&p, None);
        assert!(text.contains("fn get(params=1, locals=2):"));
        assert!(text.contains("monitorenter L0"));
        assert!(text.contains("l1 = l0.f1 : class#3"));
        assert!(text.contains("monitorexit L0"));
        assert!(text.contains("return l1"));
    }

    #[test]
    fn plan_annotation_appears() {
        let p = sample();
        let plan = ProgramPlan::compute(&p);
        let text = disassemble(&p, Some(&plan));
        assert!(text.contains("plan=Elide"), "{text}");
    }

    #[test]
    fn all_instructions_format() {
        use crate::ir::{Block, Method};
        let insts = vec![
            Inst::Const { dst: 0, value: -3 },
            Inst::Move { dst: 1, src: 0 },
            Inst::BinOp {
                op: BinOp::Shl,
                dst: 1,
                lhs: 0,
                rhs: 1,
            },
            Inst::New {
                dst: 0,
                class: C,
                len: 4,
            },
            Inst::ArrayLen { dst: 1, arr: 0 },
            Inst::ArrayLoad {
                dst: 1,
                arr: 0,
                class: C,
                index: 1,
            },
            Inst::ArrayStore {
                arr: 0,
                class: C,
                index: 1,
                src: 1,
            },
            Inst::Invoke {
                dst: None,
                method: 0,
                args: vec![0, 1],
            },
        ];
        let m = Method {
            name: "all".into(),
            params: 0,
            locals: 2,
            blocks: vec![Block {
                insts,
                term: Terminator::Return(None),
                cold: true,
            }],
            solero_read_only: true,
        };
        let text = disassemble_method(&m, 0, None);
        for needle in [
            "@SoleroReadOnly",
            "; cold",
            "l0 = -3",
            "l1 = l0",
            "l1 = l0 << l1",
            "new class#3[4]",
            "l1 = l0.length",
            "l1 = l0[l1]",
            "l0[l1] = l1",
            "call m0(l0, l1)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
