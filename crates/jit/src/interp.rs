//! The execution engine.
//!
//! The interpreter plays the role of the JIT-compiled code: it executes
//! IR methods against the shadow heap, entering each synchronized
//! region through the code shape its [`LockPlan`] prescribes —
//! conventional acquisition, read-only elision with validation and
//! recovery, or read-mostly elision with in-place upgrade.
//!
//! Speculative semantics are exact:
//!
//! * an elided region executes on a **copy** of the frame's locals,
//!   committed only when the SOLERO driver accepts the attempt — so a
//!   re-execution observes pristine locals (this is why the classifier
//!   may reject regions writing *live-in* locals and still be safe
//!   here: the engine restores all locals regardless);
//! * heap faults inside the region surface as `Err(Fault)` and flow to
//!   the SOLERO recovery driver, which retries or propagates;
//! * the validation check-point is polled at intra-region loop
//!   back-edges and at method entries, as the paper's JIT inserts its
//!   asynchronous checks.

use std::sync::Arc;

use solero::{Fault, NullCheckpoint, SoleroLock, WriteIntent};
use solero_heap::{Heap, ObjRef};
use solero_runtime::thread::ThreadId;
use solero_tasuki::TasukiLock;

use crate::ir::{BinOp, Inst, MethodId, Point, Program, Terminator};
use crate::lower::{LockPlan, PlannedRegion, ProgramPlan};
use crate::profile::Profile;
use crate::verify::{verify_program, VerifyError};

/// Maximum interpreter call depth.
const MAX_CALL_DEPTH: u32 = 256;

/// A lock implementation bound to a [`crate::ir::LockId`].
#[derive(Debug, Clone)]
pub enum RuntimeLock {
    /// SOLERO: regions follow their lock plans.
    Solero(Arc<SoleroLock>),
    /// Conventional tasuki lock: every region acquires.
    Tasuki(Arc<TasukiLock>),
}

/// What a write instruction may do in the current execution context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteMode {
    /// Outside any elided region (or under a held lock): writes are free.
    Free,
    /// Inside an elided read-only region: writes are a classifier bug.
    Forbidden,
    /// Inside an elided read-mostly region: upgrade before each write.
    Upgrade,
}

struct Ctx<'a> {
    ck: &'a mut dyn WriteIntent,
    mode: WriteMode,
    depth: u32,
    fuel: &'a mut u64,
}

/// Executes IR programs with JIT-planned lock elision.
///
/// # Examples
///
/// ```
/// use solero_jit::builder::MethodBuilder;
/// use solero_jit::interp::{Interpreter, RuntimeLock};
/// use solero_jit::ir::Program;
/// use solero::SoleroLock;
/// use solero_heap::{ClassId, Heap};
/// use std::sync::Arc;
///
/// const CELL: ClassId = ClassId::new(1);
/// let heap = Arc::new(Heap::new(1 << 10));
/// let cell = heap.alloc(CELL, 1).unwrap();
/// heap.store_i64(cell, 0, 99).unwrap();
///
/// // fn read(obj) { synchronized(lock0) { return obj.f } }
/// let mut p = Program::new();
/// let mut b = MethodBuilder::new("read", 1);
/// let v = b.fresh_local();
/// b.monitor_enter(0).get_field(v, 0, CELL, 0).monitor_exit(0).ret(Some(v));
/// let read = p.add(b.finish());
///
/// let lock = Arc::new(SoleroLock::new());
/// let interp = Interpreter::new(p, Arc::clone(&heap),
///     vec![RuntimeLock::Solero(Arc::clone(&lock))]).unwrap();
/// let got = interp.run(read, &[cell.raw() as i64]).unwrap();
/// assert_eq!(got, Some(99));
/// // The region was classified read-only and elided:
/// assert_eq!(lock.stats().snapshot().elision_success, 1);
/// ```
#[derive(Debug)]
pub struct Interpreter {
    program: Program,
    plan: ProgramPlan,
    heap: Arc<Heap>,
    locks: Vec<RuntimeLock>,
    profile: Option<Arc<Profile>>,
}

impl Interpreter {
    /// Verifies `program`, computes its lock plans, and builds the
    /// engine. `locks[i]` backs `LockId` `i`.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] if the program is structurally ill-formed.
    pub fn new(
        program: Program,
        heap: Arc<Heap>,
        locks: Vec<RuntimeLock>,
    ) -> Result<Self, VerifyError> {
        verify_program(&program)?;
        let plan = ProgramPlan::compute(&program);
        Ok(Interpreter {
            program,
            plan,
            heap,
            locks,
            profile: None,
        })
    }

    /// Attaches an execution profile; subsequent runs record per-block
    /// counts into it (the first tier of profile-guided read-mostly
    /// planning — see [`crate::profile`]).
    pub fn attach_profile(&mut self, profile: Arc<Profile>) {
        self.profile = Some(profile);
    }

    #[inline]
    fn record(&self, mid: MethodId, bid: u32) {
        if let Some(p) = &self.profile {
            p.hit(mid, bid);
        }
    }

    /// The computed lock plans (diagnostics, tests).
    pub fn plan(&self) -> &ProgramPlan {
        &self.plan
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The shadow heap.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Runs `method` with `args`.
    ///
    /// # Errors
    ///
    /// A genuine [`Fault`] (uncaught runtime exception) raised by the
    /// program. Speculation artifacts never escape.
    ///
    /// # Panics
    ///
    /// Panics on interpreter bugs (call-depth overflow) — not on
    /// program-level faults.
    pub fn run(&self, method: MethodId, args: &[i64]) -> Result<Option<i64>, Fault> {
        self.run_with_fuel(method, args, u64::MAX)
    }

    /// Like [`Interpreter::run`] with an instruction budget — a test
    /// harness guard against genuinely non-terminating programs.
    ///
    /// # Errors
    ///
    /// As [`Interpreter::run`].
    ///
    /// # Panics
    ///
    /// Panics when the budget is exhausted.
    pub fn run_with_fuel(
        &self,
        method: MethodId,
        args: &[i64],
        fuel: u64,
    ) -> Result<Option<i64>, Fault> {
        let mut fuel = fuel;
        let mut ck = NullCheckpoint;
        let mut ctx = Ctx {
            ck: &mut ck,
            mode: WriteMode::Free,
            depth: 0,
            fuel: &mut fuel,
        };
        self.call(method, args, &mut ctx)
    }

    fn call(&self, mid: MethodId, args: &[i64], ctx: &mut Ctx<'_>) -> Result<Option<i64>, Fault> {
        assert!(ctx.depth < MAX_CALL_DEPTH, "interpreter call depth exceeded");
        // Method-entry check-point (§3.3).
        ctx.ck.checkpoint()?;
        let m = self.program.method(mid);
        debug_assert_eq!(args.len(), m.params as usize);
        self.record(mid, 0);
        let mut frame = vec![0i64; m.locals as usize];
        frame[..args.len()].copy_from_slice(args);
        self.exec_body(mid, &mut frame, ctx)
    }

    /// Executes a method body from its entry until `Return`.
    fn exec_body(
        &self,
        mid: MethodId,
        frame: &mut Vec<i64>,
        ctx: &mut Ctx<'_>,
    ) -> Result<Option<i64>, Fault> {
        let m = self.program.method(mid);
        let mut bid = 0u32;
        let mut idx = 0usize;
        loop {
            let b = m.block(bid);
            if idx < b.insts.len() {
                match &b.insts[idx] {
                    Inst::MonitorEnter { .. } => {
                        let exit = self.enter_region(
                            mid,
                            Point {
                                block: bid,
                                inst: idx,
                            },
                            frame,
                            ctx,
                        )?;
                        bid = exit.block;
                        idx = exit.inst + 1;
                    }
                    Inst::MonitorExit { .. } => {
                        unreachable!("verified IR cannot exit an unentered monitor")
                    }
                    inst => {
                        self.step(inst, frame, ctx)?;
                        idx += 1;
                    }
                }
                continue;
            }
            match &b.term {
                Terminator::Jump(t) => {
                    // Conservative back-edge heuristic for loops in
                    // invoked methods: backward jumps poll the check-point.
                    if *t <= bid {
                        ctx.ck.checkpoint()?;
                    }
                    self.record(mid, *t);
                    bid = *t;
                    idx = 0;
                }
                Terminator::Branch {
                    lhs,
                    cmp,
                    rhs,
                    then_bb,
                    else_bb,
                } => {
                    let t = if cmp.eval(frame[*lhs as usize], frame[*rhs as usize]) {
                        *then_bb
                    } else {
                        *else_bb
                    };
                    if t <= bid {
                        ctx.ck.checkpoint()?;
                    }
                    self.record(mid, t);
                    bid = t;
                    idx = 0;
                }
                Terminator::Return(v) => return Ok(v.map(|l| frame[l as usize])),
            }
        }
    }

    /// Dispatches a `monitorenter` through the region's lock plan.
    /// Returns the point of the matching `monitorexit`; the caller
    /// resumes after it.
    fn enter_region(
        &self,
        mid: MethodId,
        enter: Point,
        frame: &mut Vec<i64>,
        ctx: &mut Ctx<'_>,
    ) -> Result<Point, Fault> {
        let planned = self
            .plan
            .region_at(mid, enter)
            .expect("every monitorenter has a planned region");
        let lock_id = planned.region.lock as usize;
        match &self.locks[lock_id] {
            RuntimeLock::Tasuki(l) => {
                let tid = ThreadId::current();
                if planned.plan == LockPlan::Conventional {
                    l.enter(tid);
                } else {
                    // Would-be-elided region: same acquisition, counted
                    // as a read section (strategy-independent Table 1).
                    l.enter_read(tid);
                }
                let res = self.exec_region(mid, planned, frame, ctx);
                l.exit(tid);
                res
            }
            RuntimeLock::Solero(l) => match planned.plan {
                LockPlan::Conventional => {
                    let tid = ThreadId::current();
                    let t = l.enter_write(tid);
                    let res = self.exec_region(mid, planned, frame, ctx);
                    l.exit_write(tid, t);
                    res
                }
                LockPlan::Elide => {
                    let base = frame.clone();
                    let depth = ctx.depth;
                    let fuel: &mut u64 = ctx.fuel;
                    let (committed, exit) = l.read_only(|s| {
                        let mut work = base.clone();
                        let mut inner = Ctx {
                            ck: s,
                            // Read-only regions never write, speculative
                            // or fallback alike.
                            mode: WriteMode::Forbidden,
                            depth,
                            fuel: &mut *fuel,
                        };
                        let exit = self.exec_region(mid, planned, &mut work, &mut inner)?;
                        Ok((work, exit))
                    })?;
                    *frame = committed;
                    Ok(exit)
                }
                LockPlan::ElideMostly => {
                    let base = frame.clone();
                    let depth = ctx.depth;
                    let fuel: &mut u64 = ctx.fuel;
                    let (committed, exit) = l.read_mostly(|s| {
                        let mut work = base.clone();
                        let mut inner = Ctx {
                            ck: s,
                            mode: WriteMode::Upgrade,
                            depth,
                            fuel: &mut *fuel,
                        };
                        let exit = self.exec_region(mid, planned, &mut work, &mut inner)?;
                        Ok((work, exit))
                    })?;
                    *frame = committed;
                    Ok(exit)
                }
            },
        }
    }

    /// Executes region code from just after its `monitorenter` to the
    /// matching `monitorexit`, whose point is returned. Nested regions
    /// are entered recursively (so a directly encountered exit always
    /// belongs to this region).
    fn exec_region(
        &self,
        mid: MethodId,
        planned: &PlannedRegion,
        frame: &mut Vec<i64>,
        ctx: &mut Ctx<'_>,
    ) -> Result<Point, Fault> {
        let m = self.program.method(mid);
        let mut bid = planned.region.enter.block;
        let mut idx = planned.region.enter.inst + 1;
        loop {
            let b = m.block(bid);
            if idx < b.insts.len() {
                let pt = Point {
                    block: bid,
                    inst: idx,
                };
                match &b.insts[idx] {
                    Inst::MonitorExit { lock } => {
                        debug_assert_eq!(*lock, planned.region.lock, "verified nesting");
                        return Ok(pt);
                    }
                    Inst::MonitorEnter { .. } => {
                        debug_assert_eq!(
                            ctx.mode,
                            WriteMode::Free,
                            "classifier must not elide regions containing monitors"
                        );
                        let exit = self.enter_region(mid, pt, frame, ctx)?;
                        bid = exit.block;
                        idx = exit.inst + 1;
                    }
                    inst => {
                        self.step(inst, frame, ctx)?;
                        idx += 1;
                    }
                }
                continue;
            }
            let next = match &b.term {
                Terminator::Jump(t) => *t,
                Terminator::Branch {
                    lhs,
                    cmp,
                    rhs,
                    then_bb,
                    else_bb,
                } => {
                    if cmp.eval(frame[*lhs as usize], frame[*rhs as usize]) {
                        *then_bb
                    } else {
                        *else_bb
                    }
                }
                Terminator::Return(_) => {
                    unreachable!("verified IR cannot return inside a region")
                }
            };
            // Precise intra-region back-edges: the JIT's loop
            // check-points (§3.3).
            if planned.backedges.contains(&(bid, next)) {
                ctx.ck.checkpoint()?;
            }
            self.record(mid, next);
            bid = next;
            idx = 0;
        }
    }

    /// Executes one non-monitor instruction.
    fn step(&self, inst: &Inst, frame: &mut [i64], ctx: &mut Ctx<'_>) -> Result<(), Fault> {
        *ctx.fuel = ctx
            .fuel
            .checked_sub(1)
            .expect("interpreter fuel exhausted — non-terminating program?");
        match inst {
            Inst::Const { dst, value } => frame[*dst as usize] = *value,
            Inst::Move { dst, src } => frame[*dst as usize] = frame[*src as usize],
            Inst::BinOp { op, dst, lhs, rhs } => {
                let (a, b) = (frame[*lhs as usize], frame[*rhs as usize]);
                frame[*dst as usize] = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Fault::DivisionByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(Fault::DivisionByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                };
            }
            Inst::New { dst, class, len } => {
                self.gate_write(ctx)?;
                let r = self.heap.alloc(*class, *len).expect("shadow heap exhausted");
                frame[*dst as usize] = r.raw() as i64;
            }
            Inst::GetField {
                dst,
                obj,
                class,
                field,
            } => {
                let r = Self::as_ref(frame[*obj as usize]);
                frame[*dst as usize] = self.heap.load_i64(r, *class, *field)?;
            }
            Inst::PutField {
                obj,
                class,
                field,
                src,
            } => {
                self.gate_write(ctx)?;
                let r = Self::as_ref(frame[*obj as usize]);
                // Class check on the writer side too (genuine errors).
                let _ = self.heap.load(r, *class, *field)?;
                self.heap.store_i64(r, *field, frame[*src as usize])?;
            }
            Inst::ArrayLen { dst, arr } => {
                let r = Self::as_ref(frame[*arr as usize]);
                frame[*dst as usize] = self.heap.len_of(r)? as i64;
            }
            Inst::ArrayLoad {
                dst,
                arr,
                class,
                index,
            } => {
                let r = Self::as_ref(frame[*arr as usize]);
                let i = Self::as_index(frame[*index as usize], self.heap.len_of(r)?)?;
                frame[*dst as usize] = self.heap.load_i64(r, *class, i)?;
            }
            Inst::ArrayStore {
                arr,
                class,
                index,
                src,
            } => {
                self.gate_write(ctx)?;
                let r = Self::as_ref(frame[*arr as usize]);
                let i = Self::as_index(frame[*index as usize], self.heap.len_of(r)?)?;
                let _ = self.heap.load(r, *class, i)?;
                self.heap.store_i64(r, i, frame[*src as usize])?;
            }
            Inst::Invoke { dst, method, args } => {
                let argv: Vec<i64> = args.iter().map(|&a| frame[a as usize]).collect();
                let mut inner = Ctx {
                    ck: &mut *ctx.ck,
                    mode: ctx.mode,
                    depth: ctx.depth + 1,
                    fuel: &mut *ctx.fuel,
                };
                let r = self.call(*method, &argv, &mut inner)?;
                if let Some(d) = dst {
                    frame[*d as usize] = r.unwrap_or(0);
                }
            }
            Inst::MonitorEnter { .. } | Inst::MonitorExit { .. } => {
                unreachable!("monitor instructions are handled by the region dispatcher")
            }
        }
        Ok(())
    }

    fn gate_write(&self, ctx: &mut Ctx<'_>) -> Result<(), Fault> {
        match ctx.mode {
            WriteMode::Free => Ok(()),
            WriteMode::Upgrade => ctx.ck.ensure_write(),
            WriteMode::Forbidden => {
                unreachable!("heap write inside an elided read-only region — classifier bug")
            }
        }
    }

    #[inline]
    fn as_ref(v: i64) -> ObjRef {
        ObjRef::from_raw(v as u32)
    }

    #[inline]
    fn as_index(v: i64, len: u32) -> Result<u32, Fault> {
        if v < 0 || v >= len as i64 {
            Err(Fault::IndexOutOfBounds { index: v, len })
        } else {
            Ok(v as u32)
        }
    }
}
