//! The bytecode-like intermediate representation.
//!
//! The paper's JIT compiler inspects Java bytecode for synchronized
//! blocks and classifies them as read-only (no heap writes, no
//! side-effecting calls, no writes to locals live at region entry).
//! This IR models the relevant fragment: a register machine over `i64`
//! locals (object references are raw shadow-heap handles), heap access
//! instructions typed by [`ClassId`], structured control flow through
//! basic blocks, and `monitorenter`/`monitorexit` on statically
//! identified locks.

use core::fmt;

use solero_heap::ClassId;

/// Index of a local variable slot within a frame.
pub type LocalId = u16;
/// Index of a basic block within a method.
pub type BlockId = u32;
/// Index of a method within a [`Program`].
pub type MethodId = u32;
/// Static identity of a lock (the "monitor object") — bound to a real
/// lock by the interpreter's lock table.
pub type LockId = u32;

/// Binary arithmetic / bitwise operators. `Div` and `Rem` fault on a
/// zero divisor, like the JVM's `idiv`/`irem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; faults on zero divisor.
    Div,
    /// Remainder; faults on zero divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,
}

/// Comparison operators for [`Terminator::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Less or equal (signed).
    Le,
    /// Greater than (signed).
    Gt,
    /// Greater or equal (signed).
    Ge,
}

impl Cmp {
    /// Evaluates the comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = value`.
    Const {
        /// Destination local.
        dst: LocalId,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`.
    Move {
        /// Destination local.
        dst: LocalId,
        /// Source local.
        src: LocalId,
    },
    /// `dst = lhs <op> rhs`.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Destination local.
        dst: LocalId,
        /// Left operand local.
        lhs: LocalId,
        /// Right operand local.
        rhs: LocalId,
    },
    /// Allocates a `class` object with `len` slots; `dst` receives the
    /// handle. A heap side effect: never allowed in read-only regions.
    New {
        /// Destination local (receives the handle).
        dst: LocalId,
        /// Class of the new object.
        class: ClassId,
        /// Slot count.
        len: u32,
    },
    /// `dst = obj.field` (class-checked heap load).
    GetField {
        /// Destination local.
        dst: LocalId,
        /// Local holding the object handle.
        obj: LocalId,
        /// Expected class of the object.
        class: ClassId,
        /// Field (slot) index.
        field: u32,
    },
    /// `obj.field = src` (heap write).
    PutField {
        /// Local holding the object handle.
        obj: LocalId,
        /// Expected class of the object.
        class: ClassId,
        /// Field (slot) index.
        field: u32,
        /// Source local.
        src: LocalId,
    },
    /// `dst = arr.length`.
    ArrayLen {
        /// Destination local.
        dst: LocalId,
        /// Local holding the array handle.
        arr: LocalId,
    },
    /// `dst = arr[index]` (bounds-checked heap load).
    ArrayLoad {
        /// Destination local.
        dst: LocalId,
        /// Local holding the array handle.
        arr: LocalId,
        /// Expected class of the array object.
        class: ClassId,
        /// Local holding the index.
        index: LocalId,
    },
    /// `arr[index] = src` (heap write).
    ArrayStore {
        /// Local holding the array handle.
        arr: LocalId,
        /// Expected class of the array object.
        class: ClassId,
        /// Local holding the index.
        index: LocalId,
        /// Source local.
        src: LocalId,
    },
    /// Enters the monitor of lock `lock` — opens a synchronized region.
    MonitorEnter {
        /// Static lock identity.
        lock: LockId,
    },
    /// Exits the monitor of lock `lock` — closes a synchronized region.
    MonitorExit {
        /// Static lock identity.
        lock: LockId,
    },
    /// Calls `method` with `args`; the return value (if any) goes to
    /// `dst`.
    Invoke {
        /// Destination local for the return value.
        dst: Option<LocalId>,
        /// Callee.
        method: MethodId,
        /// Argument locals, copied into the callee's first slots.
        args: Vec<LocalId>,
    },
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `lhs <cmp> rhs`.
    Branch {
        /// Left operand local.
        lhs: LocalId,
        /// Comparison.
        cmp: Cmp,
        /// Right operand local.
        rhs: LocalId,
        /// Target when the comparison holds.
        then_bb: BlockId,
        /// Target otherwise.
        else_bb: BlockId,
    },
    /// Returns from the method, optionally with a value.
    Return(Option<LocalId>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
    /// Profile hint: this block is rarely executed. The read-mostly
    /// classifier only tolerates writes in cold blocks.
    pub cold: bool,
}

/// A method: parameter count, local-slot count, and a CFG whose entry is
/// block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Name, for diagnostics.
    pub name: String,
    /// Number of parameters (occupying locals `0..params`).
    pub params: u16,
    /// Total local slots (≥ `params`).
    pub locals: u16,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// The paper's `@SoleroReadOnly` annotation: synchronized regions in
    /// this method are trusted to be read-only, and calls *to* this
    /// method are trusted to be side-effect free.
    pub solero_read_only: bool,
}

impl Method {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (the verifier rejects such IR).
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id as usize]
    }
}

/// A whole program: a set of methods calling each other by [`MethodId`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Methods, indexed by [`MethodId`].
    pub methods: Vec<Method>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a method, returning its id.
    pub fn add(&mut self, m: Method) -> MethodId {
        self.methods.push(m);
        (self.methods.len() - 1) as MethodId
    }

    /// The method with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id as usize]
    }

    /// Looks a method up by name.
    pub fn find(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as MethodId)
    }
}

/// A point in a method: instruction `inst` of block `block`. `inst ==
/// insts.len()` designates the terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Block id.
    pub block: BlockId,
    /// Instruction index within the block (== len ⇒ the terminator).
    pub inst: usize,
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}:{}", self.block, self.inst)
    }
}

impl Inst {
    /// The local this instruction defines (writes), if any.
    pub fn def(&self) -> Option<LocalId> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Move { dst, .. }
            | Inst::BinOp { dst, .. }
            | Inst::New { dst, .. }
            | Inst::GetField { dst, .. }
            | Inst::ArrayLen { dst, .. }
            | Inst::ArrayLoad { dst, .. } => Some(*dst),
            Inst::Invoke { dst, .. } => *dst,
            Inst::PutField { .. }
            | Inst::ArrayStore { .. }
            | Inst::MonitorEnter { .. }
            | Inst::MonitorExit { .. } => None,
        }
    }

    /// The locals this instruction uses (reads).
    pub fn uses(&self) -> Vec<LocalId> {
        match self {
            Inst::Const { .. } | Inst::New { .. } | Inst::MonitorEnter { .. } | Inst::MonitorExit { .. } => {
                vec![]
            }
            Inst::Move { src, .. } => vec![*src],
            Inst::BinOp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::GetField { obj, .. } => vec![*obj],
            Inst::PutField { obj, src, .. } => vec![*obj, *src],
            Inst::ArrayLen { arr, .. } => vec![*arr],
            Inst::ArrayLoad { arr, index, .. } => vec![*arr, *index],
            Inst::ArrayStore {
                arr, index, src, ..
            } => vec![*arr, *index, *src],
            Inst::Invoke { args, .. } => args.clone(),
        }
    }

    /// True for instructions that write the shadow heap.
    pub fn is_heap_write(&self) -> bool {
        matches!(self, Inst::PutField { .. } | Inst::ArrayStore { .. } | Inst::New { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_table() {
        assert!(Cmp::Eq.eval(3, 3));
        assert!(Cmp::Ne.eval(3, 4));
        assert!(Cmp::Lt.eval(-1, 0));
        assert!(Cmp::Le.eval(0, 0));
        assert!(Cmp::Gt.eval(5, 4));
        assert!(Cmp::Ge.eval(4, 4));
        assert!(!Cmp::Lt.eval(4, 4));
    }

    #[test]
    fn def_use_sets() {
        let i = Inst::BinOp {
            op: BinOp::Add,
            dst: 2,
            lhs: 0,
            rhs: 1,
        };
        assert_eq!(i.def(), Some(2));
        assert_eq!(i.uses(), vec![0, 1]);
        let s = Inst::PutField {
            obj: 3,
            class: ClassId::new(1),
            field: 0,
            src: 4,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![3, 4]);
        assert!(s.is_heap_write());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(3).successors(), vec![3]);
        assert_eq!(Terminator::Return(None).successors(), vec![]);
        let b = Terminator::Branch {
            lhs: 0,
            cmp: Cmp::Lt,
            rhs: 1,
            then_bb: 1,
            else_bb: 2,
        };
        assert_eq!(b.successors(), vec![1, 2]);
    }

    #[test]
    fn program_find_by_name() {
        let mut p = Program::new();
        let id = p.add(Method {
            name: "foo".into(),
            params: 0,
            locals: 1,
            blocks: vec![Block {
                insts: vec![],
                term: Terminator::Return(None),
                cold: false,
            }],
            solero_read_only: false,
        });
        assert_eq!(p.find("foo"), Some(id));
        assert_eq!(p.find("bar"), None);
    }
}
