//! Lock-plan lowering.
//!
//! After classification, each synchronized region gets a **lock plan** —
//! the code shape the paper's JIT emits:
//!
//! * `ReadOnly` regions → [`LockPlan::Elide`] (Figure 7 entry/exit);
//! * `ReadMostly` regions → [`LockPlan::ElideMostly`] (Figure 17, with
//!   an in-place upgrade before each write);
//! * `Writing` regions → [`LockPlan::Conventional`] (Figure 6).
//!
//! Lowering also computes the region's intra-region **back-edges**; the
//! interpreter polls the validation check-point when traversing one,
//! modelling the JIT-inserted asynchronous check-points at loop
//! back-edges (§3.3).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::analysis::{classify_method, ClassifiedRegion, RegionClass, SyncRegion};
use crate::ir::{LockId, MethodId, Point, Program};

/// The code shape chosen for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPlan {
    /// Speculative read-only execution with validation (Figure 7).
    Elide,
    /// Speculative execution with in-place upgrade at writes (Figure 17).
    ElideMostly,
    /// Acquire/release (Figure 6).
    Conventional,
}

impl LockPlan {
    /// The plan implied by a classification.
    pub fn for_class(c: RegionClass) -> LockPlan {
        match c {
            RegionClass::ReadOnly => LockPlan::Elide,
            RegionClass::ReadMostly => LockPlan::ElideMostly,
            RegionClass::Writing => LockPlan::Conventional,
        }
    }
}

/// A region with its plan and check-point edges.
#[derive(Debug, Clone)]
pub struct PlannedRegion {
    /// The region.
    pub region: SyncRegion,
    /// Its classification.
    pub class: RegionClass,
    /// The chosen plan.
    pub plan: LockPlan,
    /// CFG edges `(from, to)` inside the region that close a loop; the
    /// interpreter checkpoints when traversing one.
    pub backedges: HashSet<(u32, u32)>,
}

/// Plans for every region of every method, keyed by the `monitorenter`
/// point.
#[derive(Debug, Clone, Default)]
pub struct ProgramPlan {
    regions: HashMap<(MethodId, Point), PlannedRegion>,
}

impl ProgramPlan {
    /// Computes the plan for a verified program.
    pub fn compute(p: &Program) -> Self {
        let mut regions = HashMap::new();
        for mid in 0..p.methods.len() as MethodId {
            for cr in classify_method(p, mid) {
                let planned = plan_region(p, mid, cr);
                regions.insert((mid, planned.region.enter), planned);
            }
        }
        ProgramPlan { regions }
    }

    /// The planned region opened by the `monitorenter` at `(mid, at)`.
    pub fn region_at(&self, mid: MethodId, at: Point) -> Option<&PlannedRegion> {
        self.regions.get(&(mid, at))
    }

    /// Iterates over all planned regions.
    pub fn iter(&self) -> impl Iterator<Item = (&(MethodId, Point), &PlannedRegion)> {
        self.regions.iter()
    }

    /// Demotes every region synchronizing on one of `locks` to
    /// [`LockPlan::Conventional`], regardless of its static class —
    /// the profile-guided override fed by
    /// [`crate::obsprofile::ObsProfile::write_heavy`]. The static
    /// classification is kept (it is still true of the code); only the
    /// plan changes. Returns how many regions were demoted.
    pub fn demote_locks(&mut self, locks: &BTreeSet<LockId>) -> usize {
        let mut demoted = 0;
        for r in self.regions.values_mut() {
            if locks.contains(&r.region.lock) && r.plan != LockPlan::Conventional {
                r.plan = LockPlan::Conventional;
                demoted += 1;
            }
        }
        demoted
    }

    /// Count of regions with each plan, for diagnostics:
    /// `(elide, elide_mostly, conventional)`.
    pub fn plan_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in self.regions.values() {
            match r.plan {
                LockPlan::Elide => c.0 += 1,
                LockPlan::ElideMostly => c.1 += 1,
                LockPlan::Conventional => c.2 += 1,
            }
        }
        c
    }
}

fn plan_region(p: &Program, mid: MethodId, cr: ClassifiedRegion) -> PlannedRegion {
    let backedges = find_backedges(p, mid, &cr.region);
    PlannedRegion {
        plan: LockPlan::for_class(cr.class),
        class: cr.class,
        region: cr.region,
        backedges,
    }
}

/// DFS back-edge detection restricted to the region's blocks.
fn find_backedges(p: &Program, mid: MethodId, region: &SyncRegion) -> HashSet<(u32, u32)> {
    let m = p.method(mid);
    let mut backedges = HashSet::new();
    let mut state: HashMap<u32, u8> = HashMap::new(); // 1 = on stack, 2 = done
    fn dfs(
        m: &crate::ir::Method,
        region: &SyncRegion,
        b: u32,
        state: &mut HashMap<u32, u8>,
        backedges: &mut HashSet<(u32, u32)>,
    ) {
        state.insert(b, 1);
        for s in m.block(b).term.successors() {
            if !region.blocks.contains(&s) {
                continue;
            }
            match state.get(&s) {
                Some(1) => {
                    backedges.insert((b, s));
                }
                Some(2) => {}
                _ => dfs(m, region, s, state, backedges),
            }
        }
        state.insert(b, 2);
    }
    dfs(m, region, region.enter.block, &mut state, &mut backedges);
    backedges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::ir::Cmp;
    use solero_heap::ClassId;

    const C: ClassId = ClassId::new(1);

    #[test]
    fn plans_follow_classes() {
        assert_eq!(LockPlan::for_class(RegionClass::ReadOnly), LockPlan::Elide);
        assert_eq!(
            LockPlan::for_class(RegionClass::ReadMostly),
            LockPlan::ElideMostly
        );
        assert_eq!(
            LockPlan::for_class(RegionClass::Writing),
            LockPlan::Conventional
        );
    }

    #[test]
    fn loop_backedge_is_found() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("scan", 2);
        let (arr, n) = (0, 1);
        let i = b.fresh_local();
        let v = b.fresh_local();
        let one = b.fresh_local();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.monitor_enter(0)
            .constant(i, 0)
            .constant(one, 1)
            .constant(v, 0) // define v inside the region: not live at entry
            .jump(head);
        b.switch_to(head).branch(i, Cmp::Lt, n, body, done);
        b.switch_to(body)
            .array_load(v, arr, C, i)
            .binop(crate::ir::BinOp::Add, i, i, one)
            .jump(head);
        b.switch_to(done).monitor_exit(0).ret(Some(v));
        let mid = p.add(b.finish());
        let plan = ProgramPlan::compute(&p);
        let enter = Point { block: 0, inst: 0 };
        let pr = plan.region_at(mid, enter).expect("region planned");
        assert_eq!(pr.plan, LockPlan::Elide);
        assert_eq!(pr.backedges.len(), 1);
        assert!(pr.backedges.contains(&(body, head)));
    }

    #[test]
    fn straight_line_region_has_no_backedges() {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("get", 1);
        let v = b.fresh_local();
        b.monitor_enter(0)
            .get_field(v, 0, C, 0)
            .monitor_exit(0)
            .ret(Some(v));
        let mid = p.add(b.finish());
        let plan = ProgramPlan::compute(&p);
        let pr = plan.region_at(mid, Point { block: 0, inst: 0 }).unwrap();
        assert!(pr.backedges.is_empty());
        assert_eq!(plan.plan_counts(), (1, 0, 0));
    }
}
