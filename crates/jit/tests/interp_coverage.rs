//! Interpreter coverage beyond the happy paths: arrays, call depth,
//! fuel, faults at every layer, and annotation-driven elision of
//! regions the analysis cannot prove.

use std::sync::Arc;

use solero::{Fault, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_jit::builder::MethodBuilder;
use solero_jit::disasm;
use solero_jit::interp::{Interpreter, RuntimeLock};
use solero_jit::ir::{BinOp, Cmp, Program};

const ARR: ClassId = ClassId::new(4);
const CELL: ClassId = ClassId::new(5);

fn interp_for(p: Program) -> (Interpreter, Arc<Heap>, Arc<SoleroLock>) {
    let heap = Arc::new(Heap::new(1 << 12));
    let lock = Arc::new(SoleroLock::new());
    let i = Interpreter::new(p, Arc::clone(&heap), vec![RuntimeLock::Solero(Arc::clone(&lock))])
        .unwrap();
    (i, heap, lock)
}

#[test]
fn array_sum_inside_elided_region() {
    // fn sum(arr) { synchronized { s=0; for i in 0..len { s += arr[i] } } }
    let mut p = Program::new();
    let mut b = MethodBuilder::new("sum", 1);
    let arr = 0;
    let n = b.fresh_local();
    let i = b.fresh_local();
    let s = b.fresh_local();
    let v = b.fresh_local();
    let one = b.fresh_local();
    let head = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    let after = b.new_block();
    b.monitor_enter(0)
        .array_len(n, arr)
        .constant(i, 0)
        .constant(s, 0)
        .constant(one, 1)
        .jump(head);
    b.switch_to(head).branch(i, Cmp::Lt, n, body, done);
    b.switch_to(body)
        .array_load(v, arr, ARR, i)
        .binop(BinOp::Add, s, s, v)
        .binop(BinOp::Add, i, i, one)
        .jump(head);
    b.switch_to(done).monitor_exit(0).jump(after);
    b.switch_to(after).ret(Some(s));
    let sum = p.add(b.finish());

    let (interp, heap, lock) = interp_for(p);
    let a = heap.alloc(ARR, 10).unwrap();
    for k in 0..10 {
        heap.store_i64(a, k, (k as i64) * 3).unwrap();
    }
    assert_eq!(
        interp.run(sum, &[a.raw() as i64]).unwrap(),
        Some((0..10).map(|k| k * 3).sum::<i64>())
    );
    assert_eq!(lock.stats().snapshot().elision_success, 1);
}

#[test]
fn out_of_bounds_array_access_is_a_genuine_fault() {
    let mut p = Program::new();
    let mut b = MethodBuilder::new("oob", 2);
    let v = b.fresh_local();
    b.monitor_enter(0)
        .array_load(v, 0, ARR, 1)
        .monitor_exit(0)
        .ret(Some(v));
    let oob = p.add(b.finish());
    let (interp, heap, _) = interp_for(p);
    let a = heap.alloc(ARR, 4).unwrap();
    assert!(matches!(
        interp.run(oob, &[a.raw() as i64, 99]),
        Err(Fault::IndexOutOfBounds { index: 99, .. })
    ));
    assert!(matches!(
        interp.run(oob, &[a.raw() as i64, -1]),
        Err(Fault::IndexOutOfBounds { index: -1, .. })
    ));
}

#[test]
#[should_panic(expected = "call depth")]
fn unbounded_recursion_is_detected() {
    let mut p = Program::new();
    let mut b = MethodBuilder::new("loop_forever", 0);
    b.invoke(None, 0, &[]).ret(None); // calls itself
    p.add(b.finish());
    let (interp, _, _) = interp_for(p);
    let _ = interp.run(0, &[]);
}

#[test]
#[should_panic(expected = "fuel exhausted")]
fn fuel_bounds_runaway_loops() {
    let mut p = Program::new();
    let mut b = MethodBuilder::new("spin", 0);
    let x = b.fresh_local();
    let head = b.new_block();
    b.constant(x, 0).jump(head);
    b.switch_to(head)
        .binop(BinOp::Add, x, x, x)
        .jump(head);
    p.add(b.finish());
    let (interp, _, _) = interp_for(p);
    let _ = interp.run_with_fuel(0, &[], 10_000);
}

#[test]
fn annotation_elides_an_unprovable_region() {
    // The callee is pure in fact but the caller writes a live-in local,
    // which the analysis must reject — unless annotated.
    fn build(annotated: bool) -> Program {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("acc", 1);
        if annotated {
            b.annotate_read_only();
        }
        let acc = b.fresh_local();
        let v = b.fresh_local();
        b.constant(acc, 5)
            .monitor_enter(0)
            .get_field(v, 0, CELL, 0)
            .binop(BinOp::Add, acc, acc, v) // acc is live at entry
            .monitor_exit(0)
            .ret(Some(acc));
        p.add(b.finish());
        p
    }

    let (plain, _, lock_plain) = interp_for(build(false));
    assert_eq!(plain.plan().plan_counts(), (0, 0, 1), "statically Writing");
    let (annotated, heap, lock_ann) = interp_for(build(true));
    assert_eq!(annotated.plan().plan_counts(), (1, 0, 0), "trusted ReadOnly");

    let cell = heap.alloc(CELL, 1).unwrap();
    heap.store_i64(cell, 0, 37).unwrap();
    assert_eq!(annotated.run(0, &[cell.raw() as i64]).unwrap(), Some(42));
    assert_eq!(lock_ann.stats().snapshot().elision_success, 1);
    let _ = lock_plain;
}

#[test]
fn disassembly_of_a_planned_program_is_stable() {
    let mut p = Program::new();
    let mut b = MethodBuilder::new("get", 1);
    let v = b.fresh_local();
    b.monitor_enter(3)
        .get_field(v, 0, CELL, 0)
        .monitor_exit(3)
        .ret(Some(v));
    p.add(b.finish());
    let plan = solero_jit::lower::ProgramPlan::compute(&p);
    let text = disasm::disassemble(&p, Some(&plan));
    assert!(text.contains("monitorenter L3            ; plan=Elide"), "{text}");
}

#[test]
fn nested_different_lock_regions_execute_correctly() {
    // synchronized(l0) { synchronized(l1) { v = obj.f } obj2.f = v }
    let mut p = Program::new();
    let mut b = MethodBuilder::new("nested", 2);
    let v = b.fresh_local();
    b.monitor_enter(0)
        .monitor_enter(1)
        .get_field(v, 0, CELL, 0)
        .monitor_exit(1)
        .put_field(1, CELL, 0, v)
        .monitor_exit(0)
        .ret(Some(v));
    let nested = p.add(b.finish());

    let heap = Arc::new(Heap::new(1 << 10));
    let l0 = Arc::new(SoleroLock::new());
    let l1 = Arc::new(SoleroLock::new());
    let interp = Interpreter::new(
        p,
        Arc::clone(&heap),
        vec![
            RuntimeLock::Solero(Arc::clone(&l0)),
            RuntimeLock::Solero(Arc::clone(&l1)),
        ],
    )
    .unwrap();
    let src = heap.alloc(CELL, 1).unwrap();
    let dst = heap.alloc(CELL, 1).unwrap();
    heap.store_i64(src, 0, 55).unwrap();
    assert_eq!(
        interp.run(nested, &[src.raw() as i64, dst.raw() as i64]).unwrap(),
        Some(55)
    );
    assert_eq!(heap.load_i64(dst, CELL, 0).unwrap(), 55);
    // Outer region writes (Conventional on l0); the inner one is
    // read-only on l1 but sits inside, so it was discovered separately.
    assert_eq!(l0.stats().snapshot().write_enters, 1);
    let inner = l1.stats().snapshot();
    assert_eq!(inner.read_enters + inner.write_enters, 1);
}
