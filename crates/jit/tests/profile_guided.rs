//! Regression test for profile-guided demotion (`obsprofile` →
//! `ProgramPlan::demote_locks`).
//!
//! A hand-written JSONL profile — every line valid under the same
//! schema the `obs_check` CI binary enforces — shows one lock to be
//! write-heavy. Re-planning must demote exactly that lock's region to
//! conventional locking and leave the read-only regions of every other
//! lock elided. A malformed profile must be rejected with the line
//! number, never silently skipped.

use std::collections::BTreeSet;

use solero_heap::ClassId;
use solero_jit::builder::MethodBuilder;
use solero_jit::ir::{LockId, Point, Program};
use solero_jit::lower::{LockPlan, ProgramPlan};
use solero_jit::obsprofile::ObsProfile;
use solero_obs::json::JsonObject;
use solero_obs::schema::validate_line;

const C: ClassId = ClassId::new(1);

/// Two methods, each a statically read-only region, on locks 0 and 7.
fn two_reader_program() -> Program {
    let mut p = Program::new();
    let mut b = MethodBuilder::new("get_quiet", 1);
    let v = b.fresh_local();
    b.monitor_enter(0).get_field(v, 0, C, 0).monitor_exit(0).ret(Some(v));
    p.add(b.finish());
    let mut b = MethodBuilder::new("get_hot", 1);
    let v = b.fresh_local();
    b.monitor_enter(7).get_field(v, 0, C, 0).monitor_exit(7).ret(Some(v));
    p.add(b.finish());
    p
}

fn event(ts: u64, lock: u64, kind: &str) -> String {
    let mut o = JsonObject::new()
        .str("type", "event")
        .num("ts_ns", ts)
        .num("thread", 0)
        .num("lock", lock)
        .str("kind", kind);
    if kind == "abort" {
        o = o.str("reason", "word_changed_at_exit");
    }
    o.finish()
}

/// The profile of a run where lock 7 was hammered by writers while
/// lock 0 stayed read-only. Includes a meta header like a real export.
fn hot_lock_profile() -> String {
    let mut lines = vec![JsonObject::new()
        .str("type", "meta")
        .num("version", 1)
        .num("threads", 4)
        .num("events_recorded", 28)
        .num("events_retained", 28)
        .finish()];
    let mut ts = 0;
    // Lock 0: pure elision.
    for _ in 0..6 {
        ts += 1;
        lines.push(event(ts, 0, "elision_attempt"));
    }
    // Lock 7: writes dominate, speculation keeps aborting.
    for _ in 0..8 {
        ts += 1;
        lines.push(event(ts, 7, "write_acquire"));
        ts += 1;
        lines.push(event(ts, 7, "write_release"));
    }
    for _ in 0..3 {
        ts += 1;
        lines.push(event(ts, 7, "elision_attempt"));
        ts += 1;
        lines.push(event(ts, 7, "abort"));
    }
    lines.join("\n")
}

#[test]
fn profile_lines_pass_the_obs_check_schema() {
    for line in hot_lock_profile().lines() {
        validate_line(line).expect("profile must satisfy the export schema");
    }
}

#[test]
fn write_heavy_lock_is_demoted_read_only_locks_stay_elided() {
    let p = two_reader_program();
    let mut plan = ProgramPlan::compute(&p);
    assert_eq!(plan.plan_counts(), (2, 0, 0), "both regions start elided");

    let prof = ObsProfile::parse(&hot_lock_profile()).expect("valid profile");
    let heavy = prof.write_heavy(5, 0.5);
    assert_eq!(heavy, BTreeSet::from([7 as LockId]), "exactly the hot lock");

    let demoted = plan.demote_locks(&heavy);
    assert_eq!(demoted, 1, "exactly one region demoted");
    assert_eq!(plan.plan_counts(), (1, 0, 1));
    let quiet = plan.region_at(0, Point { block: 0, inst: 0 }).unwrap();
    let hot = plan.region_at(1, Point { block: 0, inst: 0 }).unwrap();
    assert_eq!(quiet.plan, LockPlan::Elide, "lock 0 keeps eliding");
    assert_eq!(hot.plan, LockPlan::Conventional, "lock 7 demoted");

    // Demotion is idempotent.
    assert_eq!(plan.demote_locks(&heavy), 0);
}

#[test]
fn malformed_profile_is_rejected_with_line_number() {
    let mut profile = hot_lock_profile();
    profile.push_str("\n{\"type\":\"event\",\"ts_ns\":1,\"kind\":\"abort\"}");
    let last = profile.lines().count();
    let err = ObsProfile::parse(&profile).unwrap_err();
    assert!(
        err.starts_with(&format!("line {last}:")),
        "error must carry the offending line number: {err}"
    );

    // Unknown event kinds are schema violations too.
    let bad_kind = event(1, 0, "quantum_tunnel");
    let err = ObsProfile::parse(&bad_kind).unwrap_err();
    assert!(err.contains("kind"), "{err}");
}

#[test]
fn quiet_profile_demotes_nothing() {
    let p = two_reader_program();
    let mut plan = ProgramPlan::compute(&p);
    let quiet: String = (0..10).map(|i| event(i, 0, "elision_attempt")).collect::<Vec<_>>().join("\n");
    let prof = ObsProfile::parse(&quiet).unwrap();
    assert!(prof.write_heavy(5, 0.5).is_empty());
    assert_eq!(plan.demote_locks(&prof.write_heavy(5, 0.5)), 0);
    assert_eq!(plan.plan_counts(), (2, 0, 0));
}
