//! End-to-end tests: programs flow through verify → classify → lower →
//! interpret, and the JIT-chosen lock plans behave identically to
//! conventional locking while actually eliding.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use solero::{Fault, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_jit::builder::MethodBuilder;
use solero_jit::interp::{Interpreter, RuntimeLock};
use solero_jit::ir::{BinOp, Cmp, Program};
use solero_tasuki::TasukiLock;

const CELL: ClassId = ClassId::new(1); // [value]
const PAIR: ClassId = ClassId::new(2); // [a, b]

/// Builds: reader `get(obj)` (synchronized read), writer
/// `set(obj, v)` (synchronized write of both pair fields).
fn pair_program() -> Program {
    let mut p = Program::new();

    // fn get(obj) { synchronized(l0) { a = obj.a; b = obj.b; } return a*1000 + b; }
    let mut g = MethodBuilder::new("get", 1);
    let a = g.fresh_local();
    let b = g.fresh_local();
    let k = g.fresh_local();
    g.monitor_enter(0)
        .get_field(a, 0, PAIR, 0)
        .get_field(b, 0, PAIR, 1)
        .monitor_exit(0)
        .constant(k, 1000)
        .binop(BinOp::Mul, a, a, k)
        .binop(BinOp::Add, a, a, b)
        .ret(Some(a));
    p.add(g.finish());

    // fn set(obj, v) { synchronized(l0) { obj.a = v; obj.b = v; } }
    let mut s = MethodBuilder::new("set", 2);
    s.monitor_enter(0)
        .put_field(0, PAIR, 0, 1)
        .put_field(0, PAIR, 1, 1)
        .monitor_exit(0)
        .ret(None);
    p.add(s.finish());
    p
}

#[test]
fn plans_match_the_paper_shapes() {
    let p = pair_program();
    let heap = Arc::new(Heap::new(1 << 10));
    let lock = Arc::new(SoleroLock::new());
    let interp = Interpreter::new(p, heap, vec![RuntimeLock::Solero(lock)]).unwrap();
    // One elided (get) + one conventional (set).
    assert_eq!(interp.plan().plan_counts(), (1, 0, 1));
}

#[test]
fn elided_read_and_conventional_write_roundtrip() {
    let p = pair_program();
    let get = p.find("get").unwrap();
    let set = p.find("set").unwrap();
    let heap = Arc::new(Heap::new(1 << 10));
    let obj = heap.alloc(PAIR, 2).unwrap();
    let lock = Arc::new(SoleroLock::new());
    let interp =
        Interpreter::new(p, Arc::clone(&heap), vec![RuntimeLock::Solero(Arc::clone(&lock))])
            .unwrap();

    interp.run(set, &[obj.raw() as i64, 7]).unwrap();
    let got = interp.run(get, &[obj.raw() as i64]).unwrap();
    assert_eq!(got, Some(7 * 1000 + 7));

    let st = lock.stats().snapshot();
    assert_eq!(st.write_enters, 1, "set acquired");
    assert_eq!(st.elision_success, 1, "get elided");
}

#[test]
fn solero_and_tasuki_agree_on_results() {
    for variant in 0..2 {
        let p = pair_program();
        let get = p.find("get").unwrap();
        let set = p.find("set").unwrap();
        let heap = Arc::new(Heap::new(1 << 10));
        let obj = heap.alloc(PAIR, 2).unwrap();
        let lock = match variant {
            0 => RuntimeLock::Solero(Arc::new(SoleroLock::new())),
            _ => RuntimeLock::Tasuki(Arc::new(TasukiLock::new())),
        };
        let interp = Interpreter::new(p, Arc::clone(&heap), vec![lock]).unwrap();
        for v in [1, 5, 123] {
            interp.run(set, &[obj.raw() as i64, v]).unwrap();
            assert_eq!(
                interp.run(get, &[obj.raw() as i64]).unwrap(),
                Some(v * 1000 + v),
                "variant {variant}"
            );
        }
    }
}

#[test]
fn concurrent_interpreted_readers_see_consistent_pairs() {
    let p = pair_program();
    let get = p.find("get").unwrap();
    let set = p.find("set").unwrap();
    let heap = Arc::new(Heap::new(1 << 12));
    let obj = heap.alloc(PAIR, 2).unwrap();
    let lock = Arc::new(SoleroLock::new());
    let interp = Arc::new(
        Interpreter::new(p, Arc::clone(&heap), vec![RuntimeLock::Solero(Arc::clone(&lock))])
            .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|sc| {
        {
            let (interp, stop) = (Arc::clone(&interp), Arc::clone(&stop));
            sc.spawn(move || {
                let mut v = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    interp.run(set, &[obj.raw() as i64, v % 500]).unwrap();
                    v += 1;
                }
            });
        }
        for _ in 0..4 {
            let interp = Arc::clone(&interp);
            sc.spawn(move || {
                for _ in 0..10_000 {
                    let got = interp.run(get, &[obj.raw() as i64]).unwrap().unwrap();
                    let (a, b) = (got / 1000, got % 1000);
                    assert_eq!(a, b, "validated read saw a torn pair: {got}");
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });
    let st = lock.stats().snapshot();
    assert!(st.elision_success > 0, "{st}");
}

#[test]
fn genuine_null_dereference_propagates() {
    let mut p = Program::new();
    let mut g = MethodBuilder::new("deref_null", 0);
    let obj = g.fresh_local();
    let v = g.fresh_local();
    g.constant(obj, 0) // null handle
        .monitor_enter(0)
        .get_field(v, obj, CELL, 0)
        .monitor_exit(0)
        .ret(Some(v));
    let mid = p.add(g.finish());
    let heap = Arc::new(Heap::new(64));
    let interp =
        Interpreter::new(p, heap, vec![RuntimeLock::Solero(Arc::new(SoleroLock::new()))]).unwrap();
    assert_eq!(interp.run(mid, &[]), Err(Fault::NullPointer));
}

#[test]
fn genuine_division_by_zero_propagates() {
    let mut p = Program::new();
    let mut g = MethodBuilder::new("div", 2);
    let r = g.fresh_local();
    g.binop(BinOp::Div, r, 0, 1).ret(Some(r));
    let mid = p.add(g.finish());
    let heap = Arc::new(Heap::new(64));
    let interp =
        Interpreter::new(p, heap, vec![RuntimeLock::Solero(Arc::new(SoleroLock::new()))]).unwrap();
    assert_eq!(interp.run(mid, &[10, 2]).unwrap(), Some(5));
    assert_eq!(interp.run(mid, &[10, 0]), Err(Fault::DivisionByZero));
}

#[test]
fn read_mostly_region_upgrades_only_on_the_cold_path() {
    // fn bump_if(obj, key) {
    //   synchronized(l0) {
    //     v = obj.a;
    //     if (v == key) { /* cold */ obj.b = v + 1; }
    //   }
    // }
    let mut p = Program::new();
    let mut b = MethodBuilder::new("bump_if", 2);
    let (obj, key) = (0, 1);
    let v = b.fresh_local();
    let one = b.fresh_local();
    let hot_exit = b.new_block();
    let cold = b.new_block();
    b.monitor_enter(0)
        .get_field(v, obj, PAIR, 0)
        .branch(v, Cmp::Eq, key, cold, hot_exit);
    b.switch_to(cold)
        .constant(one, 1)
        .binop(BinOp::Add, one, v, one)
        .put_field(obj, PAIR, 1, one)
        .jump(hot_exit);
    b.mark_cold(cold);
    b.switch_to(hot_exit).monitor_exit(0).ret(None);
    let mid = p.add(b.finish());

    let heap = Arc::new(Heap::new(1 << 10));
    let obj_ref = heap.alloc(PAIR, 2).unwrap();
    heap.store_i64(obj_ref, 0, 42).unwrap();
    let lock = Arc::new(SoleroLock::new());
    let interp =
        Interpreter::new(p, Arc::clone(&heap), vec![RuntimeLock::Solero(Arc::clone(&lock))])
            .unwrap();
    assert_eq!(interp.plan().plan_counts(), (0, 1, 0), "planned ElideMostly");

    // Hot path: no upgrade, pure elision.
    interp.run(mid, &[obj_ref.raw() as i64, 7]).unwrap();
    let st = lock.stats().snapshot();
    assert_eq!(st.mostly_upgrades, 0);
    assert_eq!(st.elision_success, 1);

    // Cold path: upgrade in place, write happens.
    interp.run(mid, &[obj_ref.raw() as i64, 42]).unwrap();
    let st = lock.stats().snapshot();
    assert_eq!(st.mostly_upgrades, 1);
    assert_eq!(heap.load_i64(obj_ref, PAIR, 1).unwrap(), 43);
}

#[test]
fn region_loop_checkpoints_under_concurrent_writes() {
    // Reader: synchronized { s = 0; for i in 0..n { s += arr[i] } }
    // Writer keeps rewriting the array; the reader's back-edge
    // check-points and validation must recover every time.
    const ARR: ClassId = ClassId::new(3);
    let mut p = Program::new();
    let mut r = MethodBuilder::new("sum", 2);
    let (arr, n) = (0, 1);
    let i = r.fresh_local();
    let s = r.fresh_local();
    let v = r.fresh_local();
    let one = r.fresh_local();
    let head = r.new_block();
    let body = r.new_block();
    let done = r.new_block();
    let after = r.new_block();
    r.monitor_enter(0)
        .constant(i, 0)
        .constant(s, 0)
        .constant(one, 1)
        .jump(head);
    r.switch_to(head).branch(i, Cmp::Lt, n, body, done);
    r.switch_to(body)
        .array_load(v, arr, ARR, i)
        .binop(BinOp::Add, s, s, v)
        .binop(BinOp::Add, i, i, one)
        .jump(head);
    r.switch_to(done).monitor_exit(0).jump(after);
    r.switch_to(after).ret(Some(s));
    let sum = p.add(r.finish());

    // Writer: synchronized { for i in 0..n { arr[i] = x } }
    let mut w = MethodBuilder::new("fill", 3);
    let (arr, n, x) = (0, 1, 2);
    let i = w.fresh_local();
    let one = w.fresh_local();
    let head = w.new_block();
    let body = w.new_block();
    let done = w.new_block();
    let after = w.new_block();
    w.monitor_enter(0).constant(i, 0).constant(one, 1).jump(head);
    w.switch_to(head).branch(i, Cmp::Lt, n, body, done);
    w.switch_to(body)
        .array_store(arr, ARR, i, x)
        .binop(BinOp::Add, i, i, one)
        .jump(head);
    w.switch_to(done).monitor_exit(0).jump(after);
    w.switch_to(after).ret(None);
    let fill = p.add(w.finish());

    const N: i64 = 64;
    let heap = Arc::new(Heap::new(1 << 12));
    let a = heap.alloc(ARR, N as u32).unwrap();
    let lock = Arc::new(SoleroLock::new());
    let interp = Arc::new(
        Interpreter::new(p, Arc::clone(&heap), vec![RuntimeLock::Solero(Arc::clone(&lock))])
            .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|sc| {
        {
            let (interp, stop) = (Arc::clone(&interp), Arc::clone(&stop));
            sc.spawn(move || {
                let mut x = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    interp.run(fill, &[a.raw() as i64, N, x]).unwrap();
                    x += 1;
                }
            });
        }
        for _ in 0..3 {
            let interp = Arc::clone(&interp);
            sc.spawn(move || {
                for _ in 0..2_000 {
                    let s = interp.run(sum, &[a.raw() as i64, N]).unwrap().unwrap();
                    // A validated sum must be N * x for some fill value x.
                    assert_eq!(s % N, 0, "torn array sum {s}");
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });
    let st = lock.stats().snapshot();
    assert!(st.elision_success > 0, "{st}");
}

#[test]
fn deep_call_chains_inside_elided_regions() {
    // Pure helper chain: f3(x) = x+1; f2 = f3(f3(x)); region calls f2.
    let mut p = Program::new();
    let mut f3 = MethodBuilder::new("f3", 1);
    let r = f3.fresh_local();
    let one = f3.fresh_local();
    f3.constant(one, 1).binop(BinOp::Add, r, 0, one).ret(Some(r));
    let f3_id = p.add(f3.finish());

    let mut f2 = MethodBuilder::new("f2", 1);
    let t = f2.fresh_local();
    f2.invoke(Some(t), f3_id, &[0]).invoke(Some(t), f3_id, &[t]).ret(Some(t));
    let f2_id = p.add(f2.finish());

    let mut m = MethodBuilder::new("entry", 1);
    let out = m.fresh_local();
    m.monitor_enter(0)
        .invoke(Some(out), f2_id, &[0])
        .monitor_exit(0)
        .ret(Some(out));
    let entry = p.add(m.finish());

    let heap = Arc::new(Heap::new(64));
    let lock = Arc::new(SoleroLock::new());
    let interp =
        Interpreter::new(p, heap, vec![RuntimeLock::Solero(Arc::clone(&lock))]).unwrap();
    assert_eq!(interp.plan().plan_counts(), (1, 0, 0), "pure calls elide");
    assert_eq!(interp.run(entry, &[40]).unwrap(), Some(42));
    assert_eq!(lock.stats().snapshot().elision_success, 1);
}

#[test]
fn tiered_recompilation_promotes_rare_writes() {
    use solero_jit::profile::Profile;

    // synchronized { v = obj.a; if (v == key) { obj.b = v } } — no
    // static cold marks; only a profile can prove the write is rare.
    fn build() -> (Program, u32) {
        let mut p = Program::new();
        let mut b = MethodBuilder::new("lookup", 2);
        let (obj, key) = (0, 1);
        let v = b.fresh_local();
        let exit_bb = b.new_block();
        let write_bb = b.new_block();
        b.monitor_enter(0)
            .get_field(v, obj, PAIR, 0)
            .branch(v, Cmp::Eq, key, write_bb, exit_bb);
        b.switch_to(write_bb).put_field(obj, PAIR, 1, v).jump(exit_bb);
        b.switch_to(exit_bb).monitor_exit(0).ret(None);
        let mid = p.add(b.finish());
        (p, mid)
    }

    let heap = Arc::new(Heap::new(1 << 10));
    let obj = heap.alloc(PAIR, 2).unwrap();
    heap.store_i64(obj, 0, 42).unwrap();

    // Tier 1: conventional execution with profiling.
    let (mut program, lookup) = build();
    let lock1 = Arc::new(SoleroLock::new());
    let mut tier1 = Interpreter::new(
        program.clone(),
        Arc::clone(&heap),
        vec![RuntimeLock::Solero(Arc::clone(&lock1))],
    )
    .unwrap();
    assert_eq!(tier1.plan().plan_counts(), (0, 0, 1), "statically Writing");
    let profile = Arc::new(Profile::for_program(&program));
    tier1.attach_profile(Arc::clone(&profile));
    for i in 0..5_000 {
        // key=42 matches (and writes) only once in a while.
        let key = if i % 500 == 0 { 42 } else { 7 };
        tier1.run(lookup, &[obj.raw() as i64, key]).unwrap();
    }
    assert_eq!(
        lock1.stats().snapshot().write_enters,
        5_000,
        "tier 1 always acquires"
    );

    // Tier 2: re-plan with the profile — the region becomes ReadMostly.
    profile.mark_cold(&mut program, 0.05);
    let lock2 = Arc::new(SoleroLock::new());
    let tier2 = Interpreter::new(
        program,
        Arc::clone(&heap),
        vec![RuntimeLock::Solero(Arc::clone(&lock2))],
    )
    .unwrap();
    assert_eq!(tier2.plan().plan_counts(), (0, 1, 0), "promoted to ElideMostly");
    for i in 0..5_000 {
        let key = if i % 500 == 0 { 42 } else { 7 };
        tier2.run(lookup, &[obj.raw() as i64, key]).unwrap();
    }
    let st = lock2.stats().snapshot();
    assert_eq!(st.mostly_upgrades, 10, "only the rare hits upgraded");
    assert_eq!(st.elision_success, 4_990, "the common path elided");
    assert_eq!(heap.load_i64(obj, PAIR, 1).unwrap(), 42, "writes landed");
}
