//! Differential property testing of the whole JIT pipeline.
//!
//! Random structured programs (arithmetic, field reads, optional field
//! writes, bounded loops, all inside a synchronized region) are run
//! under the conventional tasuki lock and under SOLERO; results and
//! final heap state must agree, and the classifier's verdict must match
//! a reference predicate ("did the generator emit a write?").

use std::sync::Arc;

use solero::SoleroLock;
use solero_heap::{ClassId, Heap};
use solero_jit::analysis::{classify_method, RegionClass};
use solero_jit::builder::MethodBuilder;
use solero_jit::interp::{Interpreter, RuntimeLock};
use solero_jit::ir::{BinOp, Cmp, Program};
use solero_jit::verify::verify_program;
use solero_tasuki::TasukiLock;
use solero_testkit::{forall, Gen, TestRng};

/// Object layout used by generated programs: 4 data fields.
const OBJ: ClassId = ClassId::new(7);
const FIELDS: u32 = 4;

/// One generated operation inside the synchronized region.
#[derive(Debug, Clone)]
enum OpSpec {
    /// `scratch[d] = constant`
    Const(u8, i64),
    /// `scratch[d] = scratch[a] <op> scratch[b]` (no div: keep it
    /// fault-free so results compare exactly)
    Arith(u8, u8, u8, u8),
    /// `scratch[d] = obj.field`
    Read(u8, u8),
    /// `obj.field = scratch[s]` — makes the region Writing.
    Write(u8, u8),
    /// `for i in 0..n { scratch[d] ^= obj.field }`
    LoopRead(u8, u8, u8),
}

const SCRATCH: u8 = 4;

fn gen_op(rng: &mut TestRng, allow_writes: bool) -> OpSpec {
    let kinds = if allow_writes { 5u32 } else { 4 };
    match rng.gen_range(0..kinds) {
        0 => OpSpec::Const(rng.gen_range(0..SCRATCH), rng.gen_range(-100i64..100)),
        1 => OpSpec::Arith(
            rng.gen_range(0..SCRATCH),
            rng.gen_range(0..SCRATCH),
            rng.gen_range(0..SCRATCH),
            rng.gen_range(0u8..3),
        ),
        2 => OpSpec::Read(rng.gen_range(0..SCRATCH), rng.gen_range(0..FIELDS as u8)),
        3 => OpSpec::LoopRead(
            rng.gen_range(0..SCRATCH),
            rng.gen_range(0..FIELDS as u8),
            rng.gen_range(1u8..6),
        ),
        _ => OpSpec::Write(rng.gen_range(0..FIELDS as u8), rng.gen_range(0..SCRATCH)),
    }
}

/// `n ∈ [0, hi)` generated ops, `n` shrink-scaled through [`Gen::size`].
fn gen_ops(g: &mut Gen, hi: usize, allow_writes: bool) -> Vec<OpSpec> {
    let n = g.size(0, hi);
    (0..n).map(|_| gen_op(g.rng(), allow_writes)).collect()
}

/// Builds `fn main(obj) { synchronized(l0) { ops } return mix(scratch) }`.
fn build_program(ops: &[OpSpec]) -> (Program, bool) {
    let mut has_write = false;
    let mut b = MethodBuilder::new("generated", 1);
    let obj = 0;
    let scratch: Vec<_> = (0..SCRATCH).map(|_| b.fresh_local()).collect();
    b.monitor_enter(0);
    // Initialize scratch inside the region so nothing is live at entry.
    for (i, &s) in scratch.iter().enumerate() {
        b.constant(s, i as i64 + 1);
    }
    for op in ops {
        match *op {
            OpSpec::Const(d, v) => {
                b.constant(scratch[d as usize], v);
            }
            OpSpec::Arith(d, x, y, o) => {
                let op = match o {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    _ => BinOp::Xor,
                };
                b.binop(op, scratch[d as usize], scratch[x as usize], scratch[y as usize]);
            }
            OpSpec::Read(d, f) => {
                b.get_field(scratch[d as usize], obj, OBJ, f as u32);
            }
            OpSpec::Write(f, s) => {
                has_write = true;
                b.put_field(obj, OBJ, f as u32, scratch[s as usize]);
            }
            OpSpec::LoopRead(d, f, n) => {
                let i = b.fresh_local();
                let bound = b.fresh_local();
                let one = b.fresh_local();
                let tmp = b.fresh_local();
                b.constant(i, 0).constant(bound, n as i64).constant(one, 1);
                let head = b.new_block();
                let body = b.new_block();
                let done = b.new_block();
                b.jump(head);
                b.switch_to(head).branch(i, Cmp::Lt, bound, body, done);
                b.switch_to(body)
                    .get_field(tmp, obj, OBJ, f as u32)
                    .binop(BinOp::Xor, scratch[d as usize], scratch[d as usize], tmp)
                    .binop(BinOp::Add, i, i, one)
                    .jump(head);
                b.switch_to(done);
            }
        }
    }
    b.monitor_exit(0);
    // Fold the scratch registers into one observable result.
    let acc = b.fresh_local();
    b.mov(acc, scratch[0]);
    for &s in &scratch[1..] {
        b.binop(BinOp::Xor, acc, acc, s);
    }
    b.ret(Some(acc));
    let mut p = Program::new();
    p.add(b.finish());
    (p, has_write)
}

fn run_under(
    p: &Program,
    lock: RuntimeLock,
    init: &[i64],
) -> (Option<i64>, Vec<i64>) {
    let heap = Arc::new(Heap::new(1 << 10));
    let obj = heap.alloc(OBJ, FIELDS).unwrap();
    for (i, &v) in init.iter().enumerate() {
        heap.store_i64(obj, i as u32, v).unwrap();
    }
    let interp = Interpreter::new(p.clone(), Arc::clone(&heap), vec![lock]).unwrap();
    let r = interp
        .run_with_fuel(0, &[obj.raw() as i64], 1_000_000)
        .unwrap();
    let finals = (0..FIELDS)
        .map(|f| heap.load_i64(obj, OBJ, f).unwrap())
        .collect();
    (r, finals)
}

#[test]
fn generated_programs_verify() {
    forall(128, 0x11E1_01, |g| {
        let ops = gen_ops(g, 12, true);
        let (p, _) = build_program(&ops);
        assert_eq!(verify_program(&p), Ok(()));
    });
}

#[test]
fn classifier_matches_reference_predicate() {
    forall(128, 0x11E1_02, |g| {
        let ops = gen_ops(g, 12, true);
        let (p, has_write) = build_program(&ops);
        let classes = classify_method(&p, 0);
        assert_eq!(classes.len(), 1);
        // No cold marks ⇒ the only possible classes are ReadOnly and
        // Writing, decided exactly by the presence of a heap write.
        let expected = if has_write { RegionClass::Writing } else { RegionClass::ReadOnly };
        assert_eq!(classes[0].class, expected);
    });
}

#[test]
fn solero_and_tasuki_execute_identically() {
    forall(128, 0x11E1_03, |g| {
        let ops = gen_ops(g, 12, true);
        let init: Vec<i64> = (0..4).map(|_| g.gen_range(-50i64..50)).collect();
        let (p, has_write) = build_program(&ops);
        let solero_lock = Arc::new(SoleroLock::new());
        let got_solero = run_under(&p, RuntimeLock::Solero(Arc::clone(&solero_lock)), &init);
        let got_tasuki = run_under(&p, RuntimeLock::Tasuki(Arc::new(TasukiLock::new())), &init);
        assert_eq!(&got_solero, &got_tasuki, "lock choice changed the semantics");
        // Read-only programs must actually elide under SOLERO.
        if !has_write {
            assert_eq!(solero_lock.stats().snapshot().elision_success, 1);
        } else {
            assert_eq!(solero_lock.stats().snapshot().write_enters, 1);
        }
    });
}

#[test]
fn elided_programs_elide_on_every_repetition() {
    forall(128, 0x11E1_04, |g| {
        let ops = gen_ops(g, 10, false);
        let reps = g.size(1, 20);
        let (p, has_write) = build_program(&ops);
        assert!(!has_write);
        let heap = Arc::new(Heap::new(1 << 10));
        let obj = heap.alloc(OBJ, FIELDS).unwrap();
        let lock = Arc::new(SoleroLock::new());
        let interp = Interpreter::new(
            p,
            Arc::clone(&heap),
            vec![RuntimeLock::Solero(Arc::clone(&lock))],
        ).unwrap();
        let first = interp.run_with_fuel(0, &[obj.raw() as i64], 1_000_000).unwrap();
        for _ in 1..reps {
            let again = interp.run_with_fuel(0, &[obj.raw() as i64], 1_000_000).unwrap();
            assert_eq!(again, first, "read-only program must be deterministic");
        }
        let st = lock.stats().snapshot();
        assert_eq!(st.elision_success, reps as u64);
        assert_eq!(st.elision_failure, 0);
        assert_eq!(st.write_enters, 0);
    });
}
