//! `solero-store` — a sharded in-memory **MVCC snapshot store** over the
//! [`solero_heap`] shadow heap, read through **elided read-only critical
//! sections**.
//!
//! Every workload elsewhere in the workspace is one of the paper's
//! microbenches; this crate is the service-shaped one: a versioned
//! key-value store whose read path looks like production traffic
//! (point-gets, bounded range-scans, whole-store checkpoints) and whose
//! synchronization is exactly the strategy fleet under evaluation.
//!
//! # Architecture (DESIGN.md §12)
//!
//! The key space `[0, keys)` is **range-sharded**. Each shard owns
//!
//! * a [`solero::DynSyncStrategy`] lock (any fleet contender, boxed),
//! * a seqlock-style **epoch counter** (odd = install in progress;
//!   the shard *version* is `epoch >> 1`),
//! * a directory object whose slots point at fixed-width **bucket**
//!   objects holding `[presence bitmap, v0, v1, …]`.
//!
//! Writers never mutate a live bucket. A write batch builds new bucket
//! copies off to the side (**copy-on-write**), then runs the install
//! handshake under the shard's write lock: bump the epoch to odd,
//! swing the directory slots, bump the epoch to even, free the old
//! buckets. Readers run as elided read-only sections that capture the
//! epoch at entry, read values, and validate **both** the lock word
//! (the paper's machinery) and epoch stability at exit. Instability
//! surfaces as [`Fault::Inconsistent`], which the elision driver
//! classifies as an `async_revalidation_fail` abort and retries — the
//! store adds no recovery machinery of its own, it rides the existing
//! taxonomy.
//!
//! A validated snapshot is therefore **single-epoch by construction**:
//! the background checkpointer calls [`KvStore::checkpoint`] and gets a
//! cut in which every shard's pairs belong to exactly the version the
//! snapshot is tagged with — never a mix of two installs. The model
//! checker drains this claim under DFS, DPOR and TSO store buffers
//! (`crates/mc/tests/store_mc.rs`).
//!
//! # Quick start
//!
//! ```
//! use solero::SoleroStrategy;
//! use solero_store::{KvStore, StoreConfig};
//!
//! let store = KvStore::new(StoreConfig::new(1024), SoleroStrategy::new);
//! store.put(7, 70).unwrap();
//! assert_eq!(store.get(7).unwrap(), Some(70));
//!
//! // Bounded range-scan: one elided section (and one validation) per
//! // shard segment, not one per key.
//! assert_eq!(store.scan(0, 16).unwrap(), vec![(7, 70)]);
//!
//! // Whole-store checkpoint: every shard snapshot is epoch-tagged and
//! // internally single-epoch.
//! let cut = store.checkpoint().unwrap();
//! assert_eq!(cut.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod shard;
mod store;

pub use store::{KvStore, ShardSnapshot, StoreCheckpoint, StoreConfig};

pub use solero_heap::{Heap, ObjRef};
pub use solero_runtime::fault::Fault;
