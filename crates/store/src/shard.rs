//! One shard: a strategy lock, an epoch counter, and a COW bucket
//! directory. All cross-thread visibility flows through the
//! `solero-sync` facade so the model checker sees every step of the
//! install handshake.

use std::collections::BTreeMap;

use solero::{BoxedStrategy, Fault};
use solero_heap::{ClassId, Heap, ObjRef};
use solero_sync::atomic::{fence, AtomicU64, Ordering};

/// Directory object: one `ObjRef` slot per bucket.
pub(crate) const DIR_CLASS: ClassId = ClassId::new(17);
/// Bucket object: slot 0 = presence bitmap, slots `1..=width` = values.
pub(crate) const BUCKET_CLASS: ClassId = ClassId::new(18);

/// A write operation already routed to this shard: `Some` = put,
/// `None` = remove.
pub(crate) type ShardOp = (i64, Option<i64>);

pub(crate) struct Shard {
    pub(crate) strat: BoxedStrategy,
    /// Seqlock epoch: odd while a writer is swinging directory slots,
    /// even otherwise. Version = `epoch >> 1`.
    epoch: AtomicU64,
    dir: ObjRef,
    pub(crate) base: i64,
    pub(crate) keys: i64,
    width: u32,
}

impl Shard {
    /// Allocates the directory and one empty bucket per slot.
    pub(crate) fn new(
        heap: &Heap,
        strat: BoxedStrategy,
        base: i64,
        keys: i64,
        width: u32,
    ) -> Self {
        let buckets = ((keys + width as i64 - 1) / width as i64) as u32;
        let dir = heap
            .alloc(DIR_CLASS, buckets)
            .expect("store heap sized for its own directory");
        for b in 0..buckets {
            let bucket = heap
                .alloc(BUCKET_CLASS, 1 + width)
                .expect("store heap sized for its own buckets");
            // Setup-time plain stores: nothing is shared yet.
            heap.store_plain(bucket, 0, 0).expect("fresh bucket");
            heap.store_ref(dir, b, bucket).expect("fresh directory");
        }
        Shard {
            strat,
            epoch: AtomicU64::new(0),
            dir,
            base,
            keys,
            width,
        }
    }

    /// Stable version: completed installs only.
    pub(crate) fn version(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst) >> 1
    }

    fn slot_of(&self, key: i64) -> (u32, u32) {
        debug_assert!(key >= self.base && key < self.base + self.keys);
        let off = (key - self.base) as u64;
        ((off / self.width as u64) as u32, (off % self.width as u64) as u32)
    }

    /// Epoch capture at section entry. An odd value means an install is
    /// mid-flight; returning [`Fault::Inconsistent`] hands the attempt
    /// to the elision driver, which classifies it as an
    /// `async_revalidation_fail` abort and retries.
    fn epoch_enter(&self) -> Result<u64, Fault> {
        let e = self.epoch.load(Ordering::SeqCst);
        if e & 1 == 1 {
            return Err(Fault::Inconsistent);
        }
        Ok(e)
    }

    /// Epoch re-validation at section exit: the snapshot is discarded
    /// unless no install started since entry. The fence keeps the data
    /// loads above from sinking below the epoch re-read.
    fn epoch_exit(&self, entry: u64) -> Result<(), Fault> {
        fence(Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) != entry {
            return Err(Fault::Inconsistent);
        }
        Ok(())
    }

    /// Speculative value load; every heap fault here can be a
    /// speculation artifact (recycled bucket) and is settled by the
    /// driver's word validation.
    fn load_value(&self, heap: &Heap, key: i64) -> Result<Option<i64>, Fault> {
        let (b, i) = self.slot_of(key);
        let bucket = heap.load_ref(self.dir, DIR_CLASS, b)?;
        let bits = heap.load(bucket, BUCKET_CLASS, 0)?;
        if bits >> i & 1 == 0 {
            return Ok(None);
        }
        Ok(Some(heap.load_i64(bucket, BUCKET_CLASS, 1 + i)?))
    }

    /// Elided point-get.
    pub(crate) fn get(&self, heap: &Heap, key: i64) -> Result<Option<i64>, Fault> {
        self.strat.read_with(|ck| {
            let e = self.epoch_enter()?;
            let v = self.load_value(heap, key)?;
            ck.checkpoint()?;
            self.epoch_exit(e)?;
            Ok(v)
        })
    }

    /// Elided scan of `[lo, hi)` (shard-local bounds): one section and
    /// **one** epoch validation for the whole segment. Present pairs
    /// are appended in ascending key order.
    pub(crate) fn scan(&self, heap: &Heap, lo: i64, hi: i64) -> Result<Vec<(i64, i64)>, Fault> {
        debug_assert!(lo >= self.base && hi <= self.base + self.keys && lo <= hi);
        self.strat.read_with(|ck| {
            let e = self.epoch_enter()?;
            let mut pairs = Vec::new();
            let mut key = lo;
            while key < hi {
                let (b, i0) = self.slot_of(key);
                let bucket = heap.load_ref(self.dir, DIR_CLASS, b)?;
                let bits = heap.load(bucket, BUCKET_CLASS, 0)?;
                let last = (self.width - 1).min((hi - 1 - self.base) as u32
                    - b * self.width);
                for i in i0..=last {
                    if bits >> i & 1 == 1 {
                        let k = self.base + (b * self.width + i) as i64;
                        pairs.push((k, heap.load_i64(bucket, BUCKET_CLASS, 1 + i)?));
                    }
                }
                // One check-point per bucket bounds how stale a doomed
                // speculation can run, without per-key cost.
                ck.checkpoint()?;
                key = self.base + ((b + 1) * self.width) as i64;
            }
            self.epoch_exit(e)?;
            Ok(pairs)
        })
    }

    /// Elided whole-shard snapshot, tagged with the validated version.
    pub(crate) fn snapshot(&self, heap: &Heap) -> Result<(u64, Vec<(i64, i64)>), Fault> {
        self.strat.read_with(|ck| {
            let e = self.epoch_enter()?;
            let mut pairs = Vec::new();
            let buckets = ((self.keys + self.width as i64 - 1) / self.width as i64) as u32;
            for b in 0..buckets {
                let bucket = heap.load_ref(self.dir, DIR_CLASS, b)?;
                let bits = heap.load(bucket, BUCKET_CLASS, 0)?;
                let last = (self.width - 1).min((self.keys - 1) as u32 - b * self.width);
                for i in 0..=last {
                    if bits >> i & 1 == 1 {
                        let k = self.base + (b * self.width + i) as i64;
                        pairs.push((k, heap.load_i64(bucket, BUCKET_CLASS, 1 + i)?));
                    }
                }
                ck.checkpoint()?;
            }
            self.epoch_exit(e)?;
            Ok((e >> 1, pairs))
        })
    }

    /// One write batch as one write section + one epoch bump.
    pub(crate) fn apply(&self, heap: &Heap, ops: &[ShardOp]) -> Result<(), Fault> {
        self.strat.write_with(|| self.apply_locked(heap, ops))
    }

    /// Put returning the previous value (read under the same lock).
    pub(crate) fn put(&self, heap: &Heap, key: i64, val: Option<i64>) -> Result<Option<i64>, Fault> {
        self.strat.write_with(|| {
            let old = self.load_value(heap, key)?;
            self.apply_locked(heap, &[(key, val)])?;
            Ok(old)
        })
    }

    /// The COW-install/epoch-bump handshake. Caller holds the shard's
    /// write lock (runs inside a `write_with` section).
    fn apply_locked(&self, heap: &Heap, ops: &[ShardOp]) -> Result<(), Fault> {
        if ops.is_empty() {
            return Ok(());
        }
        // Route each op to its bucket; later duplicates win.
        let mut by_bucket: BTreeMap<u32, Vec<(u32, Option<i64>)>> = BTreeMap::new();
        for &(key, val) in ops {
            assert!(
                key >= self.base && key < self.base + self.keys,
                "key {key} outside shard range [{}, {})",
                self.base,
                self.base + self.keys
            );
            let (b, i) = self.slot_of(key);
            by_bucket.entry(b).or_default().push((i, val));
        }
        // Build phase: full bucket copies, invisible to readers. Plain
        // stores suffice — publication happens via the directory swing
        // and the epoch RMWs below.
        let mut installs: Vec<(u32, ObjRef, ObjRef)> = Vec::with_capacity(by_bucket.len());
        for (b, slot_ops) in by_bucket {
            let old = heap.load_ref(self.dir, DIR_CLASS, b)?;
            let fresh = heap.alloc(BUCKET_CLASS, 1 + self.width).unwrap_or_else(|_| {
                panic!("store heap exhausted mid-write: grow StoreConfig::new(keys)")
            });
            let mut bits = heap.load(old, BUCKET_CLASS, 0)?;
            for i in 0..self.width {
                let v = heap.load_untyped(old, 1 + i)?;
                heap.store_plain(fresh, 1 + i, v)?;
            }
            for (i, val) in slot_ops {
                match val {
                    Some(v) => {
                        bits |= 1 << i;
                        heap.store_plain(fresh, 1 + i, v as u64)?;
                    }
                    None => bits &= !(1 << i),
                }
            }
            heap.store(fresh, 0, bits)?;
            installs.push((b, old, fresh));
        }
        // Install phase. Odd epoch first: any reader that overlaps the
        // directory swings sees odd at entry or a changed value at
        // exit, so no snapshot can mix two versions. The `SeqCst` RMWs
        // also fence the build-phase stores on TSO — by the time the
        // even bump is visible, every new bucket is.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for &(b, _, fresh) in &installs {
            heap.store_ref(self.dir, b, fresh)?;
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Old buckets are freed only after the new version is visible;
        // a straggling reader touching one faults on the recycled
        // generation and the driver retries it.
        for &(_, old, _) in &installs {
            heap.free(old);
        }
        Ok(())
    }
}
