//! The public store: range-sharded key space, per-shard elided
//! sections, whole-store checkpoints.

use std::sync::Arc;

use solero::{BoxedStrategy, Fault, SyncStrategy};
use solero_heap::Heap;
use solero_runtime::stats::StatsSnapshot;

use crate::shard::{Shard, ShardOp};

/// Store shape: key space, shard count, COW granularity.
///
/// # Examples
///
/// ```
/// use solero_store::StoreConfig;
///
/// let cfg = StoreConfig::new(1 << 20).with_shards(64);
/// assert_eq!(cfg.keys, 1 << 20);
/// assert_eq!(cfg.shards, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Key space `[0, keys)`.
    pub keys: i64,
    /// Number of range shards (each with its own lock and epoch).
    pub shards: usize,
    /// Keys per copy-on-write bucket (1–63: the presence bitmap plus
    /// the bucket's in-range guard share one word).
    pub bucket_width: u32,
}

impl StoreConfig {
    /// Defaults: 8 shards, 16-key buckets.
    pub fn new(keys: i64) -> Self {
        StoreConfig {
            keys,
            shards: 8,
            bucket_width: 16,
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the COW bucket width.
    pub fn with_bucket_width(mut self, width: u32) -> Self {
        self.bucket_width = width;
        self
    }

    fn validate(&self) {
        assert!(self.keys >= 1, "empty key space");
        assert!(
            self.shards >= 1 && self.shards as i64 <= self.keys,
            "need 1..=keys shards, got {} for {} keys",
            self.shards,
            self.keys
        );
        assert!(
            (1..=63).contains(&self.bucket_width),
            "bucket width must be 1..=63, got {}",
            self.bucket_width
        );
    }

    /// Keys per shard (the last shard may own fewer).
    fn span(&self) -> i64 {
        (self.keys + self.shards as i64 - 1) / self.shards as i64
    }

    /// Heap words to pre-size: directory + buckets, ×3 for COW churn
    /// (a whole-shard batch transiently doubles that shard's buckets),
    /// plus slack for headers.
    fn heap_words(&self) -> usize {
        let span = self.span();
        let buckets_per_shard = ((span + self.bucket_width as i64 - 1) / self.bucket_width as i64) as usize;
        let total_buckets = buckets_per_shard * self.shards;
        let dir = self.shards * (buckets_per_shard + 3);
        let buckets = total_buckets * (self.bucket_width as usize + 4);
        (dir + 3 * buckets + (1 << 12)).next_power_of_two()
    }
}

/// One shard's validated, epoch-tagged snapshot: every pair belongs to
/// exactly `version` — never a mix of two installs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The shard version the pairs were validated against.
    pub version: u64,
    /// Present `(key, value)` pairs in ascending key order.
    pub pairs: Vec<(i64, i64)>,
}

/// A whole-store cut: one validated [`ShardSnapshot`] per shard, taken
/// by the background checkpointer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreCheckpoint {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl StoreCheckpoint {
    /// Total pairs across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.pairs.len()).sum()
    }

    /// True when no shard holds any pair.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cut's version vector, in shard order.
    pub fn versions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.version).collect()
    }

    /// Point lookup inside the cut.
    pub fn get(&self, key: i64) -> Option<i64> {
        self.shards.iter().find_map(|s| {
            s.pairs
                .binary_search_by_key(&key, |&(k, _)| k)
                .ok()
                .map(|i| s.pairs[i].1)
        })
    }
}

/// The sharded MVCC snapshot store. See the crate docs for the
/// protocol; see [`StoreConfig`] for the shape knobs.
pub struct KvStore {
    heap: Arc<Heap>,
    shards: Vec<Shard>,
    cfg: StoreConfig,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("strategy", &self.name())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl KvStore {
    /// Builds an empty store; the strategy factory is called once per
    /// shard. Generic for call-site convenience, boxed internally.
    pub fn new<S: SyncStrategy + 'static>(cfg: StoreConfig, make: impl Fn() -> S) -> Self {
        Self::new_boxed(cfg, || Box::new(make()))
    }

    /// Builds the store from an already-boxed strategy factory.
    pub fn new_boxed(cfg: StoreConfig, make: impl Fn() -> BoxedStrategy) -> Self {
        cfg.validate();
        let heap = Arc::new(Heap::new(cfg.heap_words()));
        let span = cfg.span();
        let shards = (0..cfg.shards)
            .map(|s| {
                let base = s as i64 * span;
                let keys = span.min(cfg.keys - base);
                Shard::new(&heap, make(), base, keys, cfg.bucket_width)
            })
            .collect();
        KvStore { heap, shards, cfg }
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The backing heap (read-only view; exposed for integrity checks).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Strategy name (identical across shards).
    pub fn name(&self) -> &'static str {
        self.shards[0].strat.name()
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: i64) -> usize {
        self.check_key(key);
        (key / self.cfg.span()) as usize
    }

    /// The stable (fully installed) version of shard `s`.
    pub fn version(&self, s: usize) -> u64 {
        self.shards[s].version()
    }

    fn check_key(&self, key: i64) {
        assert!(
            (0..self.cfg.keys).contains(&key),
            "key {key} outside the store's key space [0, {})",
            self.cfg.keys
        );
    }

    /// Elided point-get.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only; speculation artifacts (including epoch
    /// instability) are retried by the elision driver.
    ///
    /// # Panics
    ///
    /// If `key` is outside `[0, keys)`.
    pub fn get(&self, key: i64) -> Result<Option<i64>, Fault> {
        self.check_key(key);
        self.shards[self.shard_of(key)].get(&self.heap, key)
    }

    /// Bounded range-scan of `[start, start+len)`, clamped to the key
    /// space: one elided section (one epoch validation) per shard
    /// segment, concatenated in key order. Consistency is per shard —
    /// segments from different shards may sit at different versions,
    /// exactly like the checkpoint's version vector.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only.
    pub fn scan(&self, start: i64, len: usize) -> Result<Vec<(i64, i64)>, Fault> {
        let lo = start.clamp(0, self.cfg.keys);
        let hi = start
            .saturating_add(len as i64)
            .clamp(0, self.cfg.keys);
        let mut out = Vec::new();
        let mut key = lo;
        while key < hi {
            let s = &self.shards[(key / self.cfg.span()) as usize];
            let seg_hi = hi.min(s.base + s.keys);
            out.extend(s.scan(&self.heap, key, seg_hi)?);
            key = seg_hi;
        }
        Ok(out)
    }

    /// Inserts or updates `key`, returning the previous value. One
    /// write section, one COW bucket, one epoch bump.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only (writer-side faults are program bugs).
    ///
    /// # Panics
    ///
    /// If `key` is out of range, or the heap is exhausted.
    pub fn put(&self, key: i64, value: i64) -> Result<Option<i64>, Fault> {
        self.check_key(key);
        self.shards[self.shard_of(key)].put(&self.heap, key, Some(value))
    }

    /// Removes `key`, returning the previous value.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only.
    pub fn remove(&self, key: i64) -> Result<Option<i64>, Fault> {
        self.check_key(key);
        self.shards[self.shard_of(key)].put(&self.heap, key, None)
    }

    /// Applies a write batch. Ops are grouped by shard; each shard's
    /// group installs atomically under **one** epoch bump (the
    /// single-writer-per-shard discipline makes a batch the shard's
    /// unit of versioning). Cross-shard batches are *not* atomic as a
    /// whole — shards version independently, as in the checkpoint cut.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only.
    ///
    /// # Panics
    ///
    /// If any key is out of range, or the heap is exhausted.
    pub fn put_many(&self, ops: &[(i64, i64)]) -> Result<(), Fault> {
        let span = self.cfg.span();
        let mut by_shard: Vec<Vec<ShardOp>> = vec![Vec::new(); self.shards.len()];
        for &(key, value) in ops {
            self.check_key(key);
            by_shard[(key / span) as usize].push((key, Some(value)));
        }
        for (s, group) in by_shard.iter().enumerate() {
            if !group.is_empty() {
                self.shards[s].apply(&self.heap, group)?;
            }
        }
        Ok(())
    }

    /// One shard's validated, epoch-tagged snapshot.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only.
    pub fn shard_snapshot(&self, s: usize) -> Result<ShardSnapshot, Fault> {
        let (version, pairs) = self.shards[s].snapshot(&self.heap)?;
        Ok(ShardSnapshot {
            shard: s,
            version,
            pairs,
        })
    }

    /// Whole-store checkpoint: every shard snapshotted through its own
    /// elided section. The cut can never mix epochs *within* a shard;
    /// across shards it carries the version vector instead of
    /// pretending to a global point in time.
    ///
    /// # Errors
    ///
    /// Genuine heap faults only.
    pub fn checkpoint(&self) -> Result<StoreCheckpoint, Fault> {
        let shards = (0..self.shards.len())
            .map(|s| self.shard_snapshot(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StoreCheckpoint { shards })
    }

    /// Merged lock statistics across shards.
    pub fn snapshot_stats(&self) -> StatsSnapshot {
        self.shards
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s.strat.snapshot()))
    }

    /// Resets statistics on every shard.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.strat.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero::{JavaRwLock, LockStrategy, RwStrategy, SoleroConfig, SoleroStrategy};

    fn small() -> StoreConfig {
        StoreConfig::new(256).with_shards(4).with_bucket_width(8)
    }

    #[test]
    fn roundtrip_under_every_strategy() {
        let makes: Vec<fn() -> BoxedStrategy> = vec![
            || Box::new(LockStrategy::new()),
            || Box::new(RwStrategy::<JavaRwLock>::new()),
            || Box::new(SoleroStrategy::new()),
            || {
                Box::new(SoleroStrategy::configured(
                    SoleroConfig::builder().adaptive(true).build(),
                ))
            },
        ];
        for make in makes {
            let store = KvStore::new_boxed(small(), make);
            assert_eq!(store.get(10).unwrap(), None);
            assert_eq!(store.put(10, 100).unwrap(), None);
            assert_eq!(store.put(10, 101).unwrap(), Some(100));
            assert_eq!(store.get(10).unwrap(), Some(101));
            assert_eq!(store.remove(10).unwrap(), Some(101));
            assert_eq!(store.get(10).unwrap(), None, "{}", store.name());
        }
    }

    #[test]
    fn scan_is_sorted_and_clamped() {
        let store = KvStore::new(small(), SoleroStrategy::new);
        for k in [3i64, 64, 65, 130, 200, 255] {
            store.put(k, k * 2).unwrap();
        }
        // Spans all four shards.
        let all = store.scan(0, 4096).unwrap();
        assert_eq!(
            all,
            vec![(3, 6), (64, 128), (65, 130), (130, 260), (200, 400), (255, 510)]
        );
        // Mid-bucket bounds.
        assert_eq!(store.scan(64, 2).unwrap(), vec![(64, 128), (65, 130)]);
        assert_eq!(store.scan(66, 60).unwrap(), vec![]);
        assert_eq!(store.scan(-5, 4).unwrap(), vec![]);
    }

    #[test]
    fn batch_bumps_each_shard_version_once() {
        let store = KvStore::new(small(), LockStrategy::new);
        assert_eq!(store.version(0), 0);
        // 3 keys in shard 0 (keys 0..64), 1 in shard 2: one bump each.
        store.put_many(&[(1, 10), (2, 20), (63, 30), (128, 40)]).unwrap();
        assert_eq!(store.version(0), 1);
        assert_eq!(store.version(1), 0);
        assert_eq!(store.version(2), 1);
        store.put(1, 11).unwrap();
        assert_eq!(store.version(0), 2);
        let cut = store.checkpoint().unwrap();
        assert_eq!(cut.versions(), vec![2, 0, 1, 0]);
        assert_eq!(cut.len(), 4);
        assert_eq!(cut.get(1), Some(11));
        assert_eq!(cut.get(128), Some(40));
        assert_eq!(cut.get(5), None);
    }

    #[test]
    fn cow_recycles_buckets_instead_of_leaking() {
        let store = KvStore::new(small(), SoleroStrategy::new);
        store.put(0, 0).unwrap();
        let used = store.heap().used_words();
        for i in 0..10_000 {
            store.put(i % 256, i).unwrap();
        }
        // Same-width buckets recycle through the free list: steady
        // state allocates nothing new.
        assert_eq!(store.heap().used_words(), used);
        store.heap().check_integrity().unwrap();
    }

    #[test]
    fn matches_a_model_map_under_random_ops() {
        use solero_testkit::forall;
        forall(48, 0x5EED_5701, |g| {
            let store = KvStore::new(small(), SoleroStrategy::new);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..g.rng().gen_range(1..200usize) {
                let k = g.rng().gen_range(0..256i64);
                match g.rng().gen_range(0..10u32) {
                    0..=5 => {
                        let v = g.rng().gen::<i64>();
                        assert_eq!(store.put(k, v).unwrap(), model.insert(k, v));
                    }
                    6..=7 => {
                        assert_eq!(store.remove(k).unwrap(), model.remove(&k));
                    }
                    _ => {
                        assert_eq!(store.get(k).unwrap(), model.get(&k).copied());
                    }
                }
            }
            let lo = g.rng().gen_range(0..256i64);
            let n = g.rng().gen_range(0..256usize);
            let expect: Vec<(i64, i64)> = model
                .range(lo..(lo + n as i64).min(256))
                .map(|(&k, &v)| (k, v))
                .collect();
            assert_eq!(store.scan(lo, n).unwrap(), expect);
        });
    }

    #[test]
    fn concurrent_snapshots_never_mix_batches() {
        // One writer per shard rewrites its whole shard to a round tag
        // in a single batch; every validated snapshot must be uniform.
        let store = std::sync::Arc::new(KvStore::new(
            StoreConfig::new(64).with_shards(2).with_bucket_width(8),
            SoleroStrategy::new,
        ));
        let span = 32i64;
        std::thread::scope(|sc| {
            for w in 0..2i64 {
                let store = std::sync::Arc::clone(&store);
                sc.spawn(move || {
                    for round in 1..=50i64 {
                        let batch: Vec<(i64, i64)> =
                            (w * span..(w + 1) * span).map(|k| (k, round)).collect();
                        store.put_many(&batch).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let store = std::sync::Arc::clone(&store);
                sc.spawn(move || {
                    for _ in 0..200 {
                        let cut = store.checkpoint().unwrap();
                        for s in &cut.shards {
                            if let Some(&(_, first)) = s.pairs.first() {
                                assert!(
                                    s.pairs.iter().all(|&(_, v)| v == first),
                                    "mixed-epoch snapshot: {s:?}"
                                );
                                assert_eq!(
                                    s.pairs.len(),
                                    span as usize,
                                    "partial batch visible: {s:?}"
                                );
                                assert_eq!(s.version, first as u64, "version/value drift");
                            }
                        }
                    }
                });
            }
        });
        let stats = store.snapshot_stats();
        assert_eq!(stats.read_aborts, stats.abort_reason_sum(), "{stats}");
        store.heap().check_integrity().unwrap();
    }
}
