//! State-machine property test: a single thread drives a `SoleroLock`
//! through arbitrary interleavings of write sections (with recursion),
//! read-only sections, and read-mostly sections, against a reference
//! model. Invariants:
//!
//! * `is_locked`/`held_by_current` track the model's nesting depth;
//! * read sessions are speculative exactly when the model says the lock
//!   is free;
//! * the sequence counter, whenever visible (lock free, thin), is
//!   strictly monotone and advances at least once per completed writing
//!   section or upgrade;
//! * statistics add up.

use solero::{Checkpoint, SoleroLock, WriteIntent, WriteTicket};
use solero_runtime::thread::ThreadId;
use solero_testkit::{forall, TestRng};

#[derive(Debug, Clone, Copy)]
enum Op {
    EnterWrite,
    ExitWrite,
    ReadOnly,
    MostlyRead,
    MostlyWrite,
}

fn gen_op(rng: &mut TestRng) -> Op {
    match rng.gen_range(0u32..5) {
        0 => Op::EnterWrite,
        1 => Op::ExitWrite,
        2 => Op::ReadOnly,
        3 => Op::MostlyRead,
        _ => Op::MostlyWrite,
    }
}

#[test]
fn single_thread_model() {
    forall(256, 0x10C6_57A7E, |g| {
        let ops = g.vec(1, 60, gen_op);
        let lock = SoleroLock::new();
        let tid = ThreadId::current();
        let mut tickets: Vec<WriteTicket> = Vec::new();
        let mut last_counter = lock.raw_word().counter().unwrap();
        let mut completed_writes = 0u64;
        let mut reads = 0u64;

        for op in &ops {
            let depth = tickets.len();
            match op {
                Op::EnterWrite => {
                    tickets.push(lock.enter_write(tid));
                    assert!(lock.held_by_current());
                }
                Op::ExitWrite => {
                    if let Some(t) = tickets.pop() {
                        lock.exit_write(tid, t);
                        if tickets.is_empty() {
                            completed_writes += 1;
                        }
                    }
                }
                Op::ReadOnly => {
                    reads += 1;
                    let expect_spec = depth == 0;
                    lock.read_only(|s| {
                        assert_eq!(
                            s.is_speculative(),
                            expect_spec,
                            "speculation iff the lock is free"
                        );
                        s.checkpoint()?;
                        Ok(())
                    })
                    .unwrap();
                }
                Op::MostlyRead => {
                    reads += 1;
                    lock.read_mostly(|s| {
                        s.checkpoint()?;
                        Ok(())
                    })
                    .unwrap();
                }
                Op::MostlyWrite => {
                    reads += 1;
                    let was_free = depth == 0;
                    lock.read_mostly(|s| {
                        s.ensure_write()?;
                        assert!(!s.is_speculative());
                        Ok(())
                    })
                    .unwrap();
                    if was_free {
                        // An upgraded section releases like a writer.
                        completed_writes += 1;
                    }
                }
            }
            // Depth bookkeeping must match the lock's view.
            assert_eq!(lock.held_by_current(), !tickets.is_empty());
            // Whenever the counter is visible it is monotone.
            if let Some(c) = lock.raw_word().counter() {
                assert!(c >= last_counter, "counter went backwards");
                last_counter = c;
            }
        }
        // Drain.
        while let Some(t) = tickets.pop() {
            lock.exit_write(tid, t);
            if tickets.is_empty() {
                completed_writes += 1;
            }
        }
        assert!(!lock.is_locked());
        let final_counter = lock.raw_word().counter().unwrap();
        assert!(
            final_counter >= completed_writes,
            "counter {final_counter} < completed writing sections {completed_writes}"
        );

        let st = lock.stats().snapshot();
        assert_eq!(st.read_enters, reads);
        // Single-threaded: nothing can invalidate a speculative read.
        assert_eq!(st.elision_failure, 0);
        assert_eq!(st.fallback_acquires, 0);
        assert_eq!(st.speculative_faults, 0);
    });
}

#[test]
fn deep_recursion_is_transparent() {
    forall(64, 0xDEE9, |g| {
        let depth = g.size(1, 100);
        let reads_between = g.gen_range(0usize..4);
        // Any nesting depth (including past the 5 recursion bits, which
        // forces inflation) behaves like a counter.
        let lock = SoleroLock::new();
        let tid = ThreadId::current();
        let mut tickets = Vec::new();
        for d in 0..depth {
            tickets.push(lock.enter_write(tid));
            assert!(lock.held_by_current());
            for _ in 0..reads_between {
                // Nested reads run under the lock, at any depth.
                lock.read_only(|s| {
                    assert!(!s.is_speculative());
                    Ok(())
                })
                .unwrap();
            }
            let _ = d;
        }
        for t in tickets.into_iter().rev() {
            assert!(lock.held_by_current());
            lock.exit_write(tid, t);
        }
        assert!(!lock.is_locked());
        // After quiescing, elision works regardless of what happened.
        lock.write(|| {});
        lock.read_only(|_| Ok(())).unwrap();
        assert!(lock.stats().snapshot().elision_success >= 1);
    });
}
