//! Property tests for [`AdaptivePolicy`]: the forfeit/re-arm state
//! machine under randomized budgets and randomized abort histories.
//!
//! Replay a failure with `SOLERO_TESTKIT_SEED=<root>` (printed by the
//! runner); case sizes shrink automatically.

use solero::{AdaptiveBudgets, AdaptivePolicy, EntryDecision};
use solero_obs::AbortReason;
use solero_testkit::prop::forall;
use solero_testkit::rng::TestRng;

/// Random but bounded budgets — including degenerate zeros, which the
/// policy must clamp rather than wedge on.
fn gen_budgets(rng: &mut TestRng) -> AdaptiveBudgets {
    AdaptiveBudgets {
        retry: std::array::from_fn(|_| rng.gen_range(0..10u32)),
        skip: std::array::from_fn(|_| rng.gen_range(0..10u32)),
        max_penalty: rng.gen_range(0..6u32),
        rearm_period: rng.gen_range(0..10u32),
    }
}

fn gen_reason(rng: &mut TestRng) -> AbortReason {
    AbortReason::ALL[rng.gen_range(0..AbortReason::ALL.len())]
}

/// The clamps the policy applies internally, restated for assertions.
fn eff_retry(b: &AdaptiveBudgets, c: usize) -> u32 {
    b.retry[c].max(1)
}
fn cap(b: &AdaptiveBudgets) -> u32 {
    b.max_penalty.min(16)
}
fn eff_rearm(b: &AdaptiveBudgets) -> u32 {
    b.rearm_period.max(1)
}

/// Whatever interleaving of aborts, entries and successful elisions the
/// lock sees, the policy's observable state stays inside its bounds:
/// retry budgets never underflow past zero (no wrap-around), penalties
/// never exceed the cap, the forfeit window never exceeds
/// [`AdaptivePolicy::max_forfeit`], and the success streak never
/// escapes the re-arm period.
#[test]
fn random_histories_never_break_the_state_bounds() {
    forall(96, 0xADA7_1, |g| {
        let b = gen_budgets(g.rng());
        let p = AdaptivePolicy::new(b);
        let steps = g.size(1, 400);
        for _ in 0..steps {
            match g.rng().gen_range(0..3u32) {
                0 => {
                    p.on_abort(gen_reason(g.rng()));
                }
                1 => {
                    let _ = p.on_entry();
                }
                _ => {
                    p.on_elided();
                }
            }
            let probe = p.probe();
            for c in 0..5 {
                assert!(
                    probe.retry_left[c] <= eff_retry(&b, c),
                    "class {c}: retry_left {} escaped budget {} ({b:?})",
                    probe.retry_left[c],
                    eff_retry(&b, c),
                );
                assert!(
                    probe.penalty[c] <= cap(&b),
                    "class {c}: penalty {} above cap {} ({b:?})",
                    probe.penalty[c],
                    cap(&b),
                );
            }
            assert!(
                probe.forfeit <= p.max_forfeit(),
                "forfeit {} above max_forfeit {} ({b:?})",
                probe.forfeit,
                p.max_forfeit(),
            );
            assert!(
                probe.successes < eff_rearm(&b),
                "success streak {} reached re-arm period {} without resetting",
                probe.successes,
                eff_rearm(&b),
            );
        }
    });
}

/// Once elision is forfeited, it always comes back: at most
/// `max_forfeit()` consecutive entries acquire, the last of those
/// reports `rearmed`, and the very next entry elides again.
#[test]
fn forfeit_always_rearms_within_its_bound() {
    forall(96, 0xADA7_2, |g| {
        let b = gen_budgets(g.rng());
        let p = AdaptivePolicy::new(b);
        // Randomized warm-up so the re-arm bound holds from any state,
        // not just a fresh policy.
        for _ in 0..g.size(0, 60) {
            match g.rng().gen_range(0..3u32) {
                0 => {
                    p.on_abort(gen_reason(g.rng()));
                }
                1 => {
                    let _ = p.on_entry();
                }
                _ => {
                    p.on_elided();
                }
            }
        }
        // Hammer one class until a forfeit actually fires.
        let reason = gen_reason(g.rng());
        let mut fired = false;
        for _ in 0..(eff_retry(&b, reason.index()) as u64 * 2 + 2) {
            if p.on_abort(reason) {
                fired = true;
                break;
            }
            // A forfeit may already be pending from the warm-up; that
            // still gives us a window to drain below.
            if p.probe().forfeit > 0 {
                fired = true;
                break;
            }
        }
        assert!(fired, "budget {:?} never forfeited", b.retry);
        let mut acquires = 0u64;
        loop {
            match p.on_entry() {
                EntryDecision::Elide => break,
                EntryDecision::Acquire { rearmed } => {
                    acquires += 1;
                    assert!(
                        acquires <= p.max_forfeit() as u64,
                        "forfeit window exceeded max_forfeit {} ({b:?})",
                        p.max_forfeit(),
                    );
                    if rearmed {
                        // Re-arm is the edge back: the next entry must
                        // elide.
                        assert!(matches!(p.on_entry(), EntryDecision::Elide));
                        break;
                    }
                }
            }
        }
    });
}

/// A lock that goes quiet converges back to always-elide: enough
/// uninterrupted successful elisions drain any forfeit window, decay
/// every penalty to zero and refill every retry budget.
#[test]
fn quiet_lock_converges_to_always_elide() {
    forall(96, 0xADA7_3, |g| {
        let b = gen_budgets(g.rng());
        let p = AdaptivePolicy::new(b);
        // Arbitrary noisy history.
        for _ in 0..g.size(1, 200) {
            match g.rng().gen_range(0..3u32) {
                0 => {
                    p.on_abort(gen_reason(g.rng()));
                }
                1 => {
                    let _ = p.on_entry();
                }
                _ => {
                    p.on_elided();
                }
            }
        }
        // Quiet phase: every section either drains the forfeit window
        // or elides successfully. Budget: the whole window plus one
        // re-arm period per penalty level, with one spare period.
        let quiet =
            p.max_forfeit() as u64 + (cap(&b) as u64 + 2) * eff_rearm(&b) as u64;
        for _ in 0..quiet {
            if matches!(p.on_entry(), EntryDecision::Elide) {
                p.on_elided();
            }
        }
        let probe = p.probe();
        assert_eq!(probe.forfeit, 0, "forfeit window must drain ({b:?})");
        for c in 0..5 {
            assert_eq!(probe.penalty[c], 0, "class {c} penalty must decay ({b:?})");
            assert_eq!(
                probe.retry_left[c],
                eff_retry(&b, c),
                "class {c} budget must refill ({b:?})"
            );
        }
        // And it stays converged: further quiet sections always elide.
        for _ in 0..eff_rearm(&b) as u64 + 1 {
            assert!(matches!(p.on_entry(), EntryDecision::Elide));
            p.on_elided();
        }
    });
}
