//! Read-session contexts handed to critical-section closures.
//!
//! A read-only critical section under SOLERO may execute
//! **speculatively** — without holding the lock — so the code inside it
//! must (a) tolerate faults, returning `Result<_, Fault>` rather than
//! panicking, and (b) poll a validation check-point at loop back-edges,
//! which is how the paper's JIT breaks infinite loops caused by
//! inconsistent reads (§3.3). [`ReadSession`] carries the paper's *local
//! lock variable* and implements those check-points; [`MostlySession`]
//! adds the Figure 17 in-place upgrade for read-mostly sections.

use solero_sync::atomic::Ordering;

use solero_obs::{EventKind, LockEvent};
use solero_runtime::events::EventPoll;
use solero_runtime::fault::Fault;
use solero_runtime::thread::ThreadId;
use solero_runtime::word::SoleroWord;

use crate::lock::SoleroLock;

/// Validation polling inside critical sections, independent of the lock
/// implementation. Lock-based strategies use [`NullCheckpoint`] (always
/// consistent); SOLERO uses [`ReadSession`].
pub trait Checkpoint {
    /// Polls the validation check-point. Under speculation this may
    /// report [`Fault::Inconsistent`], which aborts and re-executes the
    /// section; under a held lock it always succeeds.
    ///
    /// Call this at loop back-edges (the paper's JIT inserts the check
    /// at back-edges and method entries).
    ///
    /// # Errors
    ///
    /// [`Fault::Inconsistent`] when the lock word changed under a
    /// speculative section.
    fn checkpoint(&mut self) -> Result<(), Fault>;

    /// True if the section is currently running without holding the lock.
    fn is_speculative(&self) -> bool;
}

/// A [`Checkpoint`] that never fails — for sections running under a
/// conventionally held lock.
///
/// # Examples
///
/// ```
/// use solero::{Checkpoint, NullCheckpoint};
///
/// let mut ck = NullCheckpoint;
/// assert!(ck.checkpoint().is_ok());
/// assert!(!ck.is_speculative());
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCheckpoint;

impl Checkpoint for NullCheckpoint {
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Fault> {
        Ok(())
    }

    #[inline]
    fn is_speculative(&self) -> bool {
        false
    }
}

/// Context of one execution attempt of a read-only critical section.
///
/// Obtained through [`SoleroLock::read_only`]; holds the local lock
/// variable `v` captured at entry and whether the attempt runs
/// speculatively or under the (recursively/fat/fallback-) held lock.
#[derive(Debug)]
pub struct ReadSession<'a> {
    pub(crate) lock: &'a SoleroLock,
    /// The local lock variable (Figure 7's `v`).
    pub(crate) v: u64,
    /// True if this attempt holds the lock (recursion, fat mode, or
    /// fallback) — validation is then unnecessary.
    pub(crate) held: bool,
    pub(crate) poll: EventPoll,
}

impl<'a> ReadSession<'a> {
    pub(crate) fn new(lock: &'a SoleroLock, v: u64, held: bool) -> Self {
        ReadSession {
            lock,
            v,
            held,
            poll: EventPoll::new(lock.config.checkpoint_period),
        }
    }

    /// The captured lock value (diagnostics; `0` under a held entry).
    pub fn local_lock_value(&self) -> u64 {
        self.v
    }

    /// Forces a validation check regardless of pending events.
    ///
    /// # Errors
    ///
    /// [`Fault::Inconsistent`] when the lock word changed under a
    /// speculative section.
    pub fn validate_now(&self) -> Result<(), Fault> {
        if self.held {
            return Ok(());
        }
        if self.lock.word.load(Ordering::Acquire) == self.v {
            Ok(())
        } else {
            Err(Fault::Inconsistent)
        }
    }

    /// Figure 17's upgrade: make the section hold the lock before its
    /// first write. On success all reads so far are validated (the CAS
    /// only succeeds if the word still equals the captured value).
    ///
    /// # Errors
    ///
    /// [`Fault::UpgradeFailed`] when the word changed and the section
    /// must re-execute while holding the lock.
    pub(crate) fn ensure_write(&mut self) -> Result<(), Fault> {
        if self.held {
            return Ok(());
        }
        // CAS(&obj->lock, v, thread_id + LOCK_BIT) — Figure 17 line 8.
        let tid = ThreadId::current();
        if self
            .lock
            .word
            .compare_exchange(
                self.v,
                SoleroWord::held_by(tid).raw(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.lock.saved_v1.store(self.v, Ordering::Relaxed);
            self.lock
                .stats
                .mostly_upgrades
                .fetch_add(1, Ordering::Relaxed);
            solero_obs::emit(|| {
                LockEvent::now(self.lock.obs_id(), EventKind::MostlyUpgrade)
            });
            self.held = true;
            return Ok(());
        }
        // `|| hold_lock(obj)` — defensive; a held lock normally enters
        // through the recursion path and never reaches here.
        if self.lock.holds(tid) {
            self.held = true;
            return Ok(());
        }
        Err(Fault::UpgradeFailed)
    }
}

impl Checkpoint for ReadSession<'_> {
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Fault> {
        if self.held {
            return Ok(());
        }
        if self.poll.should_validate() {
            self.lock
                .stats
                .async_validations
                .fetch_add(1, Ordering::Relaxed);
            return self.validate_now();
        }
        Ok(())
    }

    #[inline]
    fn is_speculative(&self) -> bool {
        !self.held
    }
}

impl WriteIntent for ReadSession<'_> {
    #[inline]
    fn ensure_write(&mut self) -> Result<(), Fault> {
        ReadSession::ensure_write(self)
    }
}

/// Declares that a section context can be asked for write permission
/// before the first write of a read-mostly section.
pub trait WriteIntent: Checkpoint {
    /// Ensures the section holds the lock from this point on.
    ///
    /// # Errors
    ///
    /// [`Fault::UpgradeFailed`] when speculation cannot be upgraded and
    /// the section must re-execute holding the lock.
    fn ensure_write(&mut self) -> Result<(), Fault>;
}

impl WriteIntent for NullCheckpoint {
    #[inline]
    fn ensure_write(&mut self) -> Result<(), Fault> {
        Ok(())
    }
}

/// Context of one execution attempt of a **read-mostly** critical
/// section (the paper's §5 extension). Wraps [`ReadSession`] and exposes
/// the in-place upgrade.
#[derive(Debug)]
pub struct MostlySession<'a>(pub(crate) ReadSession<'a>);

impl<'a> MostlySession<'a> {
    /// The captured lock value (diagnostics).
    pub fn local_lock_value(&self) -> u64 {
        self.0.local_lock_value()
    }

    /// True once the section holds the lock.
    pub fn holds_lock(&self) -> bool {
        self.0.held
    }
}

impl Checkpoint for MostlySession<'_> {
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Fault> {
        self.0.checkpoint()
    }

    #[inline]
    fn is_speculative(&self) -> bool {
        self.0.is_speculative()
    }
}

impl WriteIntent for MostlySession<'_> {
    #[inline]
    fn ensure_write(&mut self) -> Result<(), Fault> {
        self.0.ensure_write()
    }
}
