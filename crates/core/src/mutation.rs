//! Protocol mutations for checking the checker (only compiled under
//! `--cfg solero_mc`).
//!
//! Each mutation weakens exactly one load/store the elision protocol
//! depends on. The model checker (`solero-mc`) must *kill* every
//! mutation — find a schedule where the weakened protocol hands a
//! torn or stale result to a validated read-only section — and the
//! unmutated protocol must survive the same search. A mutation the
//! checker cannot kill would mean the scenarios are too weak to trust.
//!
//! The switch is a plain `std` atomic on purpose: flipping it must not
//! create scheduling points or happens-before edges of its own.

use std::sync::atomic::{AtomicU8, Ordering};

/// No mutation: the protocol as shipped.
pub const NONE: u8 = 0;
/// Figure 7 line 6 removed: a read-only section exits successfully
/// without re-reading the lock word, so a concurrent write section is
/// never detected.
pub const SKIP_EXIT_REREAD: u8 = 1;
/// The exit re-read is demoted from `Acquire` to `Relaxed`, allowing
/// it to observe a stale (pre-write) lock word and validate a torn
/// read.
pub const WEAK_EXIT_LOAD: u8 = 2;
/// `exit_write` releases by storing `v1` instead of
/// `v1 + COUNTER_STEP`: the lock unlocks but the version counter does
/// not advance, so an elided reader spanning the whole write section
/// ABA-validates.
pub const STUCK_COUNTER: u8 = 3;

static ACTIVE: AtomicU8 = AtomicU8::new(NONE);

/// Activates `mutation` process-wide (pass [`NONE`] to restore the
/// real protocol). Intended to bracket a single checker run.
pub fn set(mutation: u8) {
    ACTIVE.store(mutation, Ordering::SeqCst);
}

/// The currently active mutation.
pub fn active() -> u8 {
    ACTIVE.load(Ordering::SeqCst)
}
