//! The SOLERO lock: state, write-side paths, inflation and deflation.
//!
//! The write-side fast paths follow the paper's Figure 6:
//!
//! * **acquire**: load the word; if the low three bits are clear, CAS in
//!   `tid | LOCK_BIT`, keeping the pre-CAS word (the *local lock
//!   variable* `v1`) until release; otherwise take the slow path;
//! * **release**: if `(word & 0xff) == LOCK_BIT`, store `v1 + 0x100` —
//!   the sequence counter advances so concurrent speculative readers
//!   observe a changed value.
//!
//! The read-side paths (Figures 7–9 and the Figure 17 read-mostly
//! extension) live in [`crate::read`].

use std::sync::Arc;
use std::time::Duration;

use solero_sync::atomic::{AtomicU64, Ordering};

use solero_obs::{AbortReason, EventKind, LockEvent, RecentAborts};
use solero_runtime::osmonitor::{next_lock_gen, MonitorKey, MonitorTable, OsMonitor};
use solero_runtime::spin::Probe;
use solero_runtime::stats::LockStats;
use solero_runtime::thread::ThreadId;
use solero_runtime::word::{
    SoleroWord, COUNTER_STEP, FLC_BIT, SOLERO_RECURSION_MAX, SOLERO_RECURSION_STEP,
};

use crate::adaptive::AdaptivePolicy;
use crate::config::SoleroConfig;

/// Timed-wait interval for FLC waiters (see
/// `OsMonitor::wait_timeout` for why the wait is timed).
pub(crate) const FLC_RECHECK: Duration = Duration::from_millis(1);

/// The SOLERO lock (PLDI 2010): a drop-in replacement for the
/// conventional Java monitor whose read-only critical sections do not
/// write the lock word.
///
/// # Examples
///
/// ```
/// use solero::SoleroLock;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let lock = SoleroLock::new();
/// let data = AtomicU64::new(0);
///
/// // Writing critical section: acquires the lock.
/// lock.write(|| data.store(42, Ordering::Release));
///
/// // Read-only critical section: elides the lock.
/// let seen = lock
///     .read_only(|_s| Ok::<_, solero::Fault>(data.load(Ordering::Acquire)))
///     .unwrap();
/// assert_eq!(seen, 42);
/// assert_eq!(lock.stats().snapshot().elision_success, 1);
/// ```
#[derive(Debug)]
pub struct SoleroLock {
    /// The flat-lock word (Figure 5 layout).
    pub(crate) word: AtomicU64,
    /// The counter word displaced by the current flat owner's acquiring
    /// CAS. Written only by the flat owner; read when inflation must
    /// reconstruct the counter (recursion saturation). The paper keeps
    /// this value in a register/local ("local lock variable"); the
    /// inflation paths need it out-of-band.
    pub(crate) saved_v1: AtomicU64,
    pub(crate) config: SoleroConfig,
    pub(crate) stats: LockStats,
    /// Always-on per-class recent-abort history (decayed on adaptive
    /// re-arm ticks; plain totals on non-adaptive locks).
    pub(crate) recent: RecentAborts,
    /// The adaptive elision policy, present iff `config.adaptive` is.
    pub(crate) policy: Option<AdaptivePolicy>,
    /// Process-unique generation nonce drawn at construction; paired
    /// with the word address to form the monitor-table key, so a lock
    /// later allocated at this address can never adopt this lock's
    /// monitor (or its stale displaced counter).
    pub(crate) gen: u64,
}

impl Default for SoleroLock {
    fn default() -> Self {
        Self::new()
    }
}

/// Opaque token for a writing critical section: carries the paper's
/// *local lock variable* `v1` from acquisition to release.
#[derive(Debug)]
#[must_use = "a write ticket must be passed back to exit_write"]
pub struct WriteTicket {
    pub(crate) v1: u64,
}

/// RAII guard returned by [`SoleroLock::lock_write`].
#[derive(Debug)]
pub struct SoleroWriteGuard<'a> {
    lock: &'a SoleroLock,
    tid: ThreadId,
    v1: u64,
}

impl Drop for SoleroWriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.exit_write(self.tid, WriteTicket { v1: self.v1 });
    }
}

impl SoleroLock {
    /// Creates an unlocked lock with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(SoleroConfig::default())
    }

    /// Creates an unlocked lock with explicit configuration.
    pub fn with_config(config: SoleroConfig) -> Self {
        SoleroLock {
            word: AtomicU64::new(SoleroWord::INIT.raw()),
            saved_v1: AtomicU64::new(0),
            config,
            stats: LockStats::default(),
            recent: RecentAborts::new(),
            policy: config.adaptive.map(AdaptivePolicy::new),
            gen: next_lock_gen(),
        }
    }

    /// The lock's configuration.
    pub fn config(&self) -> &SoleroConfig {
        &self.config
    }

    /// Per-lock statistics counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Per-class recent-abort history — always compiled in, readable
    /// without the `solero-obs` `trace` feature. On an adaptive lock
    /// the history decays geometrically at every re-arm tick; on a
    /// plain lock it accumulates totals.
    pub fn recent_aborts(&self) -> &RecentAborts {
        &self.recent
    }

    /// The adaptive elision policy, if this lock was configured with
    /// one.
    pub fn policy(&self) -> Option<&AdaptivePolicy> {
        self.policy.as_ref()
    }

    /// The current raw word (diagnostics and tests).
    pub fn raw_word(&self) -> SoleroWord {
        SoleroWord(self.word.load(Ordering::Acquire))
    }

    /// True if the lock is currently in fat (inflated) mode.
    pub fn is_inflated(&self) -> bool {
        self.raw_word().is_inflated()
    }

    /// True if any thread holds the lock (thin or fat).
    pub fn is_locked(&self) -> bool {
        let w = self.raw_word();
        if w.is_inflated() {
            // Lookup-only: an absent entry means a deflation is mid-
            // publish — the thin word is about to appear, and a fresh
            // monitor would be unowned anyway.
            self.monitor_existing().is_some_and(|m| m.is_owned())
        } else {
            w.is_held_flat()
        }
    }

    /// True if `tid` holds the lock.
    pub fn holds(&self, tid: ThreadId) -> bool {
        let w = self.raw_word();
        if w.is_inflated() {
            self.monitor_existing().is_some_and(|m| m.owned_by(tid))
        } else {
            w.tid() == Some(tid)
        }
    }

    /// True if the calling thread holds the lock.
    pub fn held_by_current(&self) -> bool {
        self.holds(ThreadId::current())
    }

    /// Runs `f` as a writing critical section.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        let tid = ThreadId::current();
        let t = self.enter_write(tid);
        let r = f();
        self.exit_write(tid, t);
        r
    }

    /// Acquires the lock for writing, returning a guard.
    pub fn lock_write(&self) -> SoleroWriteGuard<'_> {
        let tid = ThreadId::current();
        let t = self.enter_write(tid);
        SoleroWriteGuard {
            lock: self,
            tid,
            v1: t.v1,
        }
    }

    /// Identity of this lock in the global [`MonitorTable`]: the word's
    /// address plus the construction-time generation nonce. Public so
    /// table-hygiene tests can observe residency per lock.
    pub fn monitor_key(&self) -> MonitorKey {
        MonitorKey::new(&self.word as *const _ as usize, self.gen)
    }

    /// True if the global monitor table currently holds an entry for
    /// this lock. Quiescent locks must read `false` — an entry exists
    /// only while inflated (plus narrow race windows).
    pub fn monitor_resident(&self) -> bool {
        MonitorTable::global().existing(self.monitor_key()).is_some()
    }

    /// Stable lock identity for observability events.
    #[inline]
    pub(crate) fn obs_id(&self) -> u64 {
        self.monitor_key().addr as u64
    }

    /// Classifies one aborted speculative read attempt: bumps the
    /// aggregate `read_aborts` counter plus the per-reason counter (the
    /// Figure 15 breakdown), and emits the trace event. Every abort goes
    /// through here exactly once, so the per-reason counters always sum
    /// to `read_aborts`.
    #[cold]
    pub(crate) fn note_abort(&self, reason: AbortReason) {
        self.stats.read_aborts.fetch_add(1, Ordering::Relaxed);
        let counter = match reason {
            AbortReason::LockedAtEntry => &self.stats.abort_locked_at_entry,
            AbortReason::WordChangedAtExit => &self.stats.abort_word_changed_at_exit,
            AbortReason::AsyncRevalidationFail => &self.stats.abort_async_revalidation,
            AbortReason::RetryExhaustedFallback => &self.stats.abort_retry_exhausted,
            AbortReason::Inflation => &self.stats.abort_inflation,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.recent.note(reason);
        if let Some(p) = &self.policy {
            if p.on_abort(reason) {
                self.stats.policy_disables.fetch_add(1, Ordering::Relaxed);
            }
        }
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Abort(reason)));
    }

    /// Books one successful elision: the counter, plus the adaptive
    /// policy's success streak (a re-arm tick also decays the
    /// recent-abort history, so "recent" means an exponentially
    /// weighted window on adaptive locks).
    #[inline]
    pub(crate) fn note_elided(&self) {
        self.stats.elision_success.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.policy {
            if p.on_elided() {
                self.recent.decay();
            }
        }
    }

    /// Get-or-create monitor resolution. Only paths that already hold
    /// the lock (inflation of a held word, wait re-entry) may call
    /// this: while held thin no deflation can race, so creating an
    /// entry here can never resurrect one a deflater just pruned.
    pub(crate) fn monitor(&self) -> Arc<OsMonitor> {
        MonitorTable::global().monitor_for(self.monitor_key())
    }

    /// Lookup-only monitor resolution for reactive paths (observers,
    /// contenders, FLC releases). `None` means the lock is not
    /// inflated — the caller must fall back to the word.
    pub(crate) fn monitor_existing(&self) -> Option<Arc<OsMonitor>> {
        MonitorTable::global().existing(self.monitor_key())
    }

    /// Acquires the lock for a writing critical section (Figure 6,
    /// lines 1–13).
    pub fn enter_write(&self, tid: ThreadId) -> WriteTicket {
        self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        let v1 = SoleroWord(self.word.load(Ordering::Relaxed));
        if v1.is_elidable()
            && self
                .word
                .compare_exchange(
                    v1.raw(),
                    SoleroWord::held_by(tid).raw(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            self.stats.write_fast.fetch_add(1, Ordering::Relaxed);
            self.saved_v1.store(v1.raw(), Ordering::Relaxed);
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
            return WriteTicket { v1: v1.raw() };
        }
        let t = WriteTicket {
            v1: self.slow_enter_write(tid),
        };
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
        t
    }

    /// Releases a writing critical section (Figure 6, lines 15–21).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `tid` holds the lock.
    pub fn exit_write(&self, tid: ThreadId, ticket: WriteTicket) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteRelease));
        let v2 = SoleroWord(self.word.load(Ordering::Relaxed));
        if v2.fast_releasable() {
            debug_assert_eq!(v2.tid(), Some(tid), "release by non-owner");
            self.word
                .store(self.release_word(ticket.v1), Ordering::Release);
            return;
        }
        self.slow_exit_write(tid, ticket, v2);
    }

    /// Java-style `Object.wait()`: releases the lock (all recursion
    /// levels) and parks until notified, then reacquires. Inflates first
    /// — waiting requires the OS monitor, and the displaced counter set
    /// at inflation keeps speculative readers correct across the cycle.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock (the analogue of
    /// `IllegalMonitorStateException`). Never call this from a
    /// speculative read-only section — the paper's classifier rejects
    /// such sections precisely because `wait` is a side effect.
    pub fn wait(&self, tid: ThreadId) {
        let v = SoleroWord(self.word.load(Ordering::Acquire));
        if !v.is_inflated() {
            assert_eq!(v.tid(), Some(tid), "wait without holding the lock");
            self.inflate_held(tid, v);
        }
        // The entry must exist: either we just inflated, or the word was
        // already inflated and we hold it fat (which blocks deflation).
        let m = self
            .monitor_existing()
            .expect("wait without holding the lock");
        assert!(m.owned_by(tid), "wait without holding the lock");
        m.wait(tid);
    }

    /// Java-style `Object.notifyAll()`. The caller must hold the lock.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock.
    pub fn notify_all(&self, tid: ThreadId) {
        assert!(self.holds(tid), "notify without holding the lock");
        // Waiters exist only while inflated, so an absent entry means
        // an empty wait set: notify on a thin lock is a no-op and must
        // not plant a table entry.
        if let Some(m) = self.monitor_existing() {
            m.notify_all();
        }
    }

    /// Java-style `Object.notify()`. The caller must hold the lock.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock.
    pub fn notify_one(&self, tid: ThreadId) {
        assert!(self.holds(tid), "notify without holding the lock");
        if let Some(m) = self.monitor_existing() {
            m.notify_one();
        }
    }

    /// Slow write acquisition: recursion, spinning, FLC, fat mode.
    /// Returns the local lock variable `v1` (0 when the entry was
    /// recursive or fat — the release then takes the slow path, exactly
    /// as the paper's zero local lock value does).
    #[cold]
    pub(crate) fn slow_enter_write(&self, tid: ThreadId) -> u64 {
        loop {
            let v = SoleroWord(self.word.load(Ordering::Acquire));
            if v.is_inflated() {
                if self.enter_fat(tid) {
                    return 0;
                }
                continue;
            }
            if v.tid() == Some(tid) {
                // Recursive flat acquisition.
                if v.recursion() == SOLERO_RECURSION_MAX {
                    self.inflate_held(tid, v);
                    self.monitor().enter(tid); // the new level
                    return 0;
                }
                self.word.fetch_add(SOLERO_RECURSION_STEP, Ordering::Relaxed);
                self.stats.recursive_enters.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
            if v.is_elidable() {
                if self
                    .word
                    .compare_exchange(
                        v.raw(),
                        SoleroWord::held_by(tid).raw(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    self.saved_v1.store(v.raw(), Ordering::Relaxed);
                    return v.raw();
                }
                continue;
            }
            // Held by another thread (or FLC pending): probe under the
            // history-keyed contention manager (arXiv 1305.5800 — a
            // contended CAS convoy is exactly where the naive fixed
            // spin collapsed), then park. This is also the path the
            // retry-exhausted read fallback takes, so fallback storms
            // back off instead of stampeding the word.
            let spun = self.config.contention.run_observed(
                || {
                    let v = SoleroWord(self.word.load(Ordering::Acquire));
                    if v.is_elidable() {
                        if self
                            .word
                            .compare_exchange(
                                v.raw(),
                                SoleroWord::held_by(tid).raw(),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            return Probe::Done(Some(v.raw()));
                        }
                    } else if v.needs_monitor() {
                        return Probe::Done(None);
                    }
                    Probe::Retry
                },
                |_| {
                    self.stats
                        .contention_backoffs
                        .fetch_add(1, Ordering::Relaxed);
                },
            );
            match spun {
                Some(Some(v1)) => {
                    self.saved_v1.store(v1, Ordering::Relaxed);
                    return v1;
                }
                Some(None) | None => {
                    if self.enter_via_monitor(tid) {
                        return 0;
                    }
                }
            }
        }
    }

    /// Fat-mode entry: resolve the tabled monitor, take it, then confirm
    /// the word still names *that* monitor. Returns `false` if the
    /// caller must retry from the top (the lock deflated, or a
    /// re-inflation bound a different monitor while we blocked).
    pub(crate) fn enter_fat(&self, tid: ThreadId) -> bool {
        let Some(m) = self.monitor_existing() else {
            // Inflated word but no entry: a deflater pruned the binding
            // and is about to publish the thin word. Retry.
            return false;
        };
        m.enter(tid);
        let v = SoleroWord(self.word.load(Ordering::Acquire));
        if v.monitor_id() == Some(m.id()) {
            self.stats.monitor_enters.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            m.exit(tid);
            false
        }
    }

    /// FLC protocol under the monitor; a contender that finds the word
    /// free inflates the lock and owns it (fat). The displaced counter
    /// stored in the monitor is the pre-inflation counter plus one step,
    /// so a later deflation publishes a value no speculative reader can
    /// still match.
    ///
    /// Returns `false` if the binding went stale (the lock deflated and
    /// pruned the entry we resolved); the caller retries from the word.
    /// Every iteration re-checks the binding: owning `m` pins it
    /// (removal requires ownership), so a current binding cannot change
    /// under us, and a monitor id in the word is only trusted when it
    /// matches the monitor we own.
    pub(crate) fn enter_via_monitor(&self, tid: ThreadId) -> bool {
        let key = self.monitor_key();
        let table = MonitorTable::global();
        let m = table.monitor_for(key);
        m.enter(tid);
        loop {
            if !table.is_current(key, &m) {
                // Deflated (and pruned) while we blocked on entry, or
                // re-inflated onto a fresh monitor: this monitor is an
                // orphan. Release it and retry from the word.
                m.exit(tid);
                return false;
            }
            let v = SoleroWord(self.word.load(Ordering::Acquire));
            if v.is_inflated() {
                if v.monitor_id() == Some(m.id()) {
                    self.stats.monitor_enters.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                // A stale inflated word from a binding this monitor
                // never had; retry from the top.
                m.exit(tid);
                return false;
            }
            if !v.is_held_flat() {
                // Free counter word (FLC bit possibly set): inflate.
                // The binding check above ran while owning `m`, so the
                // table still maps our key to `m` at this CAS.
                let displaced = (v.raw() & !FLC_BIT).wrapping_add(COUNTER_STEP);
                if self
                    .word
                    .compare_exchange(
                        v.raw(),
                        SoleroWord::inflated(m.id()).raw(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    m.set_displaced(displaced);
                    self.stats.inflations.fetch_add(1, Ordering::Relaxed);
                    self.stats.monitor_enters.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                continue;
            }
            // Held flat by another thread: publish contention and park.
            if v.has_flc()
                || self
                    .word
                    .compare_exchange(
                        v.raw(),
                        v.with_flc().raw(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                self.stats.flc_waits.fetch_add(1, Ordering::Relaxed);
                m.wait_timeout(tid, FLC_RECHECK);
            }
        }
    }

    /// Inflates while `tid` holds the flat lock (recursion saturation),
    /// transferring the recursion depth onto the monitor. The displaced
    /// counter is reconstructed from the owner's saved `v1`.
    pub(crate) fn inflate_held(&self, tid: ThreadId, v: SoleroWord) {
        debug_assert_eq!(v.tid(), Some(tid));
        let m = self.monitor();
        m.enter(tid);
        for _ in 0..v.recursion() {
            m.enter(tid);
        }
        let displaced = self
            .saved_v1
            .load(Ordering::Relaxed)
            .wrapping_add(COUNTER_STEP);
        m.set_displaced(displaced);
        self.word
            .store(SoleroWord::inflated(m.id()).raw(), Ordering::Release);
        self.stats.inflations.fetch_add(1, Ordering::Relaxed);
        m.notify_all();
    }

    #[cold]
    fn slow_exit_write(&self, tid: ThreadId, ticket: WriteTicket, v: SoleroWord) {
        if v.is_inflated() {
            // Every fat-mode *writing* release advances the displaced
            // counter so deflation never republishes a captured value.
            let m = self
                .monitor_existing()
                .expect("fat owner's monitor must be tabled");
            debug_assert!(m.owned_by(tid), "fat release by non-owner");
            m.bump_displaced(COUNTER_STEP);
            self.exit_fat(tid);
            return;
        }
        debug_assert_eq!(v.tid(), Some(tid), "release by non-owner");
        if v.recursion() > 0 {
            self.word.fetch_sub(SOLERO_RECURSION_STEP, Ordering::Release);
            return;
        }
        // FLC set while we held the lock: release under the monitor and
        // wake the contenders. Lookup-only — the contender that set the
        // bit tabled the entry and is parked on it; if the entry is
        // somehow gone there is nobody to wake and a plain store
        // suffices (creating an entry here would leak it).
        debug_assert!(v.has_flc());
        match self.monitor_existing() {
            Some(m) => {
                m.enter(tid);
                self.word
                    .store(self.release_word(ticket.v1), Ordering::Release);
                m.notify_all();
                m.exit(tid);
            }
            None => {
                self.word
                    .store(self.release_word(ticket.v1), Ordering::Release);
            }
        }
    }

    /// Figure 6, line 18: the word a flat write release publishes —
    /// the pre-acquire value with the version counter advanced, which
    /// is what aborts any reader that overlapped the write section.
    ///
    /// Under `--cfg solero_mc` this is a mutation point the model
    /// checker must kill (see `crate::mutation`).
    #[inline]
    fn release_word(&self, v1: u64) -> u64 {
        #[cfg(solero_mc)]
        if crate::mutation::active() == crate::mutation::STUCK_COUNTER {
            return v1;
        }
        v1.wrapping_add(COUNTER_STEP)
    }

    /// Final fat release: deflates when the monitor is uncontended —
    /// prune the table entry **first**, then publish the displaced
    /// counter, then wake and exit.
    ///
    /// The ordering matters: once the entry is gone, a contender that
    /// still sees the inflated word resolves no monitor and retries,
    /// and any re-inflation must mint a fresh entry (new monitor, new
    /// id) that a stale deflater's `remove_if` can never sweep. The
    /// window where the word is inflated but the entry absent is
    /// therefore benign. The deflation guard itself is TOCTOU-safe:
    /// queued contenders re-check the word after our monitor exit, and
    /// new waiters are impossible while we own the monitor.
    pub(crate) fn exit_fat(&self, tid: ThreadId) {
        let key = self.monitor_key();
        let table = MonitorTable::global();
        let m = table
            .existing(key)
            .expect("fat owner's monitor must be tabled");
        debug_assert!(m.owned_by(tid), "fat release by non-owner");
        if m.depth(tid) == 1 && m.idle_for_deflation() {
            let removed = table.remove_if(key, &m);
            debug_assert!(removed, "deflater's binding must still be current");
            self.word.store(m.displaced(), Ordering::Release);
            self.stats.deflations.fetch_add(1, Ordering::Relaxed);
            m.notify_all();
        }
        m.exit(tid);
    }
}

impl Drop for SoleroLock {
    fn drop(&mut self) {
        // Unconditional sweep: normally the deflation path already
        // pruned the entry, but a lock torn down while inflated (or a
        // lingering FLC entry from a contender that never inflated)
        // must not pin its monitor for the process lifetime.
        MonitorTable::global().remove(self.monitor_key());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero_runtime::spin::SpinConfig;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn write_section_advances_counter() {
        let l = SoleroLock::new();
        let c0 = l.raw_word().counter().unwrap();
        l.write(|| {});
        let c1 = l.raw_word().counter().unwrap();
        assert_eq!(c1, c0 + 1, "each writing section leaves a new value");
        l.write(|| {});
        assert_eq!(l.raw_word().counter().unwrap(), c0 + 2);
    }

    #[test]
    fn guard_api_releases_on_drop() {
        let l = SoleroLock::new();
        {
            let _g = l.lock_write();
            assert!(l.is_locked());
            assert!(l.held_by_current());
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn recursion_roundtrip() {
        let l = SoleroLock::new();
        let tid = ThreadId::current();
        let t1 = l.enter_write(tid);
        let t2 = l.enter_write(tid);
        let t3 = l.enter_write(tid);
        assert_eq!(l.raw_word().recursion(), 2);
        l.exit_write(tid, t3);
        l.exit_write(tid, t2);
        assert!(l.is_locked());
        l.exit_write(tid, t1);
        assert!(!l.is_locked());
        assert_eq!(l.raw_word().counter(), Some(1));
    }

    #[test]
    fn deep_recursion_inflates_then_deflates_with_fresh_counter() {
        let l = SoleroLock::new();
        let tid = ThreadId::current();
        let before = l.raw_word().counter().unwrap();
        let depth = (SOLERO_RECURSION_MAX + 4) as usize;
        let tickets: Vec<_> = (0..=depth).map(|_| l.enter_write(tid)).collect();
        assert!(l.is_inflated());
        assert!(l.holds(tid));
        for t in tickets.into_iter().rev() {
            l.exit_write(tid, t);
        }
        assert!(!l.is_locked());
        assert!(!l.is_inflated());
        let after = l.raw_word().counter().unwrap();
        assert!(after > before, "deflation must publish a fresh counter");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let l = std::sync::Arc::new(SoleroLock::with_config(SoleroConfig {
            spin: SpinConfig {
                tier1: 4,
                tier2: 8,
                tier3: 2,
            },
            ..SoleroConfig::default()
        }));
        let counter = std::sync::Arc::new(AtomicU32::new(0));
        const THREADS: usize = 8;
        const ITERS: u32 = 2_000;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let l = std::sync::Arc::clone(&l);
            let c = std::sync::Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    l.write(|| {
                        let v = c.load(Ordering::Relaxed);
                        std::hint::black_box(v);
                        c.store(v + 1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u32 * ITERS);
    }

    #[test]
    fn contention_goes_through_monitor_and_counter_still_advances() {
        let l = std::sync::Arc::new(SoleroLock::with_config(SoleroConfig {
            spin: SpinConfig::immediate(),
            ..SoleroConfig::default()
        }));
        let before = l.raw_word().counter().unwrap();
        let tid = ThreadId::current();
        let t = l.enter_write(tid);
        let l2 = std::sync::Arc::clone(&l);
        let h = std::thread::spawn(move || {
            l2.write(|| {});
        });
        std::thread::sleep(Duration::from_millis(30));
        l.exit_write(tid, t);
        h.join().unwrap();
        // Drain any fat state with one more uncontended cycle.
        l.write(|| {});
        let w = l.raw_word();
        assert!(!w.is_inflated(), "deflates when uncontended: {w}");
        assert!(w.counter().unwrap() >= before + 3);
        let s = l.stats().snapshot();
        assert!(s.flc_waits + s.inflations >= 1, "{s}");
    }

    #[test]
    fn counter_monotonic_across_many_writes() {
        let l = SoleroLock::new();
        let mut last = l.raw_word().counter().unwrap();
        for _ in 0..100 {
            l.write(|| {});
            let c = l.raw_word().counter().unwrap();
            assert!(c > last);
            last = c;
        }
    }
}
