//! A common interface over the three evaluated lock implementations.
//!
//! The paper's workloads run unchanged over `Lock` (conventional
//! monitor), `RWLock`, and `SOLERO`; only the synchronization strategy
//! differs. [`SyncStrategy`] captures that: a workload expresses its
//! critical sections as closures, and each strategy decides how to
//! protect them — mutual exclusion, shared/exclusive modes, or
//! speculative elision with recovery.
//!
//! Read sections receive a [`WriteIntent`] context (a
//! [`Checkpoint`] plus the read-mostly upgrade hook): under SOLERO it is
//! live machinery; under the lock-based strategies it is a no-op, so the
//! workload code — including its back-edge check-points — is identical
//! across strategies, keeping the comparison fair.

use solero_obs::SectionKind;
use solero_runtime::fault::Fault;
use solero_runtime::stats::StatsSnapshot;
use solero_runtime::thread::ThreadId;
use solero_rwlock::{BravoLock, RawRwLock};
use solero_tasuki::TasukiLock;

use crate::config::SoleroConfig;
use crate::lock::SoleroLock;
use crate::session::{NullCheckpoint, WriteIntent};

/// A synchronization strategy for critical sections.
pub trait SyncStrategy: Send + Sync {
    /// Human-readable name used in benchmark output ("Lock", "RWLock",
    /// "SOLERO", ...).
    fn name(&self) -> &'static str;

    /// Runs `f` as a writing critical section.
    fn write_section<R>(&self, f: impl FnOnce() -> R) -> R
    where
        Self: Sized;

    /// Runs `f` as a read-only critical section. `f` may execute
    /// speculatively and multiple times under SOLERO; it must confine
    /// its effects to its return value.
    ///
    /// # Errors
    ///
    /// Propagates only genuine faults from `f`.
    fn read_section<R>(
        &self,
        f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault>
    where
        Self: Sized;

    /// Runs `f` as a read-mostly critical section: mostly reads, with
    /// `ensure_write` called before any write. Defaults to
    /// [`SyncStrategy::read_section`], which is correct for strategies
    /// whose read sections already hold a write-excluding lock.
    ///
    /// # Errors
    ///
    /// Propagates only genuine faults from `f`.
    fn mostly_section<R>(
        &self,
        f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault>
    where
        Self: Sized,
    {
        self.read_section(f)
    }

    /// Point-in-time statistics.
    fn snapshot(&self) -> StatsSnapshot;

    /// Resets the statistics counters.
    fn reset_stats(&self);
}

/// The conventional monitor — the paper's `Lock`.
///
/// Read sections acquire the lock exactly like write sections (mutual
/// exclusion does not distinguish them); they are counted as reads for
/// the Table 1 statistics.
#[derive(Debug, Default)]
pub struct LockStrategy {
    lock: TasukiLock,
}

impl LockStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying lock.
    pub fn lock(&self) -> &TasukiLock {
        &self.lock
    }
}

impl SyncStrategy for LockStrategy {
    fn name(&self) -> &'static str {
        "Lock"
    }

    fn write_section<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = solero_obs::section_start();
        let tid = ThreadId::current();
        self.lock.enter(tid);
        let r = f();
        self.lock.exit(tid);
        solero_obs::section_end(t, self.name(), SectionKind::Write);
        r
    }

    fn read_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let tid = ThreadId::current();
        // Same acquisition; counted as a read section so Table 1's
        // read-only ratio is strategy-independent.
        self.lock.enter_read(tid);
        let r = f(&mut NullCheckpoint);
        self.lock.exit(tid);
        solero_obs::section_end(t, self.name(), SectionKind::Read);
        r
    }

    fn mostly_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let tid = ThreadId::current();
        self.lock.enter_read(tid);
        let r = f(&mut NullCheckpoint);
        self.lock.exit(tid);
        solero_obs::section_end(t, self.name(), SectionKind::Mostly);
        r
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.lock.stats().snapshot()
    }

    fn reset_stats(&self) {
        self.lock.stats().reset();
    }
}

/// A reader-writer lock strategy, generic over the lock behind the
/// [`RawRwLock`] interface — the paper's `RWLock` baseline when
/// instantiated with [`JavaRwLock`](solero_rwlock::JavaRwLock), the
/// BRAVO biased contender when
/// instantiated with [`BravoLock`].
#[derive(Debug, Default)]
pub struct RwStrategy<L: RawRwLock> {
    lock: L,
}

/// The BRAVO biased reader-writer lock strategy (`BRAVO-RW` in the
/// benchmark tables).
pub type BravoStrategy = RwStrategy<BravoLock>;

impl<L: RawRwLock> RwStrategy<L> {
    /// Creates the strategy over a default-constructed lock.
    pub fn new() -> Self {
        RwStrategy { lock: L::default() }
    }

    /// The underlying lock.
    pub fn lock(&self) -> &L {
        &self.lock
    }
}

impl<L: RawRwLock> SyncStrategy for RwStrategy<L> {
    fn name(&self) -> &'static str {
        L::NAME
    }

    fn write_section<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = solero_obs::section_start();
        let r = {
            let _g = self.lock.write();
            f()
        };
        solero_obs::section_end(t, self.name(), SectionKind::Write);
        r
    }

    fn read_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let r = {
            let _g = self.lock.read();
            f(&mut NullCheckpoint)
        };
        solero_obs::section_end(t, self.name(), SectionKind::Read);
        r
    }

    fn mostly_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let r = {
            // A read-mostly section may write after `ensure_write`; under
            // a read-write lock that requires the write mode.
            let _g = self.lock.write();
            f(&mut NullCheckpoint)
        };
        solero_obs::section_end(t, self.name(), SectionKind::Mostly);
        r
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.lock.stats().snapshot()
    }

    fn reset_stats(&self) {
        self.lock.stats().reset();
    }
}

/// SOLERO — the paper's contribution, including its `Unelided` and
/// `WeakBarrier` ablation configurations.
#[derive(Debug, Default)]
pub struct SoleroStrategy {
    lock: SoleroLock,
    label: &'static str,
}

impl SoleroStrategy {
    /// The paper's default configuration.
    pub fn new() -> Self {
        SoleroStrategy {
            lock: SoleroLock::new(),
            label: "SOLERO",
        }
    }

    /// A strategy from a built [`SoleroConfig`], deriving the display
    /// label from the configuration — the one constructor behind
    /// `SoleroConfig::builder()`:
    ///
    /// ```
    /// use solero::{SoleroConfig, SoleroStrategy, SyncStrategy};
    ///
    /// let s = SoleroStrategy::configured(
    ///     SoleroConfig::builder().retries(4).weak_barrier(true).build(),
    /// );
    /// assert_eq!(s.name(), "WeakBarrier-SOLERO");
    /// ```
    pub fn configured(config: SoleroConfig) -> Self {
        let label = if config.elision == crate::config::ElisionMode::NoElide {
            "Unelided-SOLERO"
        } else if config.barrier == solero_runtime::fence::BarrierMode::Weak {
            "WeakBarrier-SOLERO"
        } else if config.adaptive.is_some() {
            "Adaptive-SOLERO"
        } else {
            "SOLERO"
        };
        Self::with_config(config, label)
    }

    /// A strategy with explicit configuration and display label.
    pub fn with_config(config: SoleroConfig, label: &'static str) -> Self {
        SoleroStrategy {
            lock: SoleroLock::with_config(config),
            label,
        }
    }

    /// The underlying lock.
    pub fn lock(&self) -> &SoleroLock {
        &self.lock
    }
}

impl SyncStrategy for SoleroStrategy {
    fn name(&self) -> &'static str {
        if self.label.is_empty() {
            "SOLERO"
        } else {
            self.label
        }
    }

    fn write_section<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = solero_obs::section_start();
        let r = self.lock.write(f);
        solero_obs::section_end(t, self.name(), SectionKind::Write);
        r
    }

    fn read_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let r = self.lock.read_only(|s| f(s));
        solero_obs::section_end(t, self.name(), SectionKind::Read);
        r
    }

    fn mostly_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let r = self.lock.read_mostly(|s| f(s));
        solero_obs::section_end(t, self.name(), SectionKind::Mostly);
        r
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.lock.stats().snapshot()
    }

    fn reset_stats(&self) {
        self.lock.stats().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero_rwlock::JavaRwLock;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn exercise<S: SyncStrategy>(s: &S) {
        let data = AtomicU64::new(0);
        s.write_section(|| data.store(5, Ordering::Release));
        let v = s
            .read_section(|ck| {
                ck.checkpoint()?;
                Ok(data.load(Ordering::Acquire))
            })
            .unwrap();
        assert_eq!(v, 5);
        s.mostly_section(|ck| {
            let cur = data.load(Ordering::Acquire);
            ck.ensure_write()?;
            data.store(cur + 1, Ordering::Release);
            Ok(())
        })
        .unwrap();
        assert_eq!(data.load(Ordering::Acquire), 6);
        let snap = s.snapshot();
        assert!(snap.total_sections() >= 2, "{}: {snap}", s.name());
        s.reset_stats();
        assert_eq!(s.snapshot().total_sections(), 0);
    }

    #[test]
    fn all_strategies_run_the_same_workload() {
        exercise(&LockStrategy::new());
        exercise(&RwStrategy::<JavaRwLock>::new());
        exercise(&BravoStrategy::new());
        exercise(&SoleroStrategy::new());
        exercise(&SoleroStrategy::configured(
            SoleroConfig::builder().unelided(true).build(),
        ));
        exercise(&SoleroStrategy::configured(
            SoleroConfig::builder().weak_barrier(true).build(),
        ));
        exercise(&SoleroStrategy::configured(
            SoleroConfig::builder().adaptive(true).build(),
        ));
        exercise(&crate::SeqStrategy::new(0u64));
        exercise(&crate::SeqStrategy::configured(
            SoleroConfig::builder().adaptive(true).build(),
            0u64,
        ));
    }

    #[test]
    fn read_ratio_is_strategy_independent() {
        for run in 0..3 {
            let (lock, rw, so) = (
                LockStrategy::new(),
                BravoStrategy::new(),
                SoleroStrategy::new(),
            );
            fn mix<S: SyncStrategy>(s: &S) -> f64 {
                for i in 0..100 {
                    if i % 10 == 0 {
                        s.write_section(|| {});
                    } else {
                        s.read_section(|_| Ok(())).unwrap();
                    }
                }
                s.snapshot().read_only_ratio()
            }
            let (a, b, c) = (mix(&lock), mix(&rw), mix(&so));
            assert!((a - 0.9).abs() < 1e-12, "run {run}: lock ratio {a}");
            assert!((b - 0.9).abs() < 1e-12, "run {run}: rw ratio {b}");
            assert!((c - 0.9).abs() < 1e-12, "run {run}: solero ratio {c}");
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            LockStrategy::new().name(),
            RwStrategy::<JavaRwLock>::new().name(),
            BravoStrategy::new().name(),
            SoleroStrategy::new().name(),
            SoleroStrategy::configured(SoleroConfig::builder().unelided(true).build()).name(),
            SoleroStrategy::configured(SoleroConfig::builder().weak_barrier(true).build()).name(),
            SoleroStrategy::configured(SoleroConfig::builder().adaptive(true).build()).name(),
            crate::SeqStrategy::new(0u64).name(),
            crate::SeqStrategy::configured(SoleroConfig::builder().adaptive(true).build(), 0u64)
                .name(),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
