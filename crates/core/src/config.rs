//! SOLERO configuration knobs.
//!
//! The defaults match the paper's evaluated configuration; the non-
//! default values exist to reproduce its ablation measurements
//! (`Unelided-SOLERO`, `WeakBarrier-SOLERO`) and to make tests
//! deterministic.

use solero_runtime::fence::BarrierMode;
use solero_runtime::spin::SpinConfig;

/// Whether read-only critical sections elide the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElisionMode {
    /// Elide writes to the lock word for read-only sections (SOLERO).
    #[default]
    Elide,
    /// Execute read-only sections as writing sections — the paper's
    /// `Unelided-SOLERO` ablation, which bounds SOLERO's overhead over
    /// the conventional lock (measured < 1.4%).
    NoElide,
}

/// Tuning knobs for a [`SoleroLock`](crate::SoleroLock).
///
/// # Examples
///
/// ```
/// use solero::{SoleroConfig, ElisionMode};
/// use solero_runtime::fence::BarrierMode;
///
/// let paper_default = SoleroConfig::default();
/// assert_eq!(paper_default.fallback_threshold, 1);
///
/// let weak_barrier = SoleroConfig {
///     barrier: BarrierMode::Weak,
///     ..SoleroConfig::default()
/// };
/// assert_eq!(weak_barrier.elision, ElisionMode::Elide);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoleroConfig {
    /// Elide read-only sections or not.
    pub elision: ElisionMode,
    /// Memory fences on the read-only fast path (§3.4). `Weak`
    /// reproduces the incorrect-fence `WeakBarrier-SOLERO` measurement.
    pub barrier: BarrierMode,
    /// Speculative failures tolerated before a read-only section falls
    /// back to acquiring the lock. The paper uses 1: "the fallback
    /// occurs after one failure".
    pub fallback_threshold: u32,
    /// Three-tier contention loop sizes (Figure 3 / Figure 8).
    pub spin: SpinConfig,
    /// Deterministic validation period at check-points: in addition to
    /// asynchronous events, every `checkpoint_period`-th poll validates.
    /// `0` disables the deterministic fallback (events only).
    pub checkpoint_period: u64,
}

impl Default for SoleroConfig {
    fn default() -> Self {
        SoleroConfig {
            elision: ElisionMode::Elide,
            barrier: BarrierMode::Strong,
            fallback_threshold: 1,
            spin: SpinConfig::default(),
            checkpoint_period: 1024,
        }
    }
}

impl SoleroConfig {
    /// The paper's `Unelided-SOLERO` ablation.
    pub fn unelided() -> Self {
        SoleroConfig {
            elision: ElisionMode::NoElide,
            ..Self::default()
        }
    }

    /// The paper's `WeakBarrier-SOLERO` ablation (incorrect fences,
    /// measured to isolate memory-ordering overhead).
    pub fn weak_barrier() -> Self {
        SoleroConfig {
            barrier: BarrierMode::Weak,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SoleroConfig::default();
        assert_eq!(c.elision, ElisionMode::Elide);
        assert_eq!(c.barrier, BarrierMode::Strong);
        assert_eq!(c.fallback_threshold, 1);
    }

    #[test]
    fn ablation_constructors() {
        assert_eq!(SoleroConfig::unelided().elision, ElisionMode::NoElide);
        assert_eq!(SoleroConfig::weak_barrier().barrier, BarrierMode::Weak);
    }
}
