//! SOLERO configuration knobs.
//!
//! The defaults match the paper's evaluated configuration; the non-
//! default values exist to reproduce its ablation measurements
//! (`Unelided-SOLERO`, `WeakBarrier-SOLERO`) and to make tests
//! deterministic.

use solero_runtime::contention::ContentionConfig;
use solero_runtime::fence::BarrierMode;
use solero_runtime::spin::SpinConfig;

use crate::adaptive::AdaptiveBudgets;

/// Whether read-only critical sections elide the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElisionMode {
    /// Elide writes to the lock word for read-only sections (SOLERO).
    #[default]
    Elide,
    /// Execute read-only sections as writing sections — the paper's
    /// `Unelided-SOLERO` ablation, which bounds SOLERO's overhead over
    /// the conventional lock (measured < 1.4%).
    NoElide,
}

/// Tuning knobs for a [`SoleroLock`](crate::SoleroLock).
///
/// # Examples
///
/// ```
/// use solero::{SoleroConfig, ElisionMode};
/// use solero_runtime::fence::BarrierMode;
///
/// let paper_default = SoleroConfig::default();
/// assert_eq!(paper_default.fallback_threshold, 1);
///
/// let weak_barrier = SoleroConfig {
///     barrier: BarrierMode::Weak,
///     ..SoleroConfig::default()
/// };
/// assert_eq!(weak_barrier.elision, ElisionMode::Elide);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoleroConfig {
    /// Elide read-only sections or not.
    pub elision: ElisionMode,
    /// Memory fences on the read-only fast path (§3.4). `Weak`
    /// reproduces the incorrect-fence `WeakBarrier-SOLERO` measurement.
    pub barrier: BarrierMode,
    /// Speculative failures tolerated before a read-only section falls
    /// back to acquiring the lock. The paper uses 1: "the fallback
    /// occurs after one failure".
    pub fallback_threshold: u32,
    /// Three-tier contention loop sizes (Figure 3 / Figure 8); still
    /// used by the slow *read* entry, which waits for the word to free
    /// rather than competing on a CAS.
    pub spin: SpinConfig,
    /// History-keyed back-off for the contending CAS probes of the slow
    /// write path and the retry-exhausted fallback (arXiv 1305.5800's
    /// contention manager, replacing the naive fixed spin there).
    pub contention: ContentionConfig,
    /// Deterministic validation period at check-points: in addition to
    /// asynchronous events, every `checkpoint_period`-th poll validates.
    /// `0` disables the deterministic fallback (events only).
    pub checkpoint_period: u64,
    /// Adaptive elision: when set, the lock carries an
    /// [`AdaptivePolicy`](crate::AdaptivePolicy) with these budgets and
    /// consults it at every read-section entry. `None` (the paper's
    /// configuration) speculates unconditionally.
    pub adaptive: Option<AdaptiveBudgets>,
}

impl Default for SoleroConfig {
    fn default() -> Self {
        SoleroConfig {
            elision: ElisionMode::Elide,
            barrier: BarrierMode::Strong,
            fallback_threshold: 1,
            spin: SpinConfig::default(),
            contention: ContentionConfig::default(),
            checkpoint_period: 1024,
            adaptive: None,
        }
    }
}

impl SoleroConfig {
    /// Starts a builder from the paper's default configuration.
    ///
    /// ```
    /// use solero::SoleroConfig;
    ///
    /// let cfg = SoleroConfig::builder().retries(3).weak_barrier(true).build();
    /// assert_eq!(cfg.fallback_threshold, 3);
    /// ```
    pub fn builder() -> SoleroConfigBuilder {
        SoleroConfigBuilder {
            cfg: Self::default(),
        }
    }

}

/// Builds a [`SoleroConfig`] starting from the paper's defaults; the
/// single construction path for ablation and tuning variants.
#[derive(Debug, Clone, Copy)]
pub struct SoleroConfigBuilder {
    cfg: SoleroConfig,
}

impl SoleroConfigBuilder {
    /// Speculative failures tolerated before falling back to acquiring
    /// the lock (the paper's value is 1). Clamped to at least 1.
    pub fn retries(mut self, n: u32) -> Self {
        self.cfg.fallback_threshold = n.max(1);
        self
    }

    /// `true` selects the incorrect-fence `WeakBarrier-SOLERO` ablation;
    /// `false` restores the correct strong fences.
    pub fn weak_barrier(mut self, weak: bool) -> Self {
        self.cfg.barrier = if weak {
            BarrierMode::Weak
        } else {
            BarrierMode::Strong
        };
        self
    }

    /// `true` selects the `Unelided-SOLERO` ablation (read-only sections
    /// acquire the lock); `false` restores elision.
    pub fn unelided(mut self, unelided: bool) -> Self {
        self.cfg.elision = if unelided {
            ElisionMode::NoElide
        } else {
            ElisionMode::Elide
        };
        self
    }

    /// Explicit elision mode.
    pub fn elision(mut self, mode: ElisionMode) -> Self {
        self.cfg.elision = mode;
        self
    }

    /// Explicit barrier mode.
    pub fn barrier(mut self, mode: BarrierMode) -> Self {
        self.cfg.barrier = mode;
        self
    }

    /// Three-tier contention loop sizes.
    pub fn spin(mut self, spin: SpinConfig) -> Self {
        self.cfg.spin = spin;
        self
    }

    /// History-keyed back-off policy for the slow write / fallback CAS
    /// probes. [`ContentionConfig::naive`] restores the pre-manager
    /// fixed cadence (the fallback-storm ablation);
    /// [`ContentionConfig::minimal`] bounds model-checked state spaces.
    pub fn contention(mut self, contention: ContentionConfig) -> Self {
        self.cfg.contention = contention;
        self
    }

    /// Deterministic validation period at check-points (`0` disables).
    pub fn checkpoint_period(mut self, period: u64) -> Self {
        self.cfg.checkpoint_period = period;
        self
    }

    /// `true` enables the adaptive elision policy with the default
    /// budgets (the bench fleet's `Adaptive-SOLERO` contender); `false`
    /// restores unconditional speculation.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.cfg.adaptive = on.then(AdaptiveBudgets::default);
        self
    }

    /// Adaptive elision with explicit budgets.
    pub fn adaptive_budgets(mut self, budgets: AdaptiveBudgets) -> Self {
        self.cfg.adaptive = Some(budgets);
        self
    }

    /// The finished configuration.
    pub fn build(self) -> SoleroConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SoleroConfig::default();
        assert_eq!(c.elision, ElisionMode::Elide);
        assert_eq!(c.barrier, BarrierMode::Strong);
        assert_eq!(c.fallback_threshold, 1);
    }

    #[test]
    fn ablation_spellings() {
        let unelided = SoleroConfig::builder().unelided(true).build();
        assert_eq!(unelided.elision, ElisionMode::NoElide);
        let weak = SoleroConfig::builder().weak_barrier(true).build();
        assert_eq!(weak.barrier, BarrierMode::Weak);
    }

    #[test]
    fn builder_covers_every_knob() {
        let cfg = SoleroConfig::builder()
            .retries(7)
            .weak_barrier(true)
            .checkpoint_period(64)
            .spin(SpinConfig::immediate())
            .build();
        assert_eq!(cfg.fallback_threshold, 7);
        assert_eq!(cfg.barrier, BarrierMode::Weak);
        assert_eq!(cfg.checkpoint_period, 64);
        assert_eq!(cfg.spin, SpinConfig::immediate());
        // retries(0) still falls back eventually (threshold >= 1).
        assert_eq!(SoleroConfig::builder().retries(0).build().fallback_threshold, 1);
        // Defaults flow through untouched.
        assert_eq!(SoleroConfig::builder().build(), SoleroConfig::default());
    }

    #[test]
    fn contention_knob_round_trips() {
        assert_eq!(
            SoleroConfig::default().contention,
            ContentionConfig::default()
        );
        let naive = SoleroConfig::builder()
            .contention(ContentionConfig::naive())
            .build();
        assert_eq!(naive.contention, ContentionConfig::naive());
        assert_eq!(naive.contention.shift_cap, 0, "naive mode never escalates");
        let minimal = SoleroConfig::builder()
            .contention(ContentionConfig::minimal())
            .build();
        assert_eq!(minimal.contention.attempts, 2);
    }

    #[test]
    fn adaptive_knob_round_trips() {
        assert_eq!(SoleroConfig::default().adaptive, None);
        let on = SoleroConfig::builder().adaptive(true).build();
        assert_eq!(on.adaptive, Some(AdaptiveBudgets::default()));
        let off = SoleroConfig::builder().adaptive(true).adaptive(false).build();
        assert_eq!(off, SoleroConfig::default());
        let custom = SoleroConfig::builder()
            .adaptive_budgets(AdaptiveBudgets::minimal())
            .build();
        assert_eq!(custom.adaptive, Some(AdaptiveBudgets::minimal()));
    }
}
