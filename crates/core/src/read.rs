//! Read-only lock elision and recovery — Figures 7, 8, 9, 17 and §3.3.
//!
//! The driver implements the paper's retry/fallback protocol:
//!
//! 1. Capture the lock word; if its low three bits are clear, run the
//!    section speculatively; otherwise take the slow entry (recursion,
//!    spin, or the monitor).
//! 2. On completion, re-read the word. Unchanged ⇒ the lock was free for
//!    the whole section and the reads are consistent — done, with no
//!    write to the lock word. Changed ⇒ the attempt failed.
//! 3. On a fault inside the section, validate: if the word changed the
//!    fault may be a speculation artifact — treat as a failed attempt;
//!    if unchanged the fault is genuine and propagates.
//! 4. After `fallback_threshold` failed attempts, acquire the lock and
//!    re-execute non-speculatively (starvation freedom).


use solero_sync::atomic::Ordering;

use solero_obs::{AbortReason, EventKind, LockEvent};
use solero_runtime::fault::Fault;
use solero_runtime::spin::Probe;
use solero_runtime::thread::ThreadId;
use solero_runtime::word::{SoleroWord, COUNTER_STEP, SOLERO_RECURSION_MAX, SOLERO_RECURSION_STEP};

use crate::config::ElisionMode;
use crate::lock::SoleroLock;
use crate::session::{MostlySession, ReadSession};

/// Outcome of settling one execution attempt.
enum Settled<R> {
    /// The section is finished (successfully or with a genuine fault).
    Done(Result<R, Fault>),
    /// The attempt failed; add this many failures and re-execute.
    Retry(u32),
}

impl SoleroLock {
    /// Runs `f` as a **read-only critical section**, eliding the lock
    /// when possible.
    ///
    /// `f` may run speculatively and more than once; it must be free of
    /// externally visible side effects (the paper's JIT verifies this —
    /// see the `solero-jit` crate) and should call
    /// [`ReadSession::checkpoint`](crate::Checkpoint::checkpoint) at
    /// loop back-edges.
    ///
    /// # Errors
    ///
    /// Returns `Err` only for *genuine* faults — those raised while the
    /// reads were provably consistent. Speculation artifacts are
    /// recovered internally by re-execution.
    ///
    /// # Examples
    ///
    /// ```
    /// use solero::{Fault, SoleroLock};
    /// use std::sync::atomic::{AtomicU64, Ordering};
    ///
    /// let lock = SoleroLock::new();
    /// let x = AtomicU64::new(7);
    /// let v = lock.read_only(|_s| Ok::<_, Fault>(x.load(Ordering::Acquire)))?;
    /// assert_eq!(v, 7);
    /// # Ok::<(), Fault>(())
    /// ```
    pub fn read_only<R>(
        &self,
        mut f: impl FnMut(&mut ReadSession<'_>) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        self.read_api(move |s| f(s))
    }

    /// Runs `f` as a **read-mostly critical section** (§5): elided like
    /// a read-only section, but `f` may call
    /// [`MostlySession::ensure_write`](crate::WriteIntent::ensure_write)
    /// before its first write; on upgrade failure the section re-executes
    /// while holding the lock.
    ///
    /// # Errors
    ///
    /// Returns `Err` only for genuine faults, as with
    /// [`SoleroLock::read_only`].
    ///
    /// # Examples
    ///
    /// ```
    /// use solero::{Fault, SoleroLock, WriteIntent};
    /// use std::sync::atomic::{AtomicU64, Ordering};
    ///
    /// let lock = SoleroLock::new();
    /// let hits = AtomicU64::new(0);
    /// lock.read_mostly(|s| {
    ///     // ... mostly reads; rare write path: ...
    ///     s.ensure_write()?;
    ///     hits.fetch_add(1, Ordering::Relaxed);
    ///     Ok::<_, Fault>(())
    /// })?;
    /// assert_eq!(hits.load(Ordering::Relaxed), 1);
    /// # Ok::<(), Fault>(())
    /// ```
    pub fn read_mostly<R>(
        &self,
        mut f: impl FnMut(&mut MostlySession<'_>) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        self.read_api(move |s| {
            // MostlySession is a transparent wrapper adding the upgrade
            // operation; state changes flow back to the driver's view.
            let mut m = MostlySession(ReadSession {
                lock: s.lock,
                v: s.v,
                held: s.held,
                poll: s.poll.clone(),
            });
            let r = f(&mut m);
            s.held = m.0.held;
            s.v = m.0.v;
            r
        })
    }

    /// The shared entry point: an inlined fast path (the code shape the
    /// paper's JIT emits at every read-only synchronized block) backed
    /// by the out-of-line retry/fallback driver.
    #[inline]
    fn read_api<R>(
        &self,
        mut f: impl FnMut(&mut ReadSession<'_>) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        if self.config.elision == ElisionMode::NoElide {
            return self.read_unelided(f);
        }
        // Adaptive consult: a forfeited entry acquires instead of
        // speculating. No speculation starts, so this is NOT an abort —
        // `read_aborts == abort_reason_sum()` must keep balancing — it
        // is counted separately as a policy skip.
        if let Some(p) = &self.policy {
            if let crate::adaptive::EntryDecision::Acquire { rearmed } = p.on_entry() {
                self.stats.policy_skips.fetch_add(1, Ordering::Relaxed);
                if rearmed {
                    self.stats.policy_rearms.fetch_add(1, Ordering::Relaxed);
                }
                return self.read_unelided(f);
            }
        }
        // Figure 7, lines 1–8, inlined.
        let v = self.word.load(Ordering::Acquire);
        if SoleroWord(v).is_elidable() {
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ElisionAttempt));
            self.config.barrier.read_entry_fence();
            let mut s = ReadSession::new(self, v, false);
            let out = f(&mut s);
            if let Ok(r) = out {
                if !s.held {
                    self.config.barrier.read_exit_fence();
                    if self.exit_validates(s.v) {
                        self.note_elided();
                        return Ok(r);
                    }
                }
                // Completed but needs the slow exit / failed validation.
                match self.settle_attempt(Ok(r), s.v, s.held) {
                    Settled::Done(res) => return res,
                    Settled::Retry(failures) => return self.read_resume(f, failures),
                }
            }
            match self.settle_attempt(out, s.v, s.held) {
                Settled::Done(res) => return res,
                Settled::Retry(failures) => return self.read_resume(f, failures),
            }
        }
        // Busy at entry: slow entry, then the driver loop.
        self.read_busy_entry(f)
    }

    /// Unelided-SOLERO: execute the read section as a writing critical
    /// section (the Figure 10 ablation).
    #[cold]
    fn read_unelided<R>(
        &self,
        mut f: impl FnMut(&mut ReadSession<'_>) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let tid = ThreadId::current();
        let t = self.enter_write(tid);
        let v1 = t.v1;
        let mut s = ReadSession::new(self, v1, true);
        let r = f(&mut s);
        self.exit_write(tid, t);
        r
    }

    /// First attempt when the word was busy at entry.
    #[cold]
    fn read_busy_entry<R>(
        &self,
        mut f: impl FnMut(&mut ReadSession<'_>) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let tid = ThreadId::current();
        let (v, held) = self.slow_read_enter(tid);
        if !held {
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ElisionAttempt));
            self.config.barrier.read_entry_fence();
        }
        let mut s = ReadSession::new(self, v, held);
        let out = f(&mut s);
        match self.settle_attempt(out, s.v, s.held) {
            Settled::Done(res) => res,
            Settled::Retry(failures) => self.read_resume(f, failures),
        }
    }

    /// Figure 7, line 6: the exit re-read. A speculative section is
    /// valid iff the lock word it observed at entry is still the
    /// current word — an `Acquire` load so everything the last writer
    /// published is visible before we vouch for the result.
    ///
    /// Under `--cfg solero_mc` this is also the mutation point the
    /// model checker must kill (see `crate::mutation`).
    #[inline]
    fn exit_validates(&self, v: u64) -> bool {
        #[cfg(solero_mc)]
        match crate::mutation::active() {
            crate::mutation::SKIP_EXIT_REREAD => return true,
            crate::mutation::WEAK_EXIT_LOAD => {
                return v == self.word.load(Ordering::Relaxed);
            }
            _ => {}
        }
        v == self.word.load(Ordering::Acquire)
    }

    /// Post-processing of one execution attempt: exit validation
    /// (Figure 7 lines 6–14) and the catch-block fault triage (§3.3).
    #[cold]
    fn settle_attempt<R>(&self, out: Result<R, Fault>, v: u64, held: bool) -> Settled<R> {
        match out {
            Ok(r) => {
                if held {
                    let released = self.slow_read_exit(ThreadId::current(), v);
                    debug_assert!(released, "held section must release");
                    return Settled::Done(Ok(r));
                }
                // Figure 7, line 6: validate.
                self.config.barrier.read_exit_fence();
                if self.exit_validates(v) {
                    self.note_elided();
                    return Settled::Done(Ok(r));
                }
                // Figure 7, line 9: the lock may be held by us through a
                // path the fast check misses.
                if self.slow_read_exit(ThreadId::current(), v) {
                    return Settled::Done(Ok(r));
                }
                self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                self.note_abort(AbortReason::WordChangedAtExit);
                Settled::Retry(1)
            }
            Err(fault) => {
                if held {
                    // Faults under a held lock are genuine: release and
                    // propagate (§3.3 — the conventional path).
                    let released = self.slow_read_exit(ThreadId::current(), v);
                    debug_assert!(released, "held section must release");
                    return Settled::Done(Err(fault));
                }
                if fault == Fault::UpgradeFailed {
                    // Figure 17, line 13: go straight to fallback. The
                    // abort is counted once, by the fallback branch of
                    // read_resume (RetryExhaustedFallback) — counting
                    // WordChangedAtExit here too would double-book the
                    // same abort and break
                    // `read_aborts == abort_reason_sum()`.
                    self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                    return Settled::Retry(self.config.fallback_threshold.max(1));
                }
                // Catch-block validation (§3.3): unchanged word means
                // the reads were consistent — the fault is genuine.
                if !fault.is_artifact_only() && v == self.word.load(Ordering::Acquire) {
                    return Settled::Done(Err(fault));
                }
                self.stats
                    .speculative_faults
                    .fetch_add(1, Ordering::Relaxed);
                self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                // A check-point raised the inconsistency; any other fault
                // was ruled an artifact because the word changed.
                self.note_abort(if fault == Fault::Inconsistent {
                    AbortReason::AsyncRevalidationFail
                } else {
                    AbortReason::WordChangedAtExit
                });
                Settled::Retry(1)
            }
        }
    }

    /// Re-execution loop: optimistic retries until `fallback_threshold`
    /// failures, then under the acquired lock (starvation freedom).
    #[cold]
    fn read_resume<R>(
        &self,
        mut f: impl FnMut(&mut ReadSession<'_>) -> Result<R, Fault>,
        mut failures: u32,
    ) -> Result<R, Fault> {
        let tid = ThreadId::current();
        loop {
            let (v, held) = if failures >= self.config.fallback_threshold {
                self.stats.fallback_acquires.fetch_add(1, Ordering::Relaxed);
                self.note_abort(AbortReason::RetryExhaustedFallback);
                let v = self.slow_enter_write(tid);
                solero_obs::emit(|| {
                    LockEvent::now(self.obs_id(), EventKind::FallbackAcquire)
                });
                (v, true)
            } else {
                let raw = self.word.load(Ordering::Acquire);
                if SoleroWord(raw).is_elidable() {
                    (raw, false)
                } else {
                    self.slow_read_enter(tid)
                }
            };
            if !held {
                solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ElisionAttempt));
                self.config.barrier.read_entry_fence();
            }
            let mut s = ReadSession::new(self, v, held);
            let out = f(&mut s);
            match self.settle_attempt(out, s.v, s.held) {
                Settled::Done(res) => return res,
                Settled::Retry(add) => failures += add,
            }
        }
    }

    /// Slow entry for read-only sections — Figure 8.
    ///
    /// Recursion increments the recursion bits; a busy flat lock is
    /// spun on; inflation (or persistent contention) acquires the fat
    /// lock. Returns `(v, held)` — `held` entries use `v = 0`, which can
    /// never match the word (paper: "the lock value never matches with
    /// zero because the inflation bit ... is set").
    #[cold]
    pub(crate) fn slow_read_enter(&self, tid: ThreadId) -> (u64, bool) {
        // Figure 8, lines 2–5: test_recursion.
        let v = SoleroWord(self.word.load(Ordering::Acquire));
        if !v.is_inflated() && v.tid() == Some(tid) {
            if v.recursion() == SOLERO_RECURSION_MAX {
                self.inflate_held(tid, v);
                self.monitor().enter(tid);
                return (0, true);
            }
            self.word.fetch_add(SOLERO_RECURSION_STEP, Ordering::Relaxed);
            self.stats.recursive_enters.fetch_add(1, Ordering::Relaxed);
            return (0, true);
        }
        self.stats.read_slow_enters.fetch_add(1, Ordering::Relaxed);
        // Figure 8, lines 6–17: three-tier wait for the lock to free up.
        let spun = self.config.spin.run(|| {
            let raw = self.word.load(Ordering::Acquire);
            let w = SoleroWord(raw);
            if w.is_elidable() {
                Probe::Done(Some(raw))
            } else if w.needs_monitor() {
                // Figure 8, line 11: inflated or contended — stop.
                Probe::Done(None)
            } else {
                Probe::Retry
            }
        });
        match spun {
            Some(Some(v)) => {
                // The word was busy at entry; speculation had to wait for
                // it to free up before (re)starting.
                self.note_abort(AbortReason::LockedAtEntry);
                (v, false)
            }
            // Figure 8, INFLATION: acquire the fat lock via the monitor.
            Some(None) | None => {
                self.note_abort(AbortReason::Inflation);
                // A deflate racing us can prune the binding we resolved
                // (`false`); the next call re-resolves — and if the word
                // went free in between, inflates it, which is the
                // contender-finds-free behaviour the protocol wants.
                while !self.enter_via_monitor(tid) {}
                (0, true)
            }
        }
    }

    /// Slow exit for read-only sections — Figure 9. Returns `true` if
    /// the section completed (recursion popped, flat lock released, or
    /// fat lock released); `false` if validation failed and the section
    /// must re-execute.
    #[cold]
    pub(crate) fn slow_read_exit(&self, tid: ThreadId, v: u64) -> bool {
        let w = SoleroWord(self.word.load(Ordering::Acquire));
        if !w.is_inflated() && w.tid() == Some(tid) {
            if w.recursion() > 0 {
                // Figure 9, lines 2–4.
                self.word.fetch_sub(SOLERO_RECURSION_STEP, Ordering::Release);
                return true;
            }
            // Figure 9, lines 5–8: release the flat lock with v + 0x100
            // and check the FLC bit. Lookup-only: the contender that
            // set FLC tabled the entry; if it is gone nobody is parked.
            match (w.has_flc(), self.monitor_existing()) {
                (true, Some(m)) => {
                    m.enter(tid);
                    self.word
                        .store(v.wrapping_add(COUNTER_STEP), Ordering::Release);
                    m.notify_all();
                    m.exit(tid);
                }
                _ => {
                    self.word
                        .store(v.wrapping_add(COUNTER_STEP), Ordering::Release);
                }
            }
            return true;
        }
        if w.is_inflated() {
            // Figure 9, lines 9–11. Lookup-only: only the current
            // binding can be owned by us, and while we own it the word
            // cannot change, so no id re-check is needed here.
            if let Some(m) = self.monitor_existing() {
                if m.owned_by(tid) {
                    self.exit_fat(tid);
                    return true;
                }
            }
        }
        // Figure 9, line 13: the lock value changed — re-execute.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SoleroConfig;
    use crate::session::{Checkpoint, WriteIntent};
    use solero_runtime::spin::SpinConfig;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn elided_read_leaves_word_untouched() {
        let l = SoleroLock::new();
        let before = l.raw_word();
        let n = l.read_only(|_| Ok::<_, Fault>(5)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(l.raw_word(), before, "read-only section writes no lock state");
        let s = l.stats().snapshot();
        assert_eq!(s.elision_success, 1);
        assert_eq!(s.elision_failure, 0);
    }

    #[test]
    fn unelided_mode_acquires() {
        let l = SoleroLock::with_config(SoleroConfig::builder().unelided(true).build());
        let before = l.raw_word().counter().unwrap();
        l.read_only(|s| {
            assert!(!s.is_speculative());
            Ok::<_, Fault>(())
        })
        .unwrap();
        assert_eq!(l.raw_word().counter().unwrap(), before + 1);
        assert_eq!(l.stats().snapshot().elision_success, 0);
    }

    #[test]
    fn genuine_fault_propagates_once() {
        let l = SoleroLock::new();
        let mut runs = 0;
        let r: Result<(), Fault> = l.read_only(|_| {
            runs += 1;
            Err(Fault::NullPointer)
        });
        assert_eq!(r, Err(Fault::NullPointer));
        assert_eq!(runs, 1, "consistent fault must not retry");
    }

    #[test]
    fn validation_failure_retries_then_falls_back() {
        let l = Arc::new(SoleroLock::new());
        let mut attempt = 0;
        let l2 = Arc::clone(&l);
        let r = l
            .read_only(|s| {
                attempt += 1;
                if attempt == 1 {
                    assert!(s.is_speculative());
                    // A concurrent writer invalidates us mid-section.
                    std::thread::scope(|sc| {
                        sc.spawn(|| l2.write(|| {}));
                    });
                    // The read completes but validation must now fail.
                    Ok::<_, Fault>(attempt)
                } else {
                    // Fallback execution holds the lock.
                    assert!(!s.is_speculative());
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(r, 2);
        let s = l.stats().snapshot();
        assert_eq!(s.elision_failure, 1);
        assert_eq!(s.fallback_acquires, 1);
        assert_eq!(s.elision_success, 0);
        assert!(!l.is_locked(), "fallback must release");
    }

    #[test]
    fn speculative_fault_with_changed_word_retries() {
        let l = Arc::new(SoleroLock::new());
        let mut attempt = 0;
        let l2 = Arc::clone(&l);
        let r = l
            .read_only(|_| {
                attempt += 1;
                if attempt == 1 {
                    std::thread::scope(|sc| {
                        sc.spawn(|| l2.write(|| {}));
                    });
                    // Fault that *could* be a speculation artifact.
                    Err(Fault::NullPointer)
                } else {
                    Ok(99)
                }
            })
            .unwrap();
        assert_eq!(r, 99);
        assert_eq!(l.stats().snapshot().speculative_faults, 1);
    }

    #[test]
    fn checkpoint_detects_concurrent_writer() {
        let l = Arc::new(SoleroLock::with_config(SoleroConfig {
            checkpoint_period: 1, // validate at every back-edge
            ..SoleroConfig::default()
        }));
        let l2 = Arc::clone(&l);
        let mut attempt = 0;
        let r = l
            .read_only(|s| {
                attempt += 1;
                if attempt == 1 {
                    std::thread::scope(|sc| {
                        sc.spawn(|| l2.write(|| {}));
                    });
                    // Simulated infinite loop: the check-point must
                    // break it.
                    for _ in 0..1_000_000 {
                        s.checkpoint()?;
                    }
                    panic!("checkpoint failed to detect the writer");
                }
                Ok::<_, Fault>(attempt)
            })
            .unwrap();
        assert_eq!(r, 2);
        assert!(l.stats().snapshot().async_validations > 0);
    }

    #[test]
    fn read_inside_write_section_is_recursive() {
        let l = SoleroLock::new();
        let tid = ThreadId::current();
        let t = l.enter_write(tid);
        let r = l
            .read_only(|s| {
                assert!(!s.is_speculative(), "nested read runs under the lock");
                Ok::<_, Fault>(1)
            })
            .unwrap();
        assert_eq!(r, 1);
        assert!(l.holds(tid), "outer lock still held");
        l.exit_write(tid, t);
        assert!(!l.is_locked());
        assert_eq!(l.stats().snapshot().recursive_enters, 1);
    }

    #[test]
    fn slow_read_enter_waits_for_writer() {
        let l = Arc::new(SoleroLock::with_config(SoleroConfig {
            spin: SpinConfig {
                tier1: 16,
                tier2: 1024,
                tier3: 64,
            },
            ..SoleroConfig::default()
        }));
        let data = Arc::new(AtomicU64::new(0));
        let tid = ThreadId::current();
        let t = l.enter_write(tid);
        let (l2, d2) = (Arc::clone(&l), Arc::clone(&data));
        let h = std::thread::spawn(move || {
            l2.read_only(|_| Ok::<_, Fault>(d2.load(Ordering::Acquire)))
                .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        data.store(42, Ordering::Release);
        l.exit_write(tid, t);
        assert_eq!(h.join().unwrap(), 42, "reader must see the writer's data");
        assert!(l.stats().snapshot().read_slow_enters >= 1);
    }

    #[test]
    fn read_mostly_upgrades_in_place() {
        let l = SoleroLock::new();
        let data = AtomicU64::new(0);
        let before = l.raw_word().counter().unwrap();
        l.read_mostly(|s| {
            let seen = data.load(Ordering::Acquire);
            s.ensure_write()?;
            assert!(!s.is_speculative());
            data.store(seen + 1, Ordering::Release);
            Ok::<_, Fault>(())
        })
        .unwrap();
        assert_eq!(data.load(Ordering::Acquire), 1);
        assert_eq!(
            l.raw_word().counter().unwrap(),
            before + 1,
            "upgraded section releases like a writer"
        );
        assert_eq!(l.stats().snapshot().mostly_upgrades, 1);
        assert!(!l.is_locked());
    }

    #[test]
    fn read_mostly_without_write_elides() {
        let l = SoleroLock::new();
        let before = l.raw_word();
        l.read_mostly(|_| Ok::<_, Fault>(())).unwrap();
        assert_eq!(l.raw_word(), before);
        assert_eq!(l.stats().snapshot().elision_success, 1);
    }

    #[test]
    fn read_mostly_upgrade_failure_falls_back() {
        let l = Arc::new(SoleroLock::new());
        let l2 = Arc::clone(&l);
        let data = AtomicU64::new(0);
        let mut attempt = 0;
        l.read_mostly(|s| {
            attempt += 1;
            if attempt == 1 {
                // Invalidate before the upgrade point.
                std::thread::scope(|sc| {
                    sc.spawn(|| l2.write(|| {}));
                });
            }
            s.ensure_write()?;
            data.fetch_add(1, Ordering::Relaxed);
            Ok::<_, Fault>(())
        })
        .unwrap();
        assert_eq!(attempt, 2, "failed upgrade re-executes under the lock");
        assert_eq!(data.load(Ordering::Relaxed), 1, "write happens exactly once");
        assert!(!l.is_locked());
    }

    #[test]
    fn concurrent_readers_all_elide() {
        let l = Arc::new(SoleroLock::new());
        let data = Arc::new(AtomicU64::new(1234));
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let l = Arc::clone(&l);
                let d = Arc::clone(&data);
                sc.spawn(move || {
                    for _ in 0..1_000 {
                        let v = l
                            .read_only(|_| Ok::<_, Fault>(d.load(Ordering::Acquire)))
                            .unwrap();
                        assert_eq!(v, 1234);
                    }
                });
            }
        });
        let s = l.stats().snapshot();
        assert_eq!(s.elision_success, 8_000);
        assert_eq!(s.elision_failure, 0);
        assert_eq!(s.write_enters, 0);
    }

    #[test]
    fn readers_and_writers_keep_snapshots_consistent() {
        // Two fields updated together under the lock must never be seen
        // torn by a *validated* read.
        let l = Arc::new(SoleroLock::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let (l, a, b) = (Arc::clone(&l), Arc::clone(&a), Arc::clone(&b));
                sc.spawn(move || {
                    for _ in 0..3_000 {
                        let (x, y) = l
                            .read_only(|_| {
                                Ok::<_, Fault>((
                                    a.load(Ordering::Acquire),
                                    b.load(Ordering::Acquire),
                                ))
                            })
                            .unwrap();
                        assert_eq!(x, y, "validated read observed a torn pair");
                    }
                });
            }
            for _ in 0..2 {
                let (l, a, b) = (Arc::clone(&l), Arc::clone(&a), Arc::clone(&b));
                sc.spawn(move || {
                    for _ in 0..3_000 {
                        l.write(|| {
                            let v = a.load(Ordering::Relaxed) + 1;
                            a.store(v, Ordering::Release);
                            std::hint::spin_loop();
                            b.store(v, Ordering::Release);
                        });
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 6_000);
    }
}
