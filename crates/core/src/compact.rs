//! Compact per-object locks over the global monitor table.
//!
//! This is the Compact Java Monitors design (Dice & Kogan, arXiv
//! 2102.04188) grafted onto the SOLERO elision protocol: the per-object
//! lock state shrinks to a **single eight-byte word** — the
//! [`CompactWord`] layout keeps the sequence counter *inside* the held
//! word, so there is no out-of-band `saved_v1` cell, no per-lock config,
//! no per-lock stats — and everything inflated, contended, or waiting
//! lives in the process-global [`MonitorTable`], keyed by the word's
//! address plus an allocation generation.
//!
//! The split is deliberate: a heap of millions of mostly-uncontended
//! objects pays eight bytes per object, while the handful that actually
//! inflate pay for a monitor only while contended — deflation prunes the
//! table entry again (see [`SoleroLock`](crate::SoleroLock)'s `exit_fat`
//! for the removal-ordering argument, which this module shares).
//!
//! Shared knobs and counters live in a [`CompactSpace`], one per lock
//! *population* (a heap, a bench fleet, a test): operations go through a
//! [`CompactRef`], which borrows the space and the word.
//!
//! The space carries no adaptive policy: per-lock abort histories are
//! precisely the per-object state this layout exists to avoid. Adaptive
//! elision remains a [`SoleroLock`](crate::SoleroLock) feature.

use std::sync::Arc;

use solero_sync::atomic::{AtomicU64, Ordering};

use solero_obs::{AbortReason, EventKind, LockEvent, RecentAborts};
use solero_runtime::fault::Fault;
use solero_runtime::osmonitor::{MonitorKey, MonitorTable, OsMonitor};
use solero_runtime::spin::Probe;
use solero_runtime::stats::LockStats;
use solero_runtime::thread::ThreadId;
use solero_runtime::word::{
    CompactWord, COMPACT_CTR_STEP, SOLERO_RECURSION_MAX, SOLERO_RECURSION_STEP,
};

use crate::config::{ElisionMode, SoleroConfig};
use crate::lock::FLC_RECHECK;

/// Shared configuration and statistics for a population of compact
/// locks.
///
/// Individual locks are bare eight-byte words ([`CompactLock`], or any
/// `AtomicU64` slot such as a heap cell); a `CompactSpace` holds
/// everything that would otherwise bloat them — the [`SoleroConfig`],
/// the aggregate [`LockStats`], and the recent-abort history. All
/// counters aggregate across the population, and the taxonomy invariant
/// `read_aborts == abort_reason_sum()` holds space-wide.
///
/// # Examples
///
/// ```
/// use solero::{CompactLock, CompactSpace, Fault};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let space = CompactSpace::new();
/// let lock = CompactLock::new();
/// let data = AtomicU64::new(0);
///
/// lock.bind(&space).write(|| data.store(42, Ordering::Release));
/// let seen = lock
///     .bind(&space)
///     .read_only(|| Ok::<_, Fault>(data.load(Ordering::Acquire)))
///     .unwrap();
/// assert_eq!(seen, 42);
/// assert_eq!(space.stats().snapshot().elision_success, 1);
/// ```
#[derive(Debug)]
pub struct CompactSpace {
    config: SoleroConfig,
    stats: LockStats,
    recent: RecentAborts,
}

impl Default for CompactSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactSpace {
    /// A space with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(SoleroConfig::default())
    }

    /// A space with explicit configuration. An `adaptive` setting is
    /// ignored — compact locks carry no per-lock policy state.
    pub fn with_config(config: SoleroConfig) -> Self {
        CompactSpace {
            config,
            stats: LockStats::default(),
            recent: RecentAborts::new(),
        }
    }

    /// The space's configuration.
    pub fn config(&self) -> &SoleroConfig {
        &self.config
    }

    /// Aggregate statistics across every lock in the space.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Aggregate per-class recent-abort history.
    pub fn recent_aborts(&self) -> &RecentAborts {
        &self.recent
    }

    /// Binds a raw lock word to this space under `key`, yielding the
    /// operation handle. The caller owns the identity discipline: `key`
    /// must be stable for the word's lifetime and never shared by two
    /// live locks (heap cells use the slot address plus the heap
    /// allocation generation; see `solero-heap`'s `lock_key`).
    pub fn lock<'a>(&'a self, word: &'a AtomicU64, key: MonitorKey) -> CompactRef<'a> {
        CompactRef {
            space: self,
            word,
            key,
        }
    }

    /// True if the global monitor table holds an entry for `key`.
    /// Quiescent locks must read `false`.
    pub fn resident(&self, key: MonitorKey) -> bool {
        MonitorTable::global().existing(key).is_some()
    }

    /// Sweeps `key`'s monitor-table entry, if any. Call when a lock
    /// word's storage is reclaimed outside a [`CompactLock`]'s `Drop`
    /// (e.g. a heap object freed while a lingering entry exists).
    pub fn detach(&self, key: MonitorKey) {
        MonitorTable::global().remove(key);
    }
}

/// A standalone eight-byte compact lock cell.
///
/// The entire per-lock footprint is this word — `size_of::<CompactLock>()
/// == 8` — which is the measured point of `bench_compact`. All
/// operations go through [`CompactLock::bind`], which pairs the cell
/// with a [`CompactSpace`].
///
/// Heap-resident locks don't need this type at all: any `AtomicU64`
/// slot works via [`CompactSpace::lock`] with a generation-bearing key.
#[derive(Debug)]
pub struct CompactLock {
    word: AtomicU64,
}

impl Default for CompactLock {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactLock {
    /// An unlocked cell (counter zero). `const`, so compact locks can
    /// be embedded in statics and arrays.
    pub const fn new() -> Self {
        CompactLock {
            word: AtomicU64::new(0),
        }
    }

    /// This cell's monitor-table identity: its address under the raw
    /// (generation 0) namespace. Stable for the cell's lifetime; `Drop`
    /// sweeps the entry, so address reuse by a *later* `CompactLock`
    /// starts fresh.
    pub fn key(&self) -> MonitorKey {
        MonitorKey::of_addr(&self.word as *const _ as usize)
    }

    /// Pairs this cell with a space for one or more operations.
    pub fn bind<'a>(&'a self, space: &'a CompactSpace) -> CompactRef<'a> {
        space.lock(&self.word, self.key())
    }
}

impl Drop for CompactLock {
    fn drop(&mut self) {
        MonitorTable::global().remove(self.key());
    }
}

/// Operation handle: a compact lock word bound to its
/// [`CompactSpace`]. Cheap to construct on every use.
#[derive(Debug, Clone, Copy)]
pub struct CompactRef<'a> {
    space: &'a CompactSpace,
    word: &'a AtomicU64,
    key: MonitorKey,
}

impl<'a> CompactRef<'a> {
    /// The current raw word (diagnostics and tests).
    pub fn raw_word(&self) -> CompactWord {
        CompactWord(self.word.load(Ordering::Acquire))
    }

    /// The monitor-table identity this handle operates under.
    pub fn key(&self) -> MonitorKey {
        self.key
    }

    /// True if the lock is currently in fat (inflated) mode.
    pub fn is_inflated(&self) -> bool {
        self.raw_word().is_inflated()
    }

    /// True if the global monitor table holds an entry for this lock.
    pub fn monitor_resident(&self) -> bool {
        self.space.resident(self.key)
    }

    /// True if any thread holds the lock (thin or fat).
    pub fn is_locked(&self) -> bool {
        let w = self.raw_word();
        if w.is_inflated() {
            self.monitor_existing().is_some_and(|m| m.is_owned())
        } else {
            w.is_held_flat()
        }
    }

    /// True if `tid` holds the lock.
    pub fn holds(&self, tid: ThreadId) -> bool {
        let w = self.raw_word();
        if w.is_inflated() {
            self.monitor_existing().is_some_and(|m| m.owned_by(tid))
        } else {
            w.tid() == Some(tid)
        }
    }

    #[inline]
    fn obs_id(&self) -> u64 {
        self.key.addr as u64
    }

    fn monitor_existing(&self) -> Option<Arc<OsMonitor>> {
        MonitorTable::global().existing(self.key)
    }

    /// Books one aborted speculative read attempt; replicates
    /// `SoleroLock::note_abort` minus the adaptive-policy hook, so the
    /// space-wide taxonomy invariant holds.
    #[cold]
    fn note_abort(&self, reason: AbortReason) {
        let stats = &self.space.stats;
        stats.read_aborts.fetch_add(1, Ordering::Relaxed);
        let counter = match reason {
            AbortReason::LockedAtEntry => &stats.abort_locked_at_entry,
            AbortReason::WordChangedAtExit => &stats.abort_word_changed_at_exit,
            AbortReason::AsyncRevalidationFail => &stats.abort_async_revalidation,
            AbortReason::RetryExhaustedFallback => &stats.abort_retry_exhausted,
            AbortReason::Inflation => &stats.abort_inflation,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.space.recent.note(reason);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Abort(reason)));
    }

    /// Runs `f` as a writing critical section.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        let tid = ThreadId::current();
        self.enter_write(tid);
        let r = f();
        self.exit_write(tid);
        r
    }

    /// Acquires the lock for writing. Unlike
    /// [`SoleroLock::enter_write`](crate::SoleroLock::enter_write) there
    /// is no ticket: the displaced counter rides inside the held word,
    /// which is the compact layout's point.
    pub fn enter_write(&self, tid: ThreadId) {
        self.space.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        let v1 = CompactWord(self.word.load(Ordering::Relaxed));
        if v1.is_elidable()
            && self
                .word
                .compare_exchange(
                    v1.raw(),
                    CompactWord::held_by(v1, tid).raw(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            self.space.stats.write_fast.fetch_add(1, Ordering::Relaxed);
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
            return;
        }
        self.slow_enter_write(tid);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
    }

    /// Releases a writing critical section.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `tid` holds the lock.
    pub fn exit_write(&self, tid: ThreadId) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteRelease));
        let v2 = CompactWord(self.word.load(Ordering::Relaxed));
        if v2.fast_releasable() {
            debug_assert_eq!(v2.tid(), Some(tid), "release by non-owner");
            self.word.store(v2.release_word().raw(), Ordering::Release);
            return;
        }
        self.slow_exit_write(tid, v2);
    }

    #[cold]
    fn slow_enter_write(&self, tid: ThreadId) {
        loop {
            let v = CompactWord(self.word.load(Ordering::Acquire));
            if v.is_inflated() {
                if self.enter_fat(tid) {
                    return;
                }
                continue;
            }
            if v.tid() == Some(tid) {
                // Recursive flat acquisition.
                if v.recursion() == SOLERO_RECURSION_MAX {
                    self.inflate_held(tid, v);
                    // The new level, on the now-tabled monitor.
                    MonitorTable::global()
                        .existing(self.key)
                        .expect("inflate_held tables the monitor")
                        .enter(tid);
                    return;
                }
                self.word.fetch_add(SOLERO_RECURSION_STEP, Ordering::Relaxed);
                self.space
                    .stats
                    .recursive_enters
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            if v.is_elidable() {
                if self
                    .word
                    .compare_exchange(
                        v.raw(),
                        CompactWord::held_by(v, tid).raw(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // Held by another thread (or FLC pending): probe under the
            // history-keyed contention manager, then park.
            let spun = self.space.config.contention.run_observed(
                || {
                    let v = CompactWord(self.word.load(Ordering::Acquire));
                    if v.is_elidable() {
                        if self
                            .word
                            .compare_exchange(
                                v.raw(),
                                CompactWord::held_by(v, tid).raw(),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            return Probe::Done(true);
                        }
                    } else if v.needs_monitor() {
                        return Probe::Done(false);
                    }
                    Probe::Retry
                },
                |_| {
                    self.space
                        .stats
                        .contention_backoffs
                        .fetch_add(1, Ordering::Relaxed);
                },
            );
            match spun {
                Some(true) => return,
                Some(false) | None => {
                    if self.enter_via_monitor(tid) {
                        return;
                    }
                }
            }
        }
    }

    /// Fat-mode entry with the binding check of `SoleroLock::enter_fat`:
    /// resolve the tabled monitor, take it, confirm the word still names
    /// that monitor's id.
    fn enter_fat(&self, tid: ThreadId) -> bool {
        let Some(m) = self.monitor_existing() else {
            return false;
        };
        m.enter(tid);
        let v = CompactWord(self.word.load(Ordering::Acquire));
        if v.monitor_id() == Some(m.id()) {
            self.space
                .stats
                .monitor_enters
                .fetch_add(1, Ordering::Relaxed);
            true
        } else {
            m.exit(tid);
            false
        }
    }

    /// FLC protocol under the monitor, with the staleness discipline of
    /// `SoleroLock::enter_via_monitor`: every iteration re-verifies the
    /// key→monitor binding (ownership pins it) and inflated words are
    /// only trusted when their id matches the owned monitor.
    fn enter_via_monitor(&self, tid: ThreadId) -> bool {
        let table = MonitorTable::global();
        let m = table.monitor_for(self.key);
        m.enter(tid);
        loop {
            if !table.is_current(self.key, &m) {
                m.exit(tid);
                return false;
            }
            let v = CompactWord(self.word.load(Ordering::Acquire));
            if v.is_inflated() {
                if v.monitor_id() == Some(m.id()) {
                    self.space
                        .stats
                        .monitor_enters
                        .fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                m.exit(tid);
                return false;
            }
            if !v.is_held_flat() {
                // Free counter word (FLC possibly set): inflate. The
                // displaced value advances the in-word counter one step
                // past anything a speculative reader may have captured.
                let displaced = v.release_word().raw();
                if self
                    .word
                    .compare_exchange(
                        v.raw(),
                        CompactWord::inflated(m.id()).raw(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    m.set_displaced(displaced);
                    self.space.stats.inflations.fetch_add(1, Ordering::Relaxed);
                    self.space
                        .stats
                        .monitor_enters
                        .fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                continue;
            }
            // Held flat by another thread: publish contention and park.
            if v.has_flc()
                || self
                    .word
                    .compare_exchange(
                        v.raw(),
                        v.with_flc().raw(),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                self.space.stats.flc_waits.fetch_add(1, Ordering::Relaxed);
                m.wait_timeout(tid, FLC_RECHECK);
            }
        }
    }

    /// Inflates while `tid` holds the flat lock (recursion saturation).
    /// The displaced counter comes straight out of the held word — the
    /// `saved_v1` side cell the [`SoleroWord`] layout needs does not
    /// exist here.
    ///
    /// [`SoleroWord`]: solero_runtime::word::SoleroWord
    fn inflate_held(&self, tid: ThreadId, v: CompactWord) {
        debug_assert_eq!(v.tid(), Some(tid));
        let m = MonitorTable::global().monitor_for(self.key);
        m.enter(tid);
        for _ in 0..v.recursion() {
            m.enter(tid);
        }
        m.set_displaced(v.release_word().raw());
        self.word
            .store(CompactWord::inflated(m.id()).raw(), Ordering::Release);
        self.space.stats.inflations.fetch_add(1, Ordering::Relaxed);
        m.notify_all();
    }

    #[cold]
    fn slow_exit_write(&self, tid: ThreadId, v: CompactWord) {
        if v.is_inflated() {
            // A fat *writing* release advances the displaced counter so
            // deflation never republishes a captured value.
            let m = self
                .monitor_existing()
                .expect("fat owner's monitor must be tabled");
            debug_assert!(m.owned_by(tid), "fat release by non-owner");
            m.bump_displaced(COMPACT_CTR_STEP);
            self.exit_fat(tid);
            return;
        }
        debug_assert_eq!(v.tid(), Some(tid), "release by non-owner");
        if v.recursion() > 0 {
            self.word.fetch_sub(SOLERO_RECURSION_STEP, Ordering::Release);
            return;
        }
        // FLC set while we held the lock: release under the monitor and
        // wake contenders; lookup-only, as in `SoleroLock`.
        debug_assert!(v.has_flc());
        match self.monitor_existing() {
            Some(m) => {
                m.enter(tid);
                self.word.store(v.release_word().raw(), Ordering::Release);
                m.notify_all();
                m.exit(tid);
            }
            None => self.word.store(v.release_word().raw(), Ordering::Release),
        }
    }

    /// Final fat release: deflate when uncontended — prune the table
    /// entry **first**, then publish the displaced counter (same
    /// ordering argument as `SoleroLock::exit_fat`).
    fn exit_fat(&self, tid: ThreadId) {
        let table = MonitorTable::global();
        let m = table
            .existing(self.key)
            .expect("fat owner's monitor must be tabled");
        debug_assert!(m.owned_by(tid), "fat release by non-owner");
        if m.depth(tid) == 1 && m.idle_for_deflation() {
            let removed = table.remove_if(self.key, &m);
            debug_assert!(removed, "deflater's binding must still be current");
            self.word.store(m.displaced(), Ordering::Release);
            self.space.stats.deflations.fetch_add(1, Ordering::Relaxed);
            m.notify_all();
        } else {
            // Handoff republish: a fat exit that does NOT deflate leaves
            // the inflated word untouched, so the next fat enterer's
            // acquire load of the word would otherwise synchronize with
            // the *inflater's* store — not with this section's writes.
            // The monitor's own mutex orders the handoff on real
            // hardware, but the release edge must also travel through
            // the word so the protocol is self-contained (and visible to
            // the model checker): republish the same inflated value as
            // an RMW before surrendering ownership.
            self.word.fetch_add(0, Ordering::AcqRel);
        }
        m.exit(tid);
    }

    /// Releases a read section that ended up holding the lock (fat,
    /// recursive, or thin with pending FLC) — the held arm of
    /// `SoleroLock::slow_read_exit`. Read releases of fat locks do not
    /// bump the displaced counter (nothing was written).
    fn exit_read_held(&self, tid: ThreadId) {
        let v = CompactWord(self.word.load(Ordering::Acquire));
        if v.is_inflated() {
            self.exit_fat(tid);
            return;
        }
        debug_assert_eq!(v.tid(), Some(tid), "read release by non-owner");
        if v.recursion() > 0 {
            self.word.fetch_sub(SOLERO_RECURSION_STEP, Ordering::Release);
            return;
        }
        match (v.has_flc(), self.monitor_existing()) {
            (true, Some(m)) => {
                m.enter(tid);
                self.word.store(v.release_word().raw(), Ordering::Release);
                m.notify_all();
                m.exit(tid);
            }
            _ => self.word.store(v.release_word().raw(), Ordering::Release),
        }
    }

    /// Runs `f` as a **read-only critical section**, eliding the lock
    /// when possible — the Figures 7–9 protocol with the same statistics
    /// semantics as [`SoleroLock::read_only`](crate::SoleroLock::read_only),
    /// booked space-wide. Compact sections are plain closures: there is
    /// no [`ReadSession`](crate::ReadSession) (no check-points, no
    /// read-mostly upgrade) — sections needing those belong on a
    /// `SoleroLock`.
    ///
    /// # Errors
    ///
    /// Returns `Err` only for *genuine* faults (raised while the reads
    /// were provably consistent); speculation artifacts are recovered by
    /// re-execution, falling back to acquisition after
    /// `fallback_threshold` failures.
    pub fn read_only<R>(&self, mut f: impl FnMut() -> Result<R, Fault>) -> Result<R, Fault> {
        let stats = &self.space.stats;
        let config = &self.space.config;
        stats.read_enters.fetch_add(1, Ordering::Relaxed);
        if config.elision == ElisionMode::NoElide {
            let tid = ThreadId::current();
            self.enter_write(tid);
            let r = f();
            self.exit_write(tid);
            return r;
        }
        let mut failures = 0u32;
        loop {
            if failures >= config.fallback_threshold {
                // Starvation freedom: acquire and run non-speculatively.
                stats.fallback_acquires.fetch_add(1, Ordering::Relaxed);
                self.note_abort(AbortReason::RetryExhaustedFallback);
                let tid = ThreadId::current();
                self.slow_enter_write(tid);
                solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::FallbackAcquire));
                let r = f();
                self.exit_read_held(tid);
                return r;
            }
            let v = CompactWord(self.word.load(Ordering::Acquire));
            if v.is_elidable() {
                solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ElisionAttempt));
                config.barrier.read_entry_fence();
                let out = f();
                match out {
                    Ok(r) => {
                        config.barrier.read_exit_fence();
                        if self.word.load(Ordering::Acquire) == v.raw() {
                            stats.elision_success.fetch_add(1, Ordering::Relaxed);
                            return Ok(r);
                        }
                        stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                        self.note_abort(AbortReason::WordChangedAtExit);
                        failures += 1;
                    }
                    Err(fault) => {
                        // Catch-block validation (§3.3): unchanged word
                        // means the reads were consistent — genuine.
                        if !fault.is_artifact_only()
                            && self.word.load(Ordering::Acquire) == v.raw()
                        {
                            return Err(fault);
                        }
                        stats.speculative_faults.fetch_add(1, Ordering::Relaxed);
                        stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                        self.note_abort(if fault == Fault::Inconsistent {
                            AbortReason::AsyncRevalidationFail
                        } else {
                            AbortReason::WordChangedAtExit
                        });
                        failures += 1;
                    }
                }
                continue;
            }
            // Busy at entry (Figure 8). Self-recursion runs under the
            // already-held flat lock.
            let tid = ThreadId::current();
            if !v.is_inflated() && v.tid() == Some(tid) {
                if v.recursion() == SOLERO_RECURSION_MAX {
                    self.inflate_held(tid, v);
                    MonitorTable::global()
                        .existing(self.key)
                        .expect("inflate_held tables the monitor")
                        .enter(tid);
                } else {
                    self.word.fetch_add(SOLERO_RECURSION_STEP, Ordering::Relaxed);
                    stats.recursive_enters.fetch_add(1, Ordering::Relaxed);
                }
                let r = f();
                self.exit_read_held(tid);
                return r;
            }
            stats.read_slow_enters.fetch_add(1, Ordering::Relaxed);
            // Three-tier wait for the word to free up.
            let spun = config.spin.run(|| {
                let w = CompactWord(self.word.load(Ordering::Acquire));
                if w.is_elidable() {
                    Probe::Done(true)
                } else if w.needs_monitor() {
                    Probe::Done(false)
                } else {
                    Probe::Retry
                }
            });
            match spun {
                Some(true) => {
                    // Freed up: speculation had to wait to (re)start.
                    self.note_abort(AbortReason::LockedAtEntry);
                    continue;
                }
                Some(false) | None => {
                    // Inflated or contended: run under the fat lock. A
                    // deflate racing us can orphan the binding we
                    // resolved; re-resolving converges (and inflates a
                    // word that went free, the contender-finds-free
                    // behaviour the protocol wants).
                    self.note_abort(AbortReason::Inflation);
                    while !self.enter_via_monitor(tid) {}
                    let r = f();
                    self.exit_read_held(tid);
                    return r;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solero_runtime::spin::SpinConfig;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::atomic::Ordering as StdOrdering;

    #[test]
    fn compact_lock_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<CompactLock>(), 8);
    }

    #[test]
    fn write_section_advances_counter() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let c0 = l.bind(&space).raw_word().counter().unwrap();
        l.bind(&space).write(|| {});
        assert_eq!(l.bind(&space).raw_word().counter().unwrap(), c0 + 1);
        l.bind(&space).write(|| {});
        assert_eq!(l.bind(&space).raw_word().counter().unwrap(), c0 + 2);
    }

    #[test]
    fn elided_read_leaves_word_untouched() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let before = l.bind(&space).raw_word();
        let n = l.bind(&space).read_only(|| Ok::<_, Fault>(5)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(l.bind(&space).raw_word(), before);
        let s = space.stats().snapshot();
        assert_eq!(s.elision_success, 1);
        assert_eq!(s.elision_failure, 0);
    }

    #[test]
    fn recursion_roundtrip() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let tid = ThreadId::current();
        let r = l.bind(&space);
        r.enter_write(tid);
        r.enter_write(tid);
        r.enter_write(tid);
        assert_eq!(r.raw_word().recursion(), 2);
        r.exit_write(tid);
        r.exit_write(tid);
        assert!(r.is_locked());
        r.exit_write(tid);
        assert!(!r.is_locked());
        assert_eq!(r.raw_word().counter(), Some(1));
    }

    #[test]
    fn deep_recursion_inflates_then_deflates_and_prunes() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let tid = ThreadId::current();
        let r = l.bind(&space);
        let before = r.raw_word().counter().unwrap();
        let depth = (SOLERO_RECURSION_MAX + 4) as usize;
        for _ in 0..=depth {
            r.enter_write(tid);
        }
        assert!(r.is_inflated());
        assert!(r.holds(tid));
        assert!(r.monitor_resident(), "inflated lock is tabled");
        for _ in 0..=depth {
            r.exit_write(tid);
        }
        assert!(!r.is_locked());
        assert!(!r.is_inflated());
        assert!(!r.monitor_resident(), "deflation prunes the table entry");
        assert!(r.raw_word().counter().unwrap() > before);
        let s = space.stats().snapshot();
        assert!(s.inflations >= 1);
        assert!(s.deflations >= 1);
        assert!(s.deflations <= s.inflations);
    }

    #[test]
    fn reader_overlapping_writer_aborts_then_succeeds() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let tid = ThreadId::current();
        let data = StdAtomicU64::new(0);
        // Simulate an overlapping writer by mutating the word mid-read.
        let mut first = true;
        let out = l.bind(&space).read_only(|| {
            if first {
                first = false;
                l.bind(&space).write(|| data.store(9, StdOrdering::Release));
            }
            Ok::<_, Fault>(data.load(StdOrdering::Acquire))
        });
        assert_eq!(out.unwrap(), 9);
        let s = space.stats().snapshot();
        assert_eq!(s.read_aborts, s.abort_reason_sum(), "taxonomy balances");
        assert!(s.elision_failure >= 1);
        assert_eq!(s.fallback_acquires, s.abort_retry_exhausted);
        let _ = tid;
    }

    #[test]
    fn genuine_fault_propagates() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let mut runs = 0;
        let r: Result<(), Fault> = l.bind(&space).read_only(|| {
            runs += 1;
            Err(Fault::NullPointer)
        });
        assert_eq!(r, Err(Fault::NullPointer));
        assert_eq!(runs, 1, "consistent fault must not re-execute");
    }

    #[test]
    fn recursive_read_under_write_section() {
        let space = CompactSpace::new();
        let l = CompactLock::new();
        let tid = ThreadId::current();
        let r = l.bind(&space);
        r.enter_write(tid);
        let got = r.read_only(|| Ok::<_, Fault>(7)).unwrap();
        assert_eq!(got, 7);
        assert!(r.is_locked(), "read under held lock must not release it");
        r.exit_write(tid);
        assert!(!r.is_locked());
        assert!(space.stats().snapshot().recursive_enters >= 1);
    }

    #[test]
    fn contended_writes_are_mutually_exclusive() {
        use std::sync::Arc;
        let space = Arc::new(CompactSpace::with_config(SoleroConfig {
            spin: SpinConfig {
                tier1: 4,
                tier2: 8,
                tier3: 2,
            },
            ..SoleroConfig::default()
        }));
        let l = Arc::new(CompactLock::new());
        let counter = Arc::new(StdAtomicU64::new(0));
        const THREADS: usize = 8;
        const ITERS: u64 = 2_000;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let (space, l, c) = (Arc::clone(&space), Arc::clone(&l), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    l.bind(&space).write(|| {
                        let v = c.load(StdOrdering::Relaxed);
                        std::hint::black_box(v);
                        c.store(v + 1, StdOrdering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(StdOrdering::Relaxed), THREADS as u64 * ITERS);
        // Quiescent: any inflation must have deflated and pruned.
        let r = l.bind(&space);
        assert!(!r.is_inflated());
        assert!(!r.monitor_resident(), "quiescent lock must not be tabled");
        let s = space.stats().snapshot();
        assert!(s.deflations <= s.inflations, "{s}");
    }

    #[test]
    fn drop_sweeps_lingering_entry() {
        let space = CompactSpace::new();
        // Drop in place behind a Box that outlives the lock: a lock's
        // identity is its address, so `drop(l)` (which *moves* first)
        // would sweep the wrong key, and keeping the box allocated
        // stops a parallel test from reusing the address mid-assert.
        let mut slot: Box<Option<CompactLock>> = Box::new(Some(CompactLock::new()));
        let key = slot.as_ref().as_ref().unwrap().key();
        // Plant an entry as a lingering contender would.
        let _m = MonitorTable::global().monitor_for(key);
        assert!(space.resident(key));
        *slot = None;
        assert!(
            MonitorTable::global().existing(key).is_none(),
            "Drop must sweep the entry"
        );
    }
}
