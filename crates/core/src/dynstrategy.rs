//! An object-safe facade over [`SyncStrategy`].
//!
//! [`SyncStrategy`]'s section methods are generic over closure and
//! return types, which makes the trait itself not dyn-compatible — yet
//! the workload driver, the benchmark harness, and the observability
//! exporter all want to iterate over a heterogeneous
//! `Vec<Box<dyn ...>>` of strategies. [`DynSyncStrategy`] is the
//! dyn-compatible mirror: sections take `&mut dyn FnMut` and return
//! `()`-shaped results, a blanket impl covers every [`SyncStrategy`]
//! for free, and typed adapters on the trait object
//! ([`write_with`](DynSyncStrategy::write_with) and friends) recover
//! the ergonomic generic signatures by smuggling the return value
//! through a captured `Option`.
//!
//! Under SOLERO a read section may execute several times; the adapters
//! store each successful attempt's value, so the *last* (validated)
//! execution wins — the same semantics the generic API gives.

use solero_runtime::fault::Fault;
use solero_runtime::stats::StatsSnapshot;

use crate::session::WriteIntent;
use crate::strategy::SyncStrategy;

/// A boxed, dynamically-dispatched synchronization strategy.
pub type BoxedStrategy = Box<dyn DynSyncStrategy>;

/// Dyn-compatible mirror of [`SyncStrategy`].
///
/// Implemented for every [`SyncStrategy`] by a blanket impl; implement
/// it directly only for types that cannot offer the generic API.
///
/// # Examples
///
/// ```
/// use solero::{BoxedStrategy, LockStrategy, SoleroStrategy};
///
/// let fleet: Vec<BoxedStrategy> = vec![
///     Box::new(LockStrategy::new()),
///     Box::new(SoleroStrategy::new()),
/// ];
/// for s in &fleet {
///     s.write_with(|| {});
///     let n = s.read_with(|_| Ok(42)).unwrap();
///     assert_eq!(n, 42);
///     assert_eq!(s.snapshot().total_sections(), 2);
/// }
/// ```
pub trait DynSyncStrategy: Send + Sync {
    /// Human-readable name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Runs `f` as a writing critical section.
    fn write_section_dyn(&self, f: &mut dyn FnMut());

    /// Runs `f` as a read-only critical section. `f` may execute
    /// speculatively and multiple times.
    ///
    /// # Errors
    ///
    /// Propagates only genuine faults from `f`.
    fn read_section_dyn(
        &self,
        f: &mut dyn FnMut(&mut dyn WriteIntent) -> Result<(), Fault>,
    ) -> Result<(), Fault>;

    /// Runs `f` as a read-mostly critical section.
    ///
    /// # Errors
    ///
    /// Propagates only genuine faults from `f`.
    fn mostly_section_dyn(
        &self,
        f: &mut dyn FnMut(&mut dyn WriteIntent) -> Result<(), Fault>,
    ) -> Result<(), Fault>;

    /// Point-in-time statistics.
    fn snapshot(&self) -> StatsSnapshot;

    /// Resets the statistics counters.
    fn reset_stats(&self);
}

impl<S: SyncStrategy> DynSyncStrategy for S {
    fn name(&self) -> &'static str {
        SyncStrategy::name(self)
    }

    fn write_section_dyn(&self, f: &mut dyn FnMut()) {
        self.write_section(|| f());
    }

    fn read_section_dyn(
        &self,
        f: &mut dyn FnMut(&mut dyn WriteIntent) -> Result<(), Fault>,
    ) -> Result<(), Fault> {
        self.read_section(|w| f(w))
    }

    fn mostly_section_dyn(
        &self,
        f: &mut dyn FnMut(&mut dyn WriteIntent) -> Result<(), Fault>,
    ) -> Result<(), Fault> {
        self.mostly_section(|w| f(w))
    }

    fn snapshot(&self) -> StatsSnapshot {
        SyncStrategy::snapshot(self)
    }

    fn reset_stats(&self) {
        SyncStrategy::reset_stats(self);
    }
}

impl dyn DynSyncStrategy + '_ {
    /// Typed adapter over [`write_section_dyn`]
    /// (`DynSyncStrategy::write_section_dyn`): runs `f` as a writing
    /// section and returns its value.
    pub fn write_with<R>(&self, f: impl FnOnce() -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.write_section_dyn(&mut || {
            let f = f.take().expect("write section ran more than once");
            out = Some(f());
        });
        out.expect("write section did not run")
    }

    /// Typed adapter over [`read_section_dyn`]
    /// (`DynSyncStrategy::read_section_dyn`): runs `f` as a read-only
    /// section, returning the value of the last successful execution.
    ///
    /// # Errors
    ///
    /// Propagates only genuine faults from `f`.
    pub fn read_with<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let mut out = None;
        self.read_section_dyn(&mut |w| {
            out = Some(f(w)?);
            Ok(())
        })?;
        Ok(out.expect("read section did not run"))
    }

    /// Typed adapter over [`mostly_section_dyn`]
    /// (`DynSyncStrategy::mostly_section_dyn`).
    ///
    /// # Errors
    ///
    /// Propagates only genuine faults from `f`.
    pub fn mostly_with<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let mut out = None;
        self.mostly_section_dyn(&mut |w| {
            out = Some(f(w)?);
            Ok(())
        })?;
        Ok(out.expect("mostly section did not run"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SoleroConfig;
    use crate::strategy::{BravoStrategy, LockStrategy, RwStrategy, SoleroStrategy};
    use solero_rwlock::JavaRwLock;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn fleet() -> Vec<BoxedStrategy> {
        vec![
            Box::new(LockStrategy::new()),
            Box::new(RwStrategy::<JavaRwLock>::new()),
            Box::new(BravoStrategy::new()),
            Box::new(SoleroStrategy::new()),
            Box::new(SoleroStrategy::configured(
                SoleroConfig::builder().unelided(true).build(),
            )),
        ]
    }

    #[test]
    fn boxed_fleet_runs_the_shared_workload() {
        for s in &fleet() {
            let data = AtomicU64::new(0);
            s.write_with(|| data.store(5, Ordering::Release));
            let v = s
                .read_with(|ck| {
                    ck.checkpoint()?;
                    Ok(data.load(Ordering::Acquire))
                })
                .unwrap();
            assert_eq!(v, 5, "{}", s.name());
            s.mostly_with(|w| {
                let cur = data.load(Ordering::Acquire);
                w.ensure_write()?;
                data.store(cur + 1, Ordering::Release);
                Ok(())
            })
            .unwrap();
            assert_eq!(data.load(Ordering::Acquire), 6, "{}", s.name());
            let snap = s.snapshot();
            // How sections are counted varies by strategy (RWLock's
            // mostly-section takes the write mode; Unelided-SOLERO's
            // reads also count a write enter), so bound rather than pin.
            assert!(snap.read_enters >= 1, "{}", s.name());
            assert!(snap.total_sections() >= 3, "{}", s.name());
            s.reset_stats();
            assert_eq!(s.snapshot().total_sections(), 0);
        }
    }

    #[test]
    fn genuine_fault_propagates_through_the_facade() {
        for s in &fleet() {
            let r: Result<u64, Fault> = s.read_with(|_| Err(Fault::DivisionByZero));
            assert_eq!(r, Err(Fault::DivisionByZero), "{}", s.name());
        }
    }

    #[test]
    fn retried_read_returns_the_validated_value() {
        // A concurrent writer invalidates the first speculative attempt;
        // the adapter must return the *re-executed* attempt's value.
        let solero = SoleroStrategy::new();
        let s: &dyn DynSyncStrategy = &solero;
        let inner = Arc::new(AtomicU64::new(0));
        let mut attempt = 0u64;
        let lock = solero.lock();
        let v = s
            .read_with(|_| {
                attempt += 1;
                if attempt == 1 {
                    std::thread::scope(|sc| {
                        sc.spawn(|| lock.write(|| inner.store(1, Ordering::Release)));
                    });
                }
                Ok(inner.load(Ordering::Acquire) * 100 + attempt)
            })
            .unwrap();
        assert_eq!(v, 102, "last successful execution wins");
        // Validation failure, then (threshold 1) the immediate fallback:
        // two classified aborts.
        let snap = DynSyncStrategy::snapshot(&solero);
        assert_eq!(snap.abort_word_changed_at_exit, 1);
        assert_eq!(snap.abort_retry_exhausted, 1);
        assert_eq!(snap.read_aborts, snap.abort_reason_sum());
    }

    #[test]
    fn names_survive_dynamic_dispatch() {
        let names: Vec<&str> = fleet().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["Lock", "RWLock", "BRAVO-RW", "SOLERO", "Unelided-SOLERO"]
        );
    }
}
