//! **SOLERO** — *Software Optimistic Lock Elision for Read-Only critical
//! sections* (Nakaike & Michael, PLDI 2010), reproduced in Rust.
//!
//! SOLERO is a drop-in replacement for the conventional Java monitor
//! whose **read-only critical sections never write the lock word**.
//! While the lock is free its word holds a sequence counter; every
//! writing critical section leaves the counter at a new value, so a
//! read-only section is consistent exactly when the word was "free" at
//! entry and unchanged at exit. Unlike a bare Linux-style seqlock,
//! SOLERO keeps the **full monitor feature set** — reentrancy, bi-modal
//! inflation to OS monitors, contention management — and **recovers**
//! from the faults speculation can induce (null dereferences, division
//! by zero, infinite loops) by validating the captured lock value and
//! re-executing, falling back to real acquisition after repeated
//! failures.
//!
//! # Quick start
//!
//! ```
//! use solero::{Fault, SoleroLock};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let lock = SoleroLock::new();
//! let balance = AtomicU64::new(100);
//!
//! // Writers acquire the lock and advance the sequence counter:
//! lock.write(|| balance.store(150, Ordering::Release));
//!
//! // Readers validate instead of acquiring — no lock-word write, no
//! // cache-line ping-pong between concurrent readers:
//! let seen = lock.read_only(|_session| {
//!     Ok::<_, Fault>(balance.load(Ordering::Acquire))
//! })?;
//! assert_eq!(seen, 150);
//! # Ok::<(), Fault>(())
//! ```
//!
//! # Crate map
//!
//! * [`SoleroLock`] — the lock: write paths (paper Figure 6), read-only
//!   elision (Figures 7–9), read-mostly upgrade (Figure 17);
//! * [`SoleroConfig`] / [`ElisionMode`] — the paper's ablations
//!   (`Unelided-SOLERO`, `WeakBarrier-SOLERO`);
//! * [`AdaptivePolicy`] / [`AdaptiveBudgets`] — per-lock adaptive
//!   elision: per-abort-class retry budgets, forfeit with geometric
//!   escalation, re-arm on quiet (the `Adaptive-SOLERO` contender);
//! * [`ReadSession`] / [`MostlySession`] / [`Checkpoint`] /
//!   [`WriteIntent`] — contexts handed to critical-section closures,
//!   carrying validation check-points and the in-place upgrade;
//! * [`CompactSpace`] / [`CompactLock`] / [`CompactRef`] — Compact Java
//!   Monitors over the SOLERO protocol: an eight-byte per-object lock
//!   word whose elision counter rides *inside* the held word, with all
//!   inflated state in the global generation-keyed monitor table —
//!   per-object footprint for millions-of-objects heaps;
//! * [`SeqLock`] / [`SeqStrategy`] — the inline-data seqlock fast path
//!   for small `Copy` read-mostly payloads: the payload lives beside
//!   the sequence word (one cache line, no heap indirection), readers
//!   validate with the same abort taxonomy, and writers contend under
//!   the history-keyed back-off of
//!   [`ContentionConfig`](solero_runtime::contention::ContentionConfig);
//! * [`SyncStrategy`] with [`LockStrategy`], [`RwStrategy`] (over any
//!   [`RawRwLock`]: the `RWLock` baseline [`JavaRwLock`] or the BRAVO
//!   biased lock [`BravoLock`]), [`SoleroStrategy`] — the lock
//!   implementations the evaluation compares, behind one interface so
//!   workloads are shared;
//! * [`DynSyncStrategy`] / [`BoxedStrategy`] — the object-safe facade,
//!   so drivers can hold heterogeneous `Vec<Box<dyn DynSyncStrategy>>`
//!   fleets and dispatch sections dynamically;
//! * [`Fault`] — the runtime-exception model used for speculative-fault
//!   recovery (§3.3).
//!
//! The companion crates build the rest of the paper's world:
//! `solero-heap` (a speculation-safe shadow heap), `solero-collections`
//! (HashMap/TreeMap), `solero-jit` (read-only classification of
//! synchronized regions), `solero-workloads` and `solero-bench` (the
//! evaluation).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod compact;
mod config;
mod dynstrategy;
mod lock;
#[cfg(solero_mc)]
pub mod mutation;
mod read;
mod seqlock;
mod session;
mod strategy;

pub use adaptive::{AdaptiveBudgets, AdaptivePolicy, EntryDecision, PolicyProbe};
pub use compact::{CompactLock, CompactRef, CompactSpace};
pub use config::{ElisionMode, SoleroConfig, SoleroConfigBuilder};
pub use dynstrategy::{BoxedStrategy, DynSyncStrategy};
pub use lock::{SoleroLock, SoleroWriteGuard, WriteTicket};
pub use seqlock::{SeqData, SeqLock, SeqStrategy, SEQ_INLINE_WORDS};
pub use session::{Checkpoint, MostlySession, NullCheckpoint, ReadSession, WriteIntent};
pub use strategy::{BravoStrategy, LockStrategy, RwStrategy, SoleroStrategy, SyncStrategy};

pub use solero_rwlock::{BravoLock, BravoPolicy, JavaRwLock, RawRwLock};

pub use solero_runtime::fault::Fault;
pub use solero_obs::RecentAborts;
