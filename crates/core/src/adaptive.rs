//! Adaptive per-lock elision policy.
//!
//! The five-reason abort taxonomy (`solero-obs`) classifies every
//! failed speculation, but the base protocol never *consults* that
//! history: elision keeps firing into write bursts exactly when the
//! paper says it loses. This module closes the loop with a ck_elide-
//! style state machine (per-abort-class `{retry, skip}` budgets with a
//! forfeit counter) crossed with failure-history-keyed geometric
//! escalation (Dice/Hendler/Mirsky, arXiv 1305.5800):
//!
//! * every abort of class *c* drains that class's **retry budget**;
//! * when a budget hits zero the lock **forfeits** elision: the next
//!   `skip[c] << penalty[c]` read sections go straight to real
//!   acquisition (no speculation, no aborts, no lock-word churn);
//! * each forfeit **escalates** the class's penalty (capped), so a
//!   persistently hostile phase backs off geometrically;
//! * `rearm_period` consecutive successful elisions **decay** one
//!   penalty level and refill every budget, so a lock that goes quiet
//!   converges back to always-elide.
//!
//! The state machine lives in one cache-padded block of plain
//! `std::sync::atomic` counters. That choice is deliberate twice over:
//! the counters stay off the lock word's contended line, and — like
//! `LockStats` — they are *not* interposable `solero-sync` atomics, so
//! under `--cfg solero_mc` they are not scheduling points and the
//! policy adds control-flow variety to model-checked schedules without
//! exploding the state space (only one vthread runs at a time, so
//! relaxed counter races cannot occur under the checker).

use std::sync::atomic::{AtomicU32, Ordering};

use solero_obs::ring::CachePadded;
use solero_obs::AbortReason;

/// Number of abort taxonomy classes ([`AbortReason::ALL`]).
const CLASSES: usize = 5;
/// Hard cap on penalty levels: `skip << 16` already dwarfs any real
/// forfeit window, and capping keeps the shift well-defined.
const PENALTY_HARD_CAP: u32 = 16;

/// Per-abort-class budgets for [`AdaptivePolicy`], indexed by
/// [`AbortReason::index`] (so position 0 is `locked_at_entry`, …,
/// position 4 is `inflation`).
///
/// `Copy + Eq` on purpose: the budgets ride inside
/// [`SoleroConfig`](crate::SoleroConfig), which stays a plain value
/// type.
///
/// # Examples
///
/// ```
/// use solero::AdaptiveBudgets;
///
/// let b = AdaptiveBudgets::default();
/// // The busy-at-entry class mirrors ck_elide's busy budgets.
/// assert_eq!((b.retry[0], b.skip[0]), (6, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBudgets {
    /// Aborts of each class tolerated (since the last refill) before
    /// elision is forfeited. Values are clamped to at least 1 in use.
    pub retry: [u32; 5],
    /// Base forfeit window per class: sections sent to real acquisition
    /// after that class's budget empties, before escalation. Clamped to
    /// at least 1 in use.
    pub skip: [u32; 5],
    /// Escalation cap: each forfeit of a class doubles its window up to
    /// `skip << max_penalty` (itself capped at 16 doublings).
    pub max_penalty: u32,
    /// Consecutive successful elisions that decay one penalty level and
    /// refill every retry budget. Clamped to at least 1 in use.
    pub rearm_period: u32,
}

impl Default for AdaptiveBudgets {
    /// Defaults patterned on ck_elide's (`skip_busy=2, retry_busy=6,
    /// skip_conflict=2, retry_conflict=5`), extended to the five-way
    /// SOLERO taxonomy — see DESIGN.md §10 for the rationale behind
    /// each divergence.
    fn default() -> Self {
        AdaptiveBudgets {
            //       entry  exit  async  fallback  inflation
            retry: [6, 5, 5, 2, 1],
            skip: [2, 2, 2, 4, 8],
            max_penalty: 4,
            rearm_period: 8,
        }
    }
}

impl AdaptiveBudgets {
    /// The smallest live configuration: every class forfeits after one
    /// abort, every forfeit skips exactly one section, no escalation,
    /// one success re-arms. Every policy transition is reachable within
    /// a handful of sections — the configuration the model-checker
    /// scenarios use.
    pub fn minimal() -> Self {
        AdaptiveBudgets {
            retry: [1; 5],
            skip: [1; 5],
            max_penalty: 0,
            rearm_period: 1,
        }
    }

    fn eff_retry(&self, class: usize) -> u32 {
        self.retry[class].max(1)
    }

    fn eff_skip(&self, class: usize) -> u32 {
        self.skip[class].max(1)
    }

    fn eff_penalty_cap(&self) -> u32 {
        self.max_penalty.min(PENALTY_HARD_CAP)
    }

    fn eff_rearm(&self) -> u32 {
        self.rearm_period.max(1)
    }

    /// The largest forfeit value any single budget exhaustion can set:
    /// `max(skip) << max_penalty`. After the last abort, at most this
    /// many section entries acquire before elision re-arms.
    pub fn max_forfeit(&self) -> u32 {
        let skip = (0..CLASSES).map(|c| self.eff_skip(c)).max().unwrap_or(1);
        shl_sat(skip, self.eff_penalty_cap())
    }
}

/// `v << s`, saturating at `u32::MAX` when high bits would be lost.
fn shl_sat(v: u32, s: u32) -> u32 {
    if s > v.leading_zeros() {
        u32::MAX
    } else {
        v << s
    }
}

/// What [`AdaptivePolicy::on_entry`] told the section to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryDecision {
    /// Speculate as usual.
    Elide,
    /// Elision is forfeited: acquire the lock for this section.
    Acquire {
        /// True when this entry drained the forfeit counter to zero —
        /// the *next* section speculates again (the re-arm edge, worth
        /// one `policy_rearms` tick).
        rearmed: bool,
    },
}

/// A point-in-time copy of the policy state, for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyProbe {
    /// Sections still to be sent to real acquisition.
    pub forfeit: u32,
    /// Remaining per-class retry budgets.
    pub retry_left: [u32; 5],
    /// Current per-class penalty levels.
    pub penalty: [u32; 5],
    /// Successful elisions since the last abort or re-arm tick.
    pub successes: u32,
}

#[derive(Debug)]
struct PolicyState {
    forfeit: AtomicU32,
    retry_left: [AtomicU32; CLASSES],
    penalty: [AtomicU32; CLASSES],
    successes: AtomicU32,
}

/// The per-lock adaptive decision state machine. See the module docs
/// for the transition rules and DESIGN.md §10 for the diagram.
///
/// All methods are lock-free and relaxed; the policy is advisory
/// control flow, never synchronization.
#[derive(Debug)]
pub struct AdaptivePolicy {
    budgets: AdaptiveBudgets,
    state: CachePadded<PolicyState>,
}

impl AdaptivePolicy {
    /// A fresh policy: elision enabled, budgets full, penalties zero.
    pub fn new(budgets: AdaptiveBudgets) -> Self {
        let retry_left = std::array::from_fn(|c| AtomicU32::new(budgets.eff_retry(c)));
        AdaptivePolicy {
            budgets,
            state: CachePadded(PolicyState {
                forfeit: AtomicU32::new(0),
                retry_left,
                penalty: std::array::from_fn(|_| AtomicU32::new(0)),
                successes: AtomicU32::new(0),
            }),
        }
    }

    /// The configured budgets.
    pub fn budgets(&self) -> &AdaptiveBudgets {
        &self.budgets
    }

    /// Decides this section entry: elide, or burn one forfeited entry
    /// and acquire. The zero-forfeit fast path is a single relaxed
    /// load.
    #[inline]
    pub fn on_entry(&self) -> EntryDecision {
        let st = &self.state.0;
        if st.forfeit.load(Ordering::Relaxed) == 0 {
            return EntryDecision::Elide;
        }
        match st
            .forfeit
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        {
            Ok(prev) => EntryDecision::Acquire { rearmed: prev == 1 },
            // Lost the race to the last forfeited entry: elide.
            Err(_) => EntryDecision::Elide,
        }
    }

    /// Records one classified abort. Returns `true` when this abort
    /// forfeited elision *while it was enabled* (the disable edge,
    /// worth one `policy_disables` tick).
    pub fn on_abort(&self, reason: AbortReason) -> bool {
        let st = &self.state.0;
        let c = reason.index();
        st.successes.store(0, Ordering::Relaxed);
        let drained = st.retry_left[c]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
        // Only the thread that took the budget from 1 to 0 forfeits;
        // an already-empty budget means a racing thread is mid-forfeit.
        if drained != Ok(1) {
            return false;
        }
        let p = st.penalty[c].load(Ordering::Relaxed);
        let window = shl_sat(
            self.budgets.eff_skip(c),
            p.min(self.budgets.eff_penalty_cap()),
        );
        st.penalty[c].store(
            (p + 1).min(self.budgets.eff_penalty_cap()),
            Ordering::Relaxed,
        );
        // Refill so the next burst is measured afresh once we re-arm.
        st.retry_left[c].store(self.budgets.eff_retry(c), Ordering::Relaxed);
        // Extend (never shorten) the forfeit window.
        st.forfeit.fetch_max(window, Ordering::Relaxed) == 0
    }

    /// Records one successful elision. Returns `true` on a re-arm tick:
    /// `rearm_period` consecutive successes elapsed, one penalty level
    /// decayed everywhere and every budget refilled (the caller decays
    /// its [`RecentAborts`](solero_obs::RecentAborts) history on the
    /// same tick).
    #[inline]
    pub fn on_elided(&self) -> bool {
        let st = &self.state.0;
        let s = st.successes.fetch_add(1, Ordering::Relaxed) + 1;
        if s < self.budgets.eff_rearm() {
            return false;
        }
        st.successes.store(0, Ordering::Relaxed);
        for c in 0..CLASSES {
            let _ = st.penalty[c]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| Some(p.saturating_sub(1)));
            st.retry_left[c].store(self.budgets.eff_retry(c), Ordering::Relaxed);
        }
        true
    }

    /// A snapshot of the live state.
    pub fn probe(&self) -> PolicyProbe {
        let st = &self.state.0;
        PolicyProbe {
            forfeit: st.forfeit.load(Ordering::Relaxed),
            retry_left: std::array::from_fn(|c| st.retry_left[c].load(Ordering::Relaxed)),
            penalty: std::array::from_fn(|c| st.penalty[c].load(Ordering::Relaxed)),
            successes: st.successes.load(Ordering::Relaxed),
        }
    }

    /// See [`AdaptiveBudgets::max_forfeit`].
    pub fn max_forfeit(&self) -> u32 {
        self.budgets.max_forfeit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &AdaptivePolicy) -> u32 {
        let mut skipped = 0;
        loop {
            match p.on_entry() {
                EntryDecision::Elide => return skipped,
                EntryDecision::Acquire { rearmed } => {
                    skipped += 1;
                    if rearmed {
                        assert_eq!(p.probe().forfeit, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn fresh_policy_always_elides() {
        let p = AdaptivePolicy::new(AdaptiveBudgets::default());
        for _ in 0..100 {
            assert_eq!(p.on_entry(), EntryDecision::Elide);
        }
        assert_eq!(p.probe().forfeit, 0);
    }

    #[test]
    fn budget_exhaustion_forfeits_exactly_skip_sections() {
        let p = AdaptivePolicy::new(AdaptiveBudgets::default());
        let b = *p.budgets();
        // retry[1] - 1 aborts: still armed.
        let mut disabled = false;
        for _ in 0..b.retry[1] {
            disabled |= p.on_abort(AbortReason::WordChangedAtExit);
        }
        assert!(disabled, "the last abort of the budget must disable");
        assert_eq!(p.probe().forfeit, b.skip[1], "base window, no escalation yet");
        assert_eq!(drain(&p), b.skip[1]);
        assert_eq!(p.on_entry(), EntryDecision::Elide, "re-armed after the window");
    }

    #[test]
    fn repeated_forfeits_escalate_geometrically_up_to_cap() {
        let p = AdaptivePolicy::new(AdaptiveBudgets::default());
        let b = *p.budgets();
        let mut windows = Vec::new();
        for _ in 0..b.max_penalty + 3 {
            for _ in 0..b.retry[0] {
                p.on_abort(AbortReason::LockedAtEntry);
            }
            windows.push(drain(&p));
        }
        for (i, w) in windows.iter().enumerate() {
            let expect = b.skip[0] << (i as u32).min(b.max_penalty);
            assert_eq!(*w, expect, "window {i}");
            assert!(*w <= p.max_forfeit());
        }
    }

    #[test]
    fn rearm_period_decays_penalty_and_refills_budgets() {
        let p = AdaptivePolicy::new(AdaptiveBudgets::default());
        let b = *p.budgets();
        // Escalate inflation (retry 1) twice.
        p.on_abort(AbortReason::Inflation);
        drain(&p);
        p.on_abort(AbortReason::Inflation);
        drain(&p);
        assert_eq!(p.probe().penalty[4], 2);
        // One full re-arm period of quiet successes: one level decays.
        let mut ticked = false;
        for _ in 0..b.rearm_period {
            ticked |= p.on_elided();
        }
        assert!(ticked);
        let pr = p.probe();
        assert_eq!(pr.penalty[4], 1);
        assert_eq!(pr.retry_left, std::array::from_fn(|c| b.retry[c].max(1)));
        // Enough quiet and the policy is indistinguishable from fresh.
        for _ in 0..b.rearm_period * (b.max_penalty + 1) {
            p.on_elided();
        }
        assert_eq!(p.probe().penalty, [0; 5]);
    }

    #[test]
    fn aborts_reset_the_success_streak() {
        let p = AdaptivePolicy::new(AdaptiveBudgets::default());
        for _ in 0..p.budgets().rearm_period - 1 {
            assert!(!p.on_elided());
        }
        p.on_abort(AbortReason::WordChangedAtExit);
        assert_eq!(p.probe().successes, 0);
        assert!(!p.on_elided(), "streak must restart after an abort");
    }

    #[test]
    fn minimal_budgets_cycle_in_three_sections() {
        let p = AdaptivePolicy::new(AdaptiveBudgets::minimal());
        assert!(p.on_abort(AbortReason::LockedAtEntry), "one abort disables");
        assert_eq!(p.on_entry(), EntryDecision::Acquire { rearmed: true });
        assert_eq!(p.on_entry(), EntryDecision::Elide);
        assert!(p.on_elided(), "one success re-arms fully");
    }

    #[test]
    fn degenerate_budgets_are_clamped() {
        let z = AdaptiveBudgets {
            retry: [0; 5],
            skip: [0; 5],
            max_penalty: u32::MAX,
            rearm_period: 0,
        };
        assert_eq!(z.max_forfeit(), 1 << PENALTY_HARD_CAP);
        let p = AdaptivePolicy::new(z);
        assert!(p.on_abort(AbortReason::Inflation));
        assert!(matches!(p.on_entry(), EntryDecision::Acquire { .. }));
        assert!(p.on_elided(), "rearm period 0 ticks every success");
    }

    #[test]
    fn max_forfeit_saturates() {
        let b = AdaptiveBudgets {
            retry: [1; 5],
            skip: [u32::MAX; 5],
            max_penalty: 16,
            rearm_period: 1,
        };
        assert_eq!(b.max_forfeit(), u32::MAX);
    }
}
