//! Inline-data SeqLock fast path for small `Copy` read-mostly payloads.
//!
//! The SOLERO protocol validates reads of *heap* data against the lock
//! word; for tiny fixed-size payloads the pointer-chase through
//! `solero-heap` handles dominates the section. [`SeqLock`] keeps the
//! payload **inline, beside the sequence word, inside one cache line**:
//! a read is a handful of same-line loads bracketed by the §3.4
//! barriers, with no indirection at all.
//!
//! The protocol is the classic Linux-style seqlock (SNIPPETS.md
//! snippet 2) expressed in the SOLERO abort taxonomy:
//!
//! * the sequence word is even when free, odd while a writer is
//!   installing — an odd word at entry is `locked_at_entry`;
//! * a reader captures the even word, speculatively loads the payload
//!   words, then re-validates the word after the
//!   [`read_exit_fence`](solero_runtime::fence::BarrierMode) — a
//!   changed word is `word_changed_at_exit`;
//! * after `fallback_threshold` failed attempts the reader acquires
//!   the writer side (`retry_exhausted_fallback`), so readers cannot
//!   starve under a write storm;
//! * writers contend on the even→odd CAS under the history-keyed
//!   [`ContentionConfig`](solero_runtime::contention::ContentionConfig)
//!   back-off, bump the payload, and release with `+2`.
//!
//! A *fallback read* restores the same even word it displaced instead
//! of bumping it — it wrote nothing, so concurrent speculative readers
//! spanning the fallback may still validate. (Fallback *sections* run
//! arbitrary closures that may upgrade and write, so they release with
//! the conservative `+2`.)
//!
//! The payload lives in `solero_sync` atomics, so under
//! `--cfg solero_mc` every payload word load/store is a scheduling
//! point with store-buffer/stale-value semantics — the
//! writer-bump/reader-validate handshake is model-checked in
//! `crates/mc/tests/seqlock_mc.rs` under DFS, DPOR, and TSO, and the
//! Relaxed-demoted exit load (`WEAK_EXIT_LOAD`) dies there with a
//! deterministic replay.

use std::marker::PhantomData;
use std::mem::{align_of, size_of};

use solero_sync::atomic::{AtomicU64, Ordering};

use solero_obs::{AbortReason, EventKind, LockEvent, RecentAborts, SectionKind};
use solero_runtime::fault::Fault;
use solero_runtime::spin::Probe;
use solero_runtime::stats::{LockStats, StatsSnapshot};

use crate::adaptive::{AdaptivePolicy, EntryDecision};
use crate::config::{ElisionMode, SoleroConfig};
use crate::session::{Checkpoint, WriteIntent};
use crate::strategy::SyncStrategy;

/// Inline payload capacity in 64-bit words (64 bytes — one cache line
/// of payload beside the sequence word).
pub const SEQ_INLINE_WORDS: usize = 8;

/// Marker for payloads that may live in the inline word array.
///
/// # Safety
///
/// Implementors must guarantee both of:
///
/// * **every bit pattern is a valid value** — a torn speculative read
///   assembles words from different writes before validation rejects
///   it, and the assembled (soon-discarded) value must still be a
///   valid `T`;
/// * **the representation has no padding bytes** — the payload is
///   copied to and from the word array as raw bytes.
///
/// Fixed-width integers, floats, and arrays of them qualify; types
/// with niches (`bool`, enums, references) or padding (most tuples and
/// structs) do not, unless laid out `#[repr(C)]` without padding over
/// qualifying fields.
pub unsafe trait SeqData: Copy + Send + 'static {}

unsafe impl SeqData for u8 {}
unsafe impl SeqData for u16 {}
unsafe impl SeqData for u32 {}
unsafe impl SeqData for u64 {}
unsafe impl SeqData for usize {}
unsafe impl SeqData for i8 {}
unsafe impl SeqData for i16 {}
unsafe impl SeqData for i32 {}
unsafe impl SeqData for i64 {}
unsafe impl SeqData for isize {}
unsafe impl SeqData for f32 {}
unsafe impl SeqData for f64 {}
unsafe impl SeqData for () {}
unsafe impl<T: SeqData, const N: usize> SeqData for [T; N] {}

/// A sequence lock with **inline data**: the payload shares the
/// structure (and for payloads up to 56 bytes, the cache line) with
/// the sequence word.
///
/// # Examples
///
/// ```
/// use solero::SeqLock;
///
/// let l = SeqLock::new([1u64, 2]);
/// assert_eq!(l.read_inline(), [1, 2]);
/// l.update_inline(|v| v[0] += 10);
/// assert_eq!(l.read_inline(), [11, 2]);
/// assert_eq!(l.stats().snapshot().elision_success, 2);
/// ```
#[derive(Debug)]
pub struct SeqLock<T: SeqData> {
    /// Even = free (version), odd = writer installing.
    seq: AtomicU64,
    /// The inline payload words; only `Self::WORDS` are used.
    data: [AtomicU64; SEQ_INLINE_WORDS],
    config: SoleroConfig,
    stats: LockStats,
    recent: RecentAborts,
    policy: Option<AdaptivePolicy>,
    _payload: PhantomData<fn(T) -> T>,
}

impl<T: SeqData> SeqLock<T> {
    /// Payload words used by `T`. Evaluating this constant is also the
    /// compile-time capacity check: payloads over 64 bytes or aligned
    /// past 8 are rejected at monomorphization.
    const WORDS: usize = {
        assert!(
            size_of::<T>() <= 8 * SEQ_INLINE_WORDS,
            "SeqLock payload exceeds the 64-byte inline capacity"
        );
        assert!(
            align_of::<T>() <= 8,
            "SeqLock payload must not require alignment beyond 8 bytes"
        );
        size_of::<T>().div_ceil(8)
    };

    /// A lock around `init` with the paper's default configuration.
    pub fn new(init: T) -> Self {
        Self::with_config(SoleroConfig::default(), init)
    }

    /// A lock around `init` with explicit configuration. The relevant
    /// knobs are `barrier`, `fallback_threshold`, `spin` (the odd-word
    /// entry wait), `contention` (the writer CAS), `checkpoint_period`,
    /// and `adaptive`; `elision` disables speculation entirely.
    pub fn with_config(config: SoleroConfig, init: T) -> Self {
        let lock = SeqLock {
            seq: AtomicU64::new(0),
            data: std::array::from_fn(|_| AtomicU64::new(0)),
            config,
            stats: LockStats::default(),
            recent: RecentAborts::new(),
            policy: config.adaptive.map(AdaptivePolicy::new),
            _payload: PhantomData,
        };
        lock.store_words(init);
        lock
    }

    /// The lock's configuration.
    pub fn config(&self) -> &SoleroConfig {
        &self.config
    }

    /// Per-lock statistics counters (shared taxonomy with
    /// [`SoleroLock`](crate::SoleroLock)).
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Per-class recent-abort history.
    pub fn recent_aborts(&self) -> &RecentAborts {
        &self.recent
    }

    /// The adaptive elision policy, if configured.
    pub fn policy(&self) -> Option<&AdaptivePolicy> {
        self.policy.as_ref()
    }

    /// The current raw sequence word (diagnostics and tests): even =
    /// free, odd = writer installing.
    pub fn raw_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Stable lock identity for observability events.
    #[inline]
    fn obs_id(&self) -> u64 {
        &self.seq as *const _ as usize as u64
    }

    // ---- payload word marshalling -------------------------------------

    fn encode(value: T) -> [u64; SEQ_INLINE_WORDS] {
        let mut buf = [0u64; SEQ_INLINE_WORDS];
        // SAFETY: T: SeqData has no padding, so all size_of::<T>()
        // bytes are initialized; the buffer is large enough by the
        // Self::WORDS capacity assertion.
        unsafe {
            std::ptr::copy_nonoverlapping(
                &value as *const T as *const u8,
                buf.as_mut_ptr() as *mut u8,
                size_of::<T>(),
            );
        }
        buf
    }

    fn decode(buf: &[u64; SEQ_INLINE_WORDS]) -> T {
        // SAFETY: the buffer is 8-aligned and T's alignment is at most
        // 8 (capacity assertion); T: SeqData admits every bit pattern,
        // so even a torn (about-to-be-discarded) image is a valid T.
        unsafe { std::ptr::read(buf.as_ptr() as *const T) }
    }

    /// Speculative payload load: per-word `Relaxed` atomics, so the
    /// model checker branches on stale/buffered values here while
    /// normal builds compile to plain loads.
    fn load_words(&self) -> [u64; SEQ_INLINE_WORDS] {
        let mut buf = [0u64; SEQ_INLINE_WORDS];
        for (i, slot) in buf.iter_mut().enumerate().take(Self::WORDS) {
            *slot = self.data[i].load(Ordering::Relaxed);
        }
        buf
    }

    fn store_words(&self, value: T) {
        let buf = Self::encode(value);
        for (i, word) in buf.iter().enumerate().take(Self::WORDS) {
            self.data[i].store(*word, Ordering::Relaxed);
        }
    }

    // ---- abort taxonomy (mirrors SoleroLock) --------------------------

    /// Classifies one aborted speculative attempt, exactly once, so
    /// `read_aborts == abort_reason_sum()` holds here as it does for
    /// [`SoleroLock`](crate::SoleroLock).
    #[cold]
    fn note_abort(&self, reason: AbortReason) {
        self.stats.read_aborts.fetch_add(1, Ordering::Relaxed);
        let counter = match reason {
            AbortReason::LockedAtEntry => &self.stats.abort_locked_at_entry,
            AbortReason::WordChangedAtExit => &self.stats.abort_word_changed_at_exit,
            AbortReason::AsyncRevalidationFail => &self.stats.abort_async_revalidation,
            AbortReason::RetryExhaustedFallback => &self.stats.abort_retry_exhausted,
            AbortReason::Inflation => &self.stats.abort_inflation,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.recent.note(reason);
        if let Some(p) = &self.policy {
            if p.on_abort(reason) {
                self.stats.policy_disables.fetch_add(1, Ordering::Relaxed);
            }
        }
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Abort(reason)));
    }

    #[inline]
    fn note_elided(&self) {
        self.stats.elision_success.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.policy {
            if p.on_elided() {
                self.recent.decay();
            }
        }
    }

    /// The exit re-validation: the captured even word must still be
    /// current, loaded `Acquire` after the
    /// [`read_exit_fence`](solero_runtime::fence::BarrierMode) — the
    /// same §3.4 barrier argument as SOLERO's Figure 7 line 6.
    ///
    /// Under `--cfg solero_mc` this shares `SoleroLock`'s mutation
    /// points: `SKIP_EXIT_REREAD` and the Relaxed-demoted
    /// `WEAK_EXIT_LOAD`, both of which the checker must kill.
    #[inline]
    fn exit_validates(&self, v1: u64) -> bool {
        #[cfg(solero_mc)]
        match crate::mutation::active() {
            crate::mutation::SKIP_EXIT_REREAD => return true,
            crate::mutation::WEAK_EXIT_LOAD => {
                return v1 == self.seq.load(Ordering::Relaxed);
            }
            _ => {}
        }
        v1 == self.seq.load(Ordering::Acquire)
    }

    // ---- writer side --------------------------------------------------

    /// Raw writer-side acquisition (no section counters): CAS the even
    /// word odd, contending under the history-keyed back-off. Returns
    /// the displaced even value.
    fn writer_lock(&self) -> u64 {
        let v = self.seq.load(Ordering::Relaxed);
        if v & 1 == 0
            && self
                .seq
                .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            return v;
        }
        self.writer_lock_slow()
    }

    #[cold]
    fn writer_lock_slow(&self) -> u64 {
        loop {
            let got = self.config.contention.run_observed(
                || {
                    let v = self.seq.load(Ordering::Relaxed);
                    if v & 1 == 0
                        && self
                            .seq
                            .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                    {
                        return Probe::Done(v);
                    }
                    Probe::Retry
                },
                |_| {
                    self.stats
                        .contention_backoffs
                        .fetch_add(1, Ordering::Relaxed);
                },
            );
            if let Some(v) = got {
                return v;
            }
            // Attempts exhausted. The inline lock has no monitor tier
            // to inflate to; yield and re-enter the managed probes (the
            // per-thread history keeps the renewed cadence polite).
            #[cfg(not(solero_mc))]
            std::thread::yield_now();
        }
    }

    /// Writing release: publish the payload and the next even word.
    fn writer_release(&self, displaced: u64) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteRelease));
        self.seq
            .store(displaced.wrapping_add(2), Ordering::Release);
    }

    /// Counted writer entry for the write-section APIs.
    fn writer_acquire(&self) -> u64 {
        self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        let v = self.seq.load(Ordering::Relaxed);
        if v & 1 == 0
            && self
                .seq
                .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.stats.write_fast.fetch_add(1, Ordering::Relaxed);
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
            return v;
        }
        let v = self.writer_lock_slow();
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
        v
    }

    // ---- typed inline fast paths --------------------------------------

    /// Reads the payload — the inline fast path: capture the even
    /// word, load the payload words, re-validate; retry and fall back
    /// per the SOLERO taxonomy.
    pub fn read_inline(&self) -> T {
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        if self.config.elision == ElisionMode::NoElide {
            return self.read_locked();
        }
        if let Some(p) = &self.policy {
            if let EntryDecision::Acquire { rearmed } = p.on_entry() {
                self.stats.policy_skips.fetch_add(1, Ordering::Relaxed);
                if rearmed {
                    self.stats.policy_rearms.fetch_add(1, Ordering::Relaxed);
                }
                return self.read_locked();
            }
        }
        let threshold = self.config.fallback_threshold.max(1);
        let mut failures = 0u32;
        while failures < threshold {
            let Some(v1) = self.speculative_entry() else {
                break;
            };
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ElisionAttempt));
            self.config.barrier.read_entry_fence();
            let buf = self.load_words();
            self.config.barrier.read_exit_fence();
            if self.exit_validates(v1) {
                self.note_elided();
                return Self::decode(&buf);
            }
            self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
            self.note_abort(AbortReason::WordChangedAtExit);
            failures += 1;
        }
        self.fallback_read()
    }

    /// Overwrites the payload as a writing critical section.
    pub fn write_inline(&self, value: T) {
        let v = self.writer_acquire();
        self.store_words(value);
        self.writer_release(v);
    }

    /// Read-modify-write of the payload under the writer side.
    pub fn update_inline(&self, f: impl FnOnce(&mut T)) {
        let v = self.writer_acquire();
        let mut cur = Self::decode(&self.load_words());
        f(&mut cur);
        self.store_words(cur);
        self.writer_release(v);
    }

    /// Entry for one speculative attempt: the current even word, or
    /// `None` when the odd-word wait exhausted its spin tiers and the
    /// caller must fall back.
    fn speculative_entry(&self) -> Option<u64> {
        let v = self.seq.load(Ordering::Acquire);
        if v & 1 == 0 {
            return Some(v);
        }
        // Writer installing: Figure 8-style bounded wait for an even
        // word, then a LockedAtEntry abort books the stall.
        self.stats.read_slow_enters.fetch_add(1, Ordering::Relaxed);
        let spun = self.config.spin.run(|| {
            let v = self.seq.load(Ordering::Acquire);
            if v & 1 == 0 {
                Probe::Done(v)
            } else {
                Probe::Retry
            }
        });
        match spun {
            Some(v) => {
                self.note_abort(AbortReason::LockedAtEntry);
                Some(v)
            }
            None => None,
        }
    }

    /// Retry-exhausted fallback for the typed read path: acquire the
    /// writer side, read directly, and **restore the displaced even
    /// word** — nothing was written, so concurrent speculative readers
    /// spanning this hold may still validate.
    #[cold]
    fn fallback_read(&self) -> T {
        self.stats.fallback_acquires.fetch_add(1, Ordering::Relaxed);
        self.note_abort(AbortReason::RetryExhaustedFallback);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::FallbackAcquire));
        self.read_locked()
    }

    /// Non-speculative typed read (unelided mode, policy skips, and the
    /// tail of [`SeqLock::fallback_read`]).
    #[cold]
    fn read_locked(&self) -> T {
        let v = self.writer_lock();
        let buf = self.load_words();
        // Restore, not bump: this reader displaced the word but wrote
        // no payload.
        self.seq.store(v, Ordering::Release);
        Self::decode(&buf)
    }

    // ---- closure sections (the strategy surface) ----------------------

    /// Runs `f` as an elided read/read-mostly section over ambient
    /// data, validated against this lock's sequence word — the closure
    /// analogue of [`SeqLock::read_inline`], with in-place upgrade via
    /// [`WriteIntent::ensure_write`].
    fn run_section<R>(
        &self,
        mut f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        if self.config.elision == ElisionMode::NoElide {
            return self.locked_section(&mut f);
        }
        if let Some(p) = &self.policy {
            if let EntryDecision::Acquire { rearmed } = p.on_entry() {
                self.stats.policy_skips.fetch_add(1, Ordering::Relaxed);
                if rearmed {
                    self.stats.policy_rearms.fetch_add(1, Ordering::Relaxed);
                }
                return self.locked_section(&mut f);
            }
        }
        let threshold = self.config.fallback_threshold.max(1);
        let mut failures = 0u32;
        while failures < threshold {
            let Some(v1) = self.speculative_entry() else {
                break;
            };
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ElisionAttempt));
            self.config.barrier.read_entry_fence();
            let mut session = SeqSession {
                lock: self,
                v: v1,
                held: false,
                polls: 0,
            };
            let out = f(&mut session);
            if session.held {
                // Upgraded mid-section: it held the writer side and may
                // have written — release like a writer. Faults under
                // the held lock are genuine and propagate.
                self.writer_release(v1);
                return out;
            }
            match out {
                Ok(r) => {
                    self.config.barrier.read_exit_fence();
                    if self.exit_validates(v1) {
                        self.note_elided();
                        return Ok(r);
                    }
                    self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                    self.note_abort(AbortReason::WordChangedAtExit);
                    failures += 1;
                }
                Err(Fault::UpgradeFailed) => {
                    // Figure 17, line 13: straight to fallback; the
                    // abort is booked once, as RetryExhaustedFallback.
                    self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(fault) => {
                    // Catch-block triage (§3.3): an unchanged word means
                    // the reads were consistent — the fault is genuine.
                    if !fault.is_artifact_only() && v1 == self.seq.load(Ordering::Acquire) {
                        return Err(fault);
                    }
                    self.stats
                        .speculative_faults
                        .fetch_add(1, Ordering::Relaxed);
                    self.stats.elision_failure.fetch_add(1, Ordering::Relaxed);
                    self.note_abort(if fault == Fault::Inconsistent {
                        AbortReason::AsyncRevalidationFail
                    } else {
                        AbortReason::WordChangedAtExit
                    });
                    failures += 1;
                }
            }
        }
        self.stats.fallback_acquires.fetch_add(1, Ordering::Relaxed);
        self.note_abort(AbortReason::RetryExhaustedFallback);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::FallbackAcquire));
        self.locked_section(&mut f)
    }

    /// Runs `f` holding the writer side (fallback, unelided mode, and
    /// policy skips). The closure may have written after
    /// `ensure_write`, so the release bumps conservatively.
    #[cold]
    fn locked_section<R>(
        &self,
        f: &mut impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let v = self.writer_lock();
        let mut session = SeqSession {
            lock: self,
            v,
            held: true,
            polls: 0,
        };
        let out = f(&mut session);
        self.writer_release(v);
        out
    }
}

/// The session handed to [`SeqStrategy`] section closures: a
/// [`Checkpoint`] validating against the sequence word plus the
/// in-place writer upgrade.
#[derive(Debug)]
struct SeqSession<'a, T: SeqData> {
    lock: &'a SeqLock<T>,
    /// The even word captured at entry (still the displaced value after
    /// an upgrade).
    v: u64,
    held: bool,
    polls: u64,
}

impl<T: SeqData> Checkpoint for SeqSession<'_, T> {
    fn checkpoint(&mut self) -> Result<(), Fault> {
        if self.held || self.lock.config.checkpoint_period == 0 {
            return Ok(());
        }
        self.polls += 1;
        if self.polls % self.lock.config.checkpoint_period != 0 {
            return Ok(());
        }
        self.lock
            .stats
            .async_validations
            .fetch_add(1, Ordering::Relaxed);
        if self.v == self.lock.seq.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(Fault::Inconsistent)
        }
    }

    fn is_speculative(&self) -> bool {
        !self.held
    }
}

impl<T: SeqData> WriteIntent for SeqSession<'_, T> {
    fn ensure_write(&mut self) -> Result<(), Fault> {
        if self.held {
            return Ok(());
        }
        // Figure 17 in miniature: upgrade in place iff the word is
        // still the captured even value.
        if self
            .lock
            .seq
            .compare_exchange(self.v, self.v + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.held = true;
            self.lock
                .stats
                .mostly_upgrades
                .fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(Fault::UpgradeFailed)
        }
    }
}

/// The inline-seqlock contender of the strategy fleet (`SeqLock` in
/// the benchmark tables): a [`SeqLock`] behind [`SyncStrategy`], plus
/// the typed `*_inline` fast paths for payload access without closure
/// dispatch.
///
/// # Examples
///
/// ```
/// use solero::{Fault, SeqStrategy, SyncStrategy};
///
/// let s = SeqStrategy::new([7u64, 7]);
/// assert_eq!(s.name(), "SeqLock");
/// assert_eq!(s.read_inline(), [7, 7]);
///
/// // The closure sections make it a drop-in fleet member too:
/// let sum = s
///     .read_section(|_| Ok::<_, Fault>(1 + 1))
///     .unwrap();
/// assert_eq!(sum, 2);
/// ```
#[derive(Debug)]
pub struct SeqStrategy<T: SeqData> {
    lock: SeqLock<T>,
    label: &'static str,
}

impl<T: SeqData> SeqStrategy<T> {
    /// Default configuration, labelled `SeqLock`.
    pub fn new(init: T) -> Self {
        SeqStrategy {
            lock: SeqLock::new(init),
            label: "SeqLock",
        }
    }

    /// Explicit configuration, deriving the display label the way
    /// [`SoleroStrategy::configured`](crate::SoleroStrategy::configured)
    /// does.
    pub fn configured(config: SoleroConfig, init: T) -> Self {
        let label = if config.adaptive.is_some() {
            "Adaptive-SeqLock"
        } else {
            "SeqLock"
        };
        SeqStrategy {
            lock: SeqLock::with_config(config, init),
            label,
        }
    }

    /// The underlying lock.
    pub fn lock(&self) -> &SeqLock<T> {
        &self.lock
    }

    /// Typed inline read — [`SeqLock::read_inline`] wrapped in the obs
    /// section timing, beside the closure-based
    /// [`read_section`](SyncStrategy::read_section).
    pub fn read_inline(&self) -> T {
        let t = solero_obs::section_start();
        let v = self.lock.read_inline();
        solero_obs::section_end(t, self.label, SectionKind::Read);
        v
    }

    /// Typed inline overwrite as a writing section.
    pub fn write_inline(&self, value: T) {
        let t = solero_obs::section_start();
        self.lock.write_inline(value);
        solero_obs::section_end(t, self.label, SectionKind::Write);
    }

    /// Typed inline read-modify-write as a writing section.
    pub fn update_inline(&self, f: impl FnOnce(&mut T)) {
        let t = solero_obs::section_start();
        self.lock.update_inline(f);
        solero_obs::section_end(t, self.label, SectionKind::Write);
    }
}

impl<T: SeqData> SyncStrategy for SeqStrategy<T> {
    fn name(&self) -> &'static str {
        self.label
    }

    fn write_section<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = solero_obs::section_start();
        let v = self.lock.writer_acquire();
        let r = f();
        self.lock.writer_release(v);
        solero_obs::section_end(t, self.label, SectionKind::Write);
        r
    }

    fn read_section<R>(
        &self,
        f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let r = self.lock.run_section(f);
        solero_obs::section_end(t, self.label, SectionKind::Read);
        r
    }

    fn mostly_section<R>(
        &self,
        f: impl FnMut(&mut dyn WriteIntent) -> Result<R, Fault>,
    ) -> Result<R, Fault> {
        let t = solero_obs::section_start();
        let r = self.lock.run_section(f);
        solero_obs::section_end(t, self.label, SectionKind::Mostly);
        r
    }

    fn snapshot(&self) -> StatsSnapshot {
        self.lock.stats().snapshot()
    }

    fn reset_stats(&self) {
        self.lock.stats().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
    use std::sync::Arc;

    #[test]
    fn inline_round_trip_and_word_sizes() {
        let l = SeqLock::new(5u64);
        assert_eq!(l.read_inline(), 5);
        l.write_inline(9);
        assert_eq!(l.read_inline(), 9);
        assert_eq!(SeqLock::<u8>::WORDS, 1);
        assert_eq!(SeqLock::<[u64; 8]>::WORDS, 8);
        assert_eq!(SeqLock::<()>::WORDS, 0);
        let unit = SeqLock::new(());
        unit.read_inline();
        let bytes = SeqLock::new([1u8, 2, 3]);
        assert_eq!(bytes.read_inline(), [1, 2, 3]);
        bytes.update_inline(|b| b[1] = 7);
        assert_eq!(bytes.read_inline(), [1, 7, 3]);
    }

    #[test]
    fn reads_elide_and_writes_advance_the_word() {
        let l = SeqLock::new([0u64; 2]);
        let s0 = l.raw_seq();
        assert_eq!(s0 & 1, 0);
        for _ in 0..3 {
            l.read_inline();
        }
        assert_eq!(l.raw_seq(), s0, "elided reads never write the word");
        l.update_inline(|v| *v = [1, 1]);
        assert_eq!(l.raw_seq(), s0 + 2, "a write section advances by 2");
        let s = l.stats().snapshot();
        assert_eq!(s.elision_success, 3);
        assert_eq!(s.write_enters, 1);
        assert_eq!(s.write_fast, 1);
        assert_eq!(s.read_aborts, s.abort_reason_sum());
    }

    #[test]
    fn unelided_mode_restores_the_word() {
        let l = SeqLock::with_config(
            SoleroConfig::builder().unelided(true).build(),
            11u64,
        );
        let s0 = l.raw_seq();
        assert_eq!(l.read_inline(), 11);
        assert_eq!(l.raw_seq(), s0, "a locked typed read restores, not bumps");
        assert_eq!(l.stats().snapshot().elision_success, 0);
    }

    #[test]
    fn concurrent_pairs_are_never_torn() {
        let l = Arc::new(SeqLock::new([0u64; 2]));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                sc.spawn(move || {
                    for _ in 0..20_000 {
                        let [a, b] = l.read_inline();
                        assert_eq!(a, b, "validated inline read observed a torn pair");
                    }
                });
            }
            for _ in 0..2 {
                let l = Arc::clone(&l);
                sc.spawn(move || {
                    for _ in 0..5_000 {
                        l.update_inline(|v| {
                            v[0] += 1;
                            std::hint::spin_loop();
                            v[1] += 1;
                        });
                    }
                });
            }
        });
        assert_eq!(l.read_inline(), [10_000, 10_000]);
        let s = l.stats().snapshot();
        assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
        assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
        assert_eq!(l.raw_seq() & 1, 0, "lock ends released");
    }

    #[test]
    fn strategy_runs_the_shared_workload_shape() {
        let s = SeqStrategy::new(0u64);
        let data = StdAtomicU64::new(0);
        s.write_section(|| data.store(5, StdOrdering::Release));
        let v = s
            .read_section(|ck| {
                ck.checkpoint()?;
                Ok(data.load(StdOrdering::Acquire))
            })
            .unwrap();
        assert_eq!(v, 5);
        s.mostly_section(|ck| {
            let cur = data.load(StdOrdering::Acquire);
            ck.ensure_write()?;
            data.store(cur + 1, StdOrdering::Release);
            Ok(())
        })
        .unwrap();
        assert_eq!(data.load(StdOrdering::Acquire), 6);
        let snap = s.snapshot();
        assert!(snap.total_sections() >= 2);
        assert_eq!(snap.mostly_upgrades, 1);
        assert_eq!(snap.read_aborts, snap.abort_reason_sum());
        s.reset_stats();
        assert_eq!(s.snapshot().total_sections(), 0);
    }

    #[test]
    fn mostly_upgrade_releases_like_a_writer() {
        let s = SeqStrategy::new(3u64);
        let before = s.lock().raw_seq();
        s.mostly_section(|ck| {
            ck.ensure_write()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            s.lock().raw_seq(),
            before + 2,
            "an upgraded section must abort overlapping readers"
        );
        assert_eq!(s.snapshot().mostly_upgrades, 1);
    }

    #[test]
    fn genuine_fault_propagates_once() {
        let l = SeqLock::new(0u64);
        let mut runs = 0;
        let r: Result<(), Fault> = l.run_section(|_| {
            runs += 1;
            Err(Fault::NullPointer)
        });
        assert_eq!(r, Err(Fault::NullPointer));
        assert_eq!(runs, 1, "consistent fault must not retry");
    }

    #[test]
    fn validation_failure_retries_then_falls_back() {
        let l = Arc::new(SeqLock::new(0u64));
        let l2 = Arc::clone(&l);
        let mut attempt = 0;
        let r = l
            .run_section(|s| {
                attempt += 1;
                if attempt == 1 {
                    assert!(s.is_speculative());
                    std::thread::scope(|sc| {
                        sc.spawn(|| l2.write_inline(1));
                    });
                    Ok::<_, Fault>(attempt)
                } else {
                    assert!(!s.is_speculative(), "fallback holds the writer side");
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(r, 2);
        let s = l.stats().snapshot();
        assert_eq!(s.elision_failure, 1);
        assert_eq!(s.fallback_acquires, 1);
        assert_eq!(s.abort_word_changed_at_exit, 1);
        assert_eq!(s.abort_retry_exhausted, 1);
        assert_eq!(s.read_aborts, s.abort_reason_sum());
        assert_eq!(l.raw_seq() & 1, 0, "fallback must release");
    }

    #[test]
    fn checkpoint_detects_concurrent_writer() {
        let l = Arc::new(SeqLock::with_config(
            SoleroConfig {
                checkpoint_period: 1,
                ..SoleroConfig::default()
            },
            0u64,
        ));
        let l2 = Arc::clone(&l);
        let mut attempt = 0;
        let r = l
            .run_section(|s| {
                attempt += 1;
                if attempt == 1 {
                    std::thread::scope(|sc| {
                        sc.spawn(|| l2.write_inline(1));
                    });
                    for _ in 0..1_000_000 {
                        s.checkpoint()?;
                    }
                    panic!("checkpoint failed to detect the writer");
                }
                Ok::<_, Fault>(attempt)
            })
            .unwrap();
        assert_eq!(r, 2);
        let s = l.stats().snapshot();
        assert!(s.async_validations > 0);
        assert_eq!(s.abort_async_revalidation, 1);
        assert_eq!(s.read_aborts, s.abort_reason_sum());
    }

    #[test]
    fn adaptive_policy_rides_along() {
        let s = SeqStrategy::configured(
            SoleroConfig::builder().adaptive(true).build(),
            0u64,
        );
        assert_eq!(s.name(), "Adaptive-SeqLock");
        assert!(s.lock().policy().is_some());
        for _ in 0..10 {
            assert_eq!(s.read_inline(), 0);
        }
        assert_eq!(s.snapshot().elision_success, 10);
    }

    #[test]
    fn upgrade_failure_reexecutes_under_the_lock() {
        let l = Arc::new(SeqLock::new(0u64));
        let l2 = Arc::clone(&l);
        let hits = StdAtomicU64::new(0);
        let mut attempt = 0;
        l.run_section(|s| {
            attempt += 1;
            if attempt == 1 {
                // Invalidate before the upgrade point.
                std::thread::scope(|sc| {
                    sc.spawn(|| l2.write_inline(1));
                });
            }
            s.ensure_write()?;
            hits.fetch_add(1, StdOrdering::Relaxed);
            Ok::<_, Fault>(())
        })
        .unwrap();
        assert_eq!(attempt, 2, "failed upgrade re-executes under the lock");
        assert_eq!(hits.load(StdOrdering::Relaxed), 1, "write happens once");
        assert_eq!(l.raw_seq() & 1, 0);
        let s = l.stats().snapshot();
        assert_eq!(s.fallback_acquires, 1);
        assert_eq!(s.read_aborts, s.abort_reason_sum());
    }
}
