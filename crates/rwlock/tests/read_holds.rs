//! Regression tests for the `READ_HOLDS` thread-local in `JavaRwLock`.
//!
//! The reentrancy bookkeeping maps lock addresses to per-thread hold
//! counts. An earlier revision left zero-count entries in the map
//! forever, so a long-lived thread touching short-lived locks grew its
//! thread-local without bound — and, worse, a *recycled* allocation
//! address inherited the dead lock's stale entry. The map must drop an
//! entry the moment its count returns to zero; these tests pin that.
//!
//! Each test runs on its own spawned thread so the thread-local starts
//! empty and other tests' holds can't perturb the census.

use solero_rwlock::{thread_read_hold_entries, JavaRwLock, RawRwLock};

fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
    std::thread::spawn(f).join().expect("test thread panicked");
}

#[test]
fn entry_is_dropped_when_the_last_hold_releases() {
    on_fresh_thread(|| {
        assert_eq!(thread_read_hold_entries(), 0, "fresh thread starts clean");
        let lock = JavaRwLock::new();
        {
            let _g = lock.read();
            assert_eq!(thread_read_hold_entries(), 1, "held lock is tracked");
            assert_eq!(lock.current_thread_read_holds(), 1);
        }
        assert_eq!(
            thread_read_hold_entries(),
            0,
            "releasing the last hold must remove the entry, not zero it"
        );
        assert_eq!(lock.current_thread_read_holds(), 0);
    });
}

#[test]
fn nested_holds_share_one_entry_and_drain_together() {
    on_fresh_thread(|| {
        let lock = JavaRwLock::new();
        let outer = lock.read();
        let inner = lock.read();
        assert_eq!(lock.current_thread_read_holds(), 2);
        assert_eq!(thread_read_hold_entries(), 1, "reentrant holds share an entry");
        drop(inner);
        assert_eq!(lock.current_thread_read_holds(), 1);
        assert_eq!(thread_read_hold_entries(), 1);
        drop(outer);
        assert_eq!(lock.current_thread_read_holds(), 0);
        assert_eq!(thread_read_hold_entries(), 0);
    });
}

#[test]
fn short_lived_locks_do_not_grow_the_thread_local() {
    on_fresh_thread(|| {
        // Boxed locks come and go; the allocator is free to hand the
        // same address out repeatedly. Before the fix this loop left one
        // stale entry per *distinct* address behind — and any reused
        // address would have started with a phantom hold count.
        for i in 0..512 {
            let lock = Box::new(JavaRwLock::new());
            {
                let _g = lock.read();
                assert_eq!(thread_read_hold_entries(), 1);
            }
            assert_eq!(
                thread_read_hold_entries(),
                0,
                "iteration {i}: dead lock left a stale READ_HOLDS entry"
            );
        }
    });
}

#[test]
fn interleaved_locks_are_tracked_independently() {
    on_fresh_thread(|| {
        let a = JavaRwLock::new();
        let b = JavaRwLock::new();
        let ga = a.read();
        let gb = b.read();
        assert_eq!(thread_read_hold_entries(), 2);
        assert_eq!(a.current_thread_read_holds(), 1);
        assert_eq!(b.current_thread_read_holds(), 1);
        drop(ga);
        assert_eq!(thread_read_hold_entries(), 1, "a's entry drains, b's stays");
        assert_eq!(a.current_thread_read_holds(), 0);
        assert_eq!(b.current_thread_read_holds(), 1);
        drop(gb);
        assert_eq!(thread_read_hold_entries(), 0);
    });
}
