//! Property tests for BRAVO's visible-readers table and bias lifecycle.
//!
//! The first two properties run against **owned** [`VisibleReaders`]
//! instances, so they are pure functions of the testkit seed; the third
//! drives a private [`BravoLock`] through the global table from a single
//! thread, which keeps slot choice deterministic (one thread key, one
//! live lock at a time).

use std::collections::HashMap;

use solero_rwlock::visible::{VisibleReaders, SLOTS};
use solero_rwlock::{BravoLock, BravoPolicy, RawRwLock};
use solero_testkit::forall;

/// The slot hash must be deterministic, in range, and actually spread:
/// many threads on one lock and one thread over many locks both have to
/// land on mostly-distinct cache lines, or BRAVO degenerates into the
/// shared-counter design it exists to replace.
#[test]
fn slot_hash_spreads_threads_and_locks() {
    forall(64, 0x5EED_B401, |g| {
        let table = VisibleReaders::new();
        let lock_addr = 0x1000 + g.rng().gen_range(0..1024usize) * 64;

        // Many threads, one lock.
        let keys = g.vec(16, 65, |rng| rng.gen_range(1..u64::MAX));
        let mut thread_slots: Vec<usize> = keys
            .iter()
            .map(|&k| {
                let s = table.slot_for(k, lock_addr);
                assert!(s < SLOTS, "slot {s} out of range");
                assert_eq!(s, table.slot_for(k, lock_addr), "hash must be pure");
                s
            })
            .collect();
        let n = thread_slots.len();
        thread_slots.sort_unstable();
        thread_slots.dedup();
        assert!(
            thread_slots.len() >= n * 3 / 4,
            "{n} thread keys fell into only {} of {SLOTS} slots",
            thread_slots.len()
        );

        // One thread, many locks (addresses are 64-byte aligned like
        // real allocations — alignment must not defeat the mixer).
        let key = g.rng().gen_range(1..u64::MAX);
        let addrs = g.vec(16, 65, |rng| 0x1000 + rng.gen_range(0..1usize << 20) * 64);
        let mut lock_slots: Vec<usize> = addrs.iter().map(|&a| table.slot_for(key, a)).collect();
        let m = lock_slots.len();
        lock_slots.sort_unstable();
        lock_slots.dedup();
        assert!(
            lock_slots.len() >= m * 3 / 4,
            "{m} lock addresses fell into only {} of {SLOTS} slots",
            lock_slots.len()
        );
    });
}

/// Random publish/unpublish traffic against a model map: `try_publish`
/// succeeds exactly when the slot is free, `unpublish` frees exactly the
/// published slot, and the table's census (`occupied`,
/// `published_count`) tracks the model at every step.
#[test]
fn publish_round_trips_match_a_model() {
    forall(64, 0x5EED_B402, |g| {
        let table = VisibleReaders::new();
        // slot -> (addr, thread_key) currently published there.
        let mut model: HashMap<usize, (usize, u64)> = HashMap::new();
        // A small pool so cases revisit addresses (and collide).
        let pool = g.vec(1, 9, |rng| 0x1000 + rng.gen_range(0..4096usize) * 64);

        let steps = g.size(1, 200);
        for _ in 0..steps {
            let unpublish_one = !model.is_empty() && g.rng().gen_bool(0.4);
            if unpublish_one {
                let held: Vec<usize> = model.keys().copied().collect();
                let slot = held[g.rng().gen_range(0..held.len())];
                let (addr, _) = model.remove(&slot).unwrap();
                table.unpublish(slot, addr);
                assert_eq!(table.load(slot), 0, "unpublish must empty the slot");
            } else {
                let addr = pool[g.rng().gen_range(0..pool.len())];
                let key = g.rng().gen_range(1..u64::MAX);
                let slot = table.slot_for(key, addr);
                let free = !model.contains_key(&slot);
                assert_eq!(
                    table.try_publish(slot, addr),
                    free,
                    "publish must succeed exactly on a free slot"
                );
                if free {
                    model.insert(slot, (addr, key));
                    assert_eq!(table.load(slot), addr);
                }
            }
            assert_eq!(table.occupied(), model.len(), "census diverged from model");
            let probe = pool[0];
            assert_eq!(
                table.published_count(probe),
                model.values().filter(|(a, _)| *a == probe).count(),
                "per-lock census diverged from model"
            );
        }

        for (slot, (addr, _)) in model.drain() {
            table.unpublish(slot, addr);
        }
        assert_eq!(table.occupied(), 0, "drained table must be empty");
    });
}

/// The bias state machine, under a random policy: after a writer
/// revokes, **no** read takes the fast path until the slow-read streak
/// reaches the (penalty-escalated) threshold; the read that crosses the
/// threshold re-earns the bias and the next read elides again.
#[test]
fn revoked_bias_never_admits_a_fast_reader_early() {
    forall(32, 0x5EED_B403, |g| {
        let policy = BravoPolicy {
            rebias_after: g.rng().gen_range(1..16),
            max_penalty: g.rng().gen_range(1..6),
        };
        let lock = BravoLock::with_policy(policy);

        // Fresh lock is biased: first read elides.
        {
            let r = lock.read();
            assert!(r.token().is_fast(), "biased lock must admit the fast path");
        }
        assert_eq!(lock.stats().snapshot().elision_success, 1);

        // One write revokes the bias and escalates the penalty to 1, so
        // the streak needed to re-bias is rebias_after << 1.
        drop(lock.write());
        assert!(!lock.is_biased(), "writer must revoke the bias");
        let threshold = policy.rebias_after << 1u32.min(policy.max_penalty);

        for j in 0..threshold {
            let r = lock.read();
            assert!(
                !r.token().is_fast(),
                "read {j} elided while the bias was revoked (threshold {threshold})"
            );
            drop(r);
            let expect_biased = j + 1 >= threshold;
            assert_eq!(
                lock.is_biased(),
                expect_biased,
                "bias flipped at streak {} of {threshold}",
                j + 1
            );
        }

        let snap = lock.stats().snapshot();
        assert_eq!(snap.elision_success, 1, "no elision while revoked");
        assert_eq!(snap.bias_revocations, 1);
        assert_eq!(snap.bias_rebiases, 1, "crossing the threshold re-biases");

        // Bias re-earned: the fast path is open again.
        let r = lock.read();
        assert!(r.token().is_fast(), "re-biased lock must elide again");
        drop(r);
        assert_eq!(lock.published_readers(), 0, "teardown must drain the table");
        let snap = lock.stats().snapshot();
        assert_eq!(
            snap.read_enters,
            snap.elision_success + snap.read_slow_enters,
            "every read is exactly fast or slow: {snap:?}"
        );
    });
}
