//! BRAVO's global visible-readers table.
//!
//! Fast-path readers make themselves visible to writers by publishing
//! the lock's address into one slot of a process-global, cache-padded
//! array instead of CASing a per-lock reader count — the whole point of
//! BRAVO (Dice & Kogan, arXiv 1810.01553): concurrent readers of one
//! lock touch *different* cache lines, so read acquisition stops being
//! a coherence-traffic bottleneck.
//!
//! The slot index mixes the publishing thread's id with the lock
//! address, so one thread reading many locks, and many threads reading
//! one lock, both spread across the table. A collision (slot already
//! taken) is not an error — the reader just falls back to the
//! underlying lock's slow path.
//!
//! Publish is a `SeqCst` compare-exchange and unpublish a `SeqCst`
//! swap; a revoking writer clears the lock's bias with a `SeqCst` store
//! *before* scanning the table. Sequential consistency on these three
//! operations is what makes the store→load pattern on both sides (the
//! reader publishes then re-checks the bias; the writer clears the bias
//! then scans) immune to store-buffer reordering — the same §3.4-style
//! hazard the model checker's TSO mode exists to catch, covered by
//! `crates/mc/tests/bravo_mc.rs`.

use solero_obs::ring::CachePadded;
use solero_runtime::thread::ThreadId;
use solero_sync::atomic::{AtomicUsize, Ordering};

/// Slots in the visible-readers table.
///
/// Normal builds use 1024 padded slots (64 KiB): large enough that the
/// birthday bound keeps collision rates low at the thread counts the
/// benches sweep. Model-checking builds shrink the table to 8 slots so
/// a revocation scan contributes a bounded handful of scheduler steps
/// to the explored state space.
#[cfg(not(solero_mc))]
pub const SLOTS: usize = 1024;
/// Slots in the visible-readers table (model-checking size).
#[cfg(solero_mc)]
pub const SLOTS: usize = 8;

/// A visible-readers slot array. The process-global instance behind
/// [`global`] serves every [`BravoLock`](crate::BravoLock); owned
/// instances exist for deterministic property tests.
pub struct VisibleReaders {
    slots: [CachePadded<AtomicUsize>; SLOTS],
}

impl std::fmt::Debug for VisibleReaders {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VisibleReaders")
            .field("slots", &SLOTS)
            .field("occupied", &self.occupied())
            .finish()
    }
}

impl Default for VisibleReaders {
    fn default() -> Self {
        Self::new()
    }
}

impl VisibleReaders {
    /// An empty table.
    pub const fn new() -> Self {
        const EMPTY: CachePadded<AtomicUsize> = CachePadded(AtomicUsize::new(0));
        VisibleReaders {
            slots: [EMPTY; SLOTS],
        }
    }

    /// The slot a `(thread, lock)` pair hashes to.
    #[inline]
    pub fn slot_for(&self, thread_key: u64, lock_addr: usize) -> usize {
        (mix(thread_key ^ (lock_addr as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize)
            % SLOTS
    }

    /// Attempts to publish `lock_addr` in `slot`. Fails when the slot
    /// is occupied (hash collision or a racing publisher).
    #[inline]
    pub fn try_publish(&self, slot: usize, lock_addr: usize) -> bool {
        debug_assert_ne!(lock_addr, 0, "a lock never lives at address 0");
        self.slots[slot]
            .0
            .compare_exchange(0, lock_addr, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Withdraws a publication made by this thread's `try_publish`.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not hold `lock_addr` — an unpublish
    /// without a matching publish is a protocol bug.
    #[inline]
    pub fn unpublish(&self, slot: usize, lock_addr: usize) {
        // A SeqCst swap rather than a plain store: the release must be
        // globally visible before the reader's subsequent bias check,
        // or a revoking writer could park on a slot whose owner already
        // left without ever learning it must wake the writer.
        let prev = self.slots[slot].0.swap(0, Ordering::SeqCst);
        assert_eq!(prev, lock_addr, "unpublish of a slot this reader does not hold");
    }

    /// The current occupant of `slot` (0 = empty).
    #[inline]
    pub fn load(&self, slot: usize) -> usize {
        self.slots[slot].0.load(Ordering::SeqCst)
    }

    /// How many slots currently hold `lock_addr` (diagnostics/tests).
    pub fn published_count(&self, lock_addr: usize) -> usize {
        (0..SLOTS).filter(|&i| self.load(i) == lock_addr).count()
    }

    /// How many slots are occupied at all (diagnostics/tests).
    pub fn occupied(&self) -> usize {
        (0..SLOTS).filter(|&i| self.load(i) != 0).count()
    }
}

/// SplitMix64 finalizer: full-avalanche mixing so nearby thread ids and
/// pointer-aligned lock addresses spread over the whole table.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static GLOBAL: VisibleReaders = VisibleReaders::new();

/// The process-global table every [`BravoLock`](crate::BravoLock)
/// publishes into.
pub fn global() -> &'static VisibleReaders {
    &GLOBAL
}

/// The key identifying the calling thread in slot hashing.
///
/// Normal builds use the runtime's per-thread id. Model-checking builds
/// use the stable virtual-thread index instead: OS-level ids grow
/// across the thousands of executions in one search, so hashing them
/// would give a recorded trace a different collision pattern — and a
/// different branch structure — on replay.
pub fn thread_key() -> u64 {
    #[cfg(solero_mc)]
    if let Some(slot) = solero_sync::rt::vthread_slot() {
        return slot as u64 + 1;
    }
    ThreadId::current().as_u64()
}

/// The slot the calling thread uses for `lock_addr` in the global
/// table.
///
/// Under the model checker the lock address is deliberately ignored:
/// heap addresses are not reproducible across executions, and replay
/// determinism requires the slot choice to be a pure function of the
/// stable virtual-thread index.
pub fn slot_for(lock_addr: usize) -> usize {
    #[cfg(solero_mc)]
    {
        let _ = lock_addr;
        thread_key() as usize % SLOTS
    }
    #[cfg(not(solero_mc))]
    {
        // One-entry per-thread memo: a reader typically re-acquires the
        // same lock in a loop, and its slot is a pure function of
        // (thread, address), so the common case skips the id lookup and
        // the mix. Address reuse is safe — a recycled allocation at the
        // same address hashes to the same slot by definition.
        thread_local! {
            static LAST: std::cell::Cell<(usize, usize)> = const { std::cell::Cell::new((0, 0)) };
        }
        LAST.with(|last| {
            let (addr, slot) = last.get();
            if addr == lock_addr {
                return slot;
            }
            let slot = global().slot_for(thread_key(), lock_addr);
            last.set((lock_addr, slot));
            slot
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_round_trip() {
        let t = VisibleReaders::new();
        let slot = t.slot_for(1, 0x1000);
        assert!(t.try_publish(slot, 0x1000));
        assert_eq!(t.load(slot), 0x1000);
        assert!(!t.try_publish(slot, 0x2000), "occupied slot rejects");
        t.unpublish(slot, 0x1000);
        assert_eq!(t.load(slot), 0);
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    #[should_panic(expected = "unpublish of a slot")]
    fn unpublish_without_publish_panics() {
        let t = VisibleReaders::new();
        t.unpublish(3, 0xBEEF);
    }

    #[test]
    fn thread_key_is_stable_within_a_thread() {
        assert_eq!(thread_key(), thread_key());
        assert_ne!(thread_key(), 0);
    }
}
