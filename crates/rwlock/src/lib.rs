//! Reader-writer locks: the `java.util.concurrent`-style baseline and
//! the BRAVO biased lock, behind one [`RawRwLock`] interface.
//!
//! The paper's Figure 11 charges the `java.util.concurrent` read-write
//! lock ([`JavaRwLock`]) with a 2–3× reader penalty: un-inlined lock
//! operations, a level of indirection to the lock state, and per-thread
//! hold bookkeeping on every shared acquire. [`BravoLock`] attacks the
//! remaining scalability cost — the shared reader-count cache line —
//! with BRAVO's reader bias (Dice & Kogan, arXiv 1810.01553): fast-path
//! readers publish into a global hashed [`visible`] readers table and
//! never touch the lock word; writers revoke the bias and wait the
//! published readers out.
//!
//! Everything above this crate — the strategy layer, the benchmark
//! fleet, the model-checker scenarios — drives both locks through the
//! [`RawRwLock`] trait and its RAII [`ReadGuard`]/[`WriteGuard`]
//! surface.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use solero_sync::{Mutex, MutexGuard};
use std::sync::PoisonError;

mod bravo;
mod java;
mod raw;
pub mod visible;

pub use bravo::{BravoLock, BravoPolicy};
pub use java::{thread_read_hold_entries, JavaRwLock};
pub use raw::{RawRwLock, ReadGuard, ReadToken, WriteGuard};

/// Poison-tolerant lock for park/wake mutexes: these mutexes only guard
/// a condvar handshake (no data), so a poisoned guard is still valid.
pub(crate) fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
