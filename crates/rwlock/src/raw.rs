//! The common reader-writer lock interface (`RawRwLock`).
//!
//! PR 7's API redesign: the strategy layer, the benchmark fleet and the
//! model-checker scenarios all want to drive *any* reader-writer lock —
//! the `java.util.concurrent` baseline ([`JavaRwLock`]) and the BRAVO
//! biased lock ([`BravoLock`]) — through one surface. [`RawRwLock`]
//! is that surface: raw acquire/release primitives plus provided RAII
//! methods ([`read`](RawRwLock::read), [`write`](RawRwLock::write),
//! [`try_read`](RawRwLock::try_read), [`try_write`](RawRwLock::try_write))
//! whose guards work for every implementor.
//!
//! Read acquisitions return a [`ReadToken`] that the matching release
//! takes back. The baseline lock ignores it; BRAVO uses it to remember
//! whether the read ran on the biased fast path and, if so, which
//! visible-readers slot it published — per-acquisition state that a
//! global lock cannot reconstruct at release time (a hash-colliding
//! second thread may have published the same lock in the same slot).
//!
//! [`JavaRwLock`]: crate::JavaRwLock
//! [`BravoLock`]: crate::BravoLock

use solero_runtime::stats::LockStats;

/// Opaque per-acquisition state returned by a shared acquire and handed
/// back at release.
///
/// `0` means "slow path" (the underlying lock was really acquired);
/// `slot + 1` means "fast path via visible-readers slot `slot`". The
/// encoding is private; implementors construct tokens through
/// [`ReadToken::slow`] and [`ReadToken::fast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadToken(u64);

impl ReadToken {
    /// A token for a read that acquired the underlying lock.
    #[inline]
    pub const fn slow() -> Self {
        ReadToken(0)
    }

    /// A token for a fast-path read published in table slot `slot`.
    #[inline]
    pub const fn fast(slot: usize) -> Self {
        ReadToken(slot as u64 + 1)
    }

    /// True if this read ran on a biased fast path.
    #[inline]
    pub const fn is_fast(self) -> bool {
        self.0 != 0
    }

    /// The visible-readers slot of a fast-path read, if any.
    #[inline]
    pub const fn fast_slot(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 as usize - 1)
        }
    }
}

/// A reader-writer lock usable behind the redesigned strategy/fleet
/// API.
///
/// Implementors provide the raw acquire/release primitives; the RAII
/// surface ([`read`](RawRwLock::read) and friends) is provided once
/// here. All locks are non-reentrant: nested reads of the same lock on
/// one thread may deadlock against a queued writer.
///
/// # Examples
///
/// ```
/// use solero_rwlock::{JavaRwLock, RawRwLock};
///
/// fn snapshot<L: RawRwLock>(lock: &L, cell: &std::sync::atomic::AtomicU64) -> u64 {
///     let _g = lock.read();
///     cell.load(std::sync::atomic::Ordering::Acquire)
/// }
///
/// let lock = JavaRwLock::new();
/// let cell = std::sync::atomic::AtomicU64::new(7);
/// assert_eq!(snapshot(&lock, &cell), 7);
/// assert_eq!(lock.stats().snapshot().read_enters, 1);
/// ```
pub trait RawRwLock: Default + Send + Sync {
    /// Display name used by the strategy layer and benchmark tables.
    const NAME: &'static str;

    /// Acquires the lock in shared mode, blocking as needed.
    fn acquire_read(&self) -> ReadToken;

    /// Releases a shared acquisition. `token` must come from the
    /// matching `acquire_read`/`try_acquire_read` on this lock.
    fn release_read(&self, token: ReadToken);

    /// Attempts a shared acquisition without blocking on contention.
    fn try_acquire_read(&self) -> Option<ReadToken>;

    /// Acquires the lock in exclusive mode, blocking as needed.
    fn acquire_write(&self);

    /// Releases an exclusive acquisition.
    fn release_write(&self);

    /// Attempts an exclusive acquisition without blocking on a held
    /// lock. (BRAVO backs off — returning `false` — rather than waiting
    /// out published fast-path readers, so the call never parks.)
    fn try_acquire_write(&self) -> bool;

    /// Per-lock statistics counters.
    fn stats(&self) -> &LockStats;

    /// Acquires in shared mode and returns an RAII guard.
    fn read(&self) -> ReadGuard<'_, Self>
    where
        Self: Sized,
    {
        let token = self.acquire_read();
        ReadGuard { lock: self, token }
    }

    /// Attempts a shared acquisition; `None` if the lock is contended.
    fn try_read(&self) -> Option<ReadGuard<'_, Self>>
    where
        Self: Sized,
    {
        self.try_acquire_read()
            .map(|token| ReadGuard { lock: self, token })
    }

    /// Acquires in exclusive mode and returns an RAII guard.
    fn write(&self) -> WriteGuard<'_, Self>
    where
        Self: Sized,
    {
        self.acquire_write();
        WriteGuard { lock: self }
    }

    /// Attempts an exclusive acquisition; `None` if the lock is held.
    fn try_write(&self) -> Option<WriteGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_acquire_write() {
            Some(WriteGuard { lock: self })
        } else {
            None
        }
    }
}

/// Shared-mode RAII guard returned by [`RawRwLock::read`].
///
/// Leaking the guard (`std::mem::forget`) leaves the shared hold —
/// and, for BRAVO, the published visible-readers slot — in place
/// forever, blocking future writers; like any lock guard, drop it.
#[derive(Debug)]
pub struct ReadGuard<'a, L: RawRwLock> {
    lock: &'a L,
    token: ReadToken,
}

impl<L: RawRwLock> ReadGuard<'_, L> {
    /// The token of this acquisition (diagnostics: fast vs slow path).
    pub fn token(&self) -> ReadToken {
        self.token
    }
}

impl<L: RawRwLock> Drop for ReadGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.release_read(self.token);
    }
}

/// Exclusive-mode RAII guard returned by [`RawRwLock::write`].
#[derive(Debug)]
pub struct WriteGuard<'a, L: RawRwLock> {
    lock: &'a L,
}

impl<L: RawRwLock> Drop for WriteGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.release_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_encoding_round_trips() {
        assert!(!ReadToken::slow().is_fast());
        assert_eq!(ReadToken::slow().fast_slot(), None);
        for slot in [0usize, 1, 7, 1023] {
            let t = ReadToken::fast(slot);
            assert!(t.is_fast());
            assert_eq!(t.fast_slot(), Some(slot));
        }
    }
}
