//! The BRAVO biased reader-writer lock.
//!
//! [`BravoLock`] layers BRAVO's reader bias (Dice & Kogan, arXiv
//! 1810.01553) over the baseline [`JavaRwLock`]:
//!
//! * While the lock is **read-biased** (`rbias == 1`), a reader
//!   publishes the lock's address into its hashed slot of the global
//!   [`visible`] readers table, re-checks the bias, and — if it still
//!   holds — owns shared access without ever touching the underlying
//!   lock word. Concurrent readers of one lock write *different* cache
//!   lines, which is what removes the 2–3× reader penalty Figure 11
//!   charges to the `java.util.concurrent` design.
//! * A **writer** acquires the underlying lock first, then *revokes*
//!   the bias: clears `rbias` with a `SeqCst` store, scans the table,
//!   and waits (timed parking, like the baseline's reader queue) for
//!   every slot still holding this lock to drain.
//! * Readers that lose a race (slot collision, or the bias revoked
//!   between publish and re-check) fall back to the underlying lock's
//!   ordinary shared mode — the **slow path**.
//! * The bias returns adaptively: [`BravoPolicy`] re-installs it after
//!   a streak of `rebias_after << penalty` *uncontended* reader slow
//!   paths, where `penalty` grows (capped) with each revocation. A
//!   revocation storm therefore makes the bias geometrically harder to
//!   earn back — the counter-based analog of the paper's multiplicative
//!   check/revoke cost bound (their time-based `InhibitUntil`, which a
//!   deterministic model checker cannot replay).
//!
//! New lock-layout work rides on the verification substrate:
//! `crates/mc/tests/bravo_mc.rs` drains the publish/revoke handoff
//! under DFS, DPOR and TSO weak memory before the high-thread-count
//! stress tests are trusted.

use std::time::Duration;

use solero_obs::{EventKind, LockEvent};
use solero_runtime::stats::LockStats;
use solero_sync::atomic::{AtomicU64, Ordering};
use solero_sync::{Condvar, Mutex};

use crate::java::JavaRwLock;
use crate::raw::{RawRwLock, ReadToken};
use crate::{plock, visible};

/// How long a revoking writer parks between probes of a still-occupied
/// slot (the unpublishing reader notifies it, so this is a backstop).
const PARK: Duration = Duration::from_micros(200);

/// `rbias` value while the read bias is installed.
const BIASED: u64 = 1;

/// The adaptive re-bias policy knobs.
///
/// # Examples
///
/// ```
/// use solero_rwlock::BravoPolicy;
///
/// let p = BravoPolicy::default();
/// assert_eq!(p.rebias_after, 16);
/// assert_eq!(p.max_penalty, 6);
/// assert!(BravoPolicy::minimal().rebias_after < p.rebias_after);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BravoPolicy {
    /// Base number of uncontended reader slow paths (no intervening
    /// writer) that earns the bias back.
    pub rebias_after: u64,
    /// Cap on the inhibition exponent: the effective threshold is
    /// `rebias_after << min(penalty, max_penalty)`.
    pub max_penalty: u32,
}

impl Default for BravoPolicy {
    fn default() -> Self {
        BravoPolicy {
            rebias_after: 16,
            max_penalty: 6,
        }
    }
}

impl BravoPolicy {
    /// One-step budgets so tests (and the model checker) can reach the
    /// whole revoke → slow-path streak → re-bias cycle in a few
    /// sections.
    pub fn minimal() -> Self {
        BravoPolicy {
            rebias_after: 1,
            max_penalty: 1,
        }
    }
}

/// A BRAVO biased reader-writer lock over [`JavaRwLock`].
///
/// # Examples
///
/// ```
/// use solero_rwlock::{BravoLock, RawRwLock};
///
/// let lock = BravoLock::new();
/// {
///     let r1 = lock.read(); // biased fast path: publishes a table slot
///     let r2 = lock.read(); // same-thread slot collision: slow path
///     assert!(r1.token().is_fast());
///     assert!(!r2.token().is_fast());
///     drop((r1, r2));
/// }
/// {
///     let _w = lock.write(); // revokes the bias, then excludes
///     assert!(!lock.is_biased());
/// }
/// let s = lock.stats().snapshot();
/// assert_eq!(s.read_enters, 2);
/// assert_eq!(s.bias_revocations, 1);
/// ```
#[derive(Debug)]
pub struct BravoLock {
    /// 1 while the read bias is installed. Kept first so the struct's
    /// address (the published table value and obs id) is distinct from
    /// the embedded underlying lock's.
    rbias: AtomicU64,
    /// Inhibition exponent: grows on each revocation, capped by
    /// [`BravoPolicy::max_penalty`], never decays.
    penalty: AtomicU64,
    /// Uncontended reader slow paths since the last writer.
    slow_streak: AtomicU64,
    policy: BravoPolicy,
    underlying: JavaRwLock,
    /// Park/wake handshake for revocation: a writer waiting on an
    /// occupied slot parks here; the unpublishing reader notifies.
    revoke_sleep: Mutex<()>,
    revoke_wake: Condvar,
    stats: LockStats,
}

impl Default for BravoLock {
    fn default() -> Self {
        Self::new()
    }
}

impl BravoLock {
    /// A lock with the default re-bias policy, born read-biased.
    ///
    /// (The paper starts unbiased and lets the first reader install the
    /// bias; our read-heavy workloads would do that immediately, so the
    /// constructor skips the warm-up. Writer-heavy locks shed the bias
    /// on the first write and then earn it back through the policy.)
    pub fn new() -> Self {
        Self::with_policy(BravoPolicy::default())
    }

    /// A lock with an explicit re-bias policy.
    pub fn with_policy(policy: BravoPolicy) -> Self {
        BravoLock {
            rbias: AtomicU64::new(BIASED),
            penalty: AtomicU64::new(0),
            slow_streak: AtomicU64::new(0),
            policy,
            underlying: JavaRwLock::new(),
            revoke_sleep: Mutex::new(()),
            revoke_wake: Condvar::new(),
            stats: LockStats::default(),
        }
    }

    /// True while the read bias is installed.
    pub fn is_biased(&self) -> bool {
        self.rbias.load(Ordering::SeqCst) == BIASED
    }

    /// The configured re-bias policy.
    pub fn policy(&self) -> BravoPolicy {
        self.policy
    }

    /// Slots of the global table currently publishing this lock
    /// (diagnostics: must be 0 whenever no read guard is live).
    pub fn published_readers(&self) -> usize {
        visible::global().published_count(self.addr())
    }

    /// The value readers publish: this lock's address.
    #[inline]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    #[inline]
    fn obs_id(&self) -> u64 {
        self.addr() as u64
    }

    /// The current uncontended-slow-path streak needed to re-bias.
    fn rebias_threshold(&self) -> u64 {
        let p = self
            .penalty
            .load(Ordering::Relaxed)
            .min(self.policy.max_penalty as u64);
        self.policy.rebias_after.saturating_mul(1u64 << p)
    }

    /// Bumps the inhibition exponent, saturating at the policy cap.
    /// (A CAS loop: the model-checker atomic shim has no
    /// `fetch_update`.)
    fn escalate_penalty(&self) {
        let max = self.policy.max_penalty as u64;
        loop {
            let p = self.penalty.load(Ordering::Relaxed);
            if p >= max {
                return;
            }
            if self
                .penalty
                .compare_exchange(p, p + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Wakes a writer that may be parked on one of our slots.
    fn wake_revoker(&self) {
        let _g = plock(&self.revoke_sleep);
        self.revoke_wake.notify_all();
    }

    /// The biased fast path: publish, re-check, own shared access.
    #[inline]
    fn try_fast_read(&self) -> Option<ReadToken> {
        if !self.is_biased() {
            return None;
        }
        let addr = self.addr();
        let slot = visible::slot_for(addr);
        if !visible::global().try_publish(slot, addr) {
            // Hash collision (or a same-slot racing reader): slow path.
            return None;
        }
        // The publish (SeqCst RMW) is globally visible before this
        // re-check loads — the store→load edge a revoking writer's
        // mirror-image `rbias` store + slot scan relies on.
        if self.is_biased() {
            self.stats.elision_success.fetch_add(1, Ordering::Relaxed);
            solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ReadAcquire));
            return Some(ReadToken::fast(slot));
        }
        // A revocation raced us between publish and re-check. Withdraw,
        // and wake the writer in case its scan saw the transient entry.
        visible::global().unpublish(slot, addr);
        self.wake_revoker();
        None
    }

    /// The reader slow path: really acquire the underlying lock, then
    /// let the streak earn the bias back.
    fn read_slow(&self) {
        self.stats.read_slow_enters.fetch_add(1, Ordering::Relaxed);
        let t = self.underlying.acquire_read();
        debug_assert!(!t.is_fast());
        self.note_uncontended_slow_read();
    }

    /// Re-bias bookkeeping, called while holding the underlying lock in
    /// shared mode (so no writer can hold it, and a queued writer will
    /// re-check the bias after it acquires).
    fn note_uncontended_slow_read(&self) {
        let streak = self.slow_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if self.rbias.load(Ordering::SeqCst) == BIASED || streak < self.rebias_threshold() {
            return;
        }
        if self
            .rbias
            .compare_exchange(0, BIASED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.stats.bias_rebiases.fetch_add(1, Ordering::Relaxed);
            self.slow_streak.store(0, Ordering::Relaxed);
            // The penalty deliberately does NOT decay here: if it did,
            // the +1 per revocation and -1 per re-bias would cancel and
            // a revocation storm would never escalate the threshold.
            // `max_penalty` keeps the bias reachable regardless.
        }
    }

    /// Revocation: called with the underlying lock held exclusively.
    fn revoke(&self) {
        // SeqCst: the clear must be globally visible before the scan
        // loads below, so any reader whose publish the scan misses is
        // guaranteed to see `rbias == 0` at its re-check and withdraw.
        self.rbias.store(0, Ordering::SeqCst);
        self.stats.bias_revocations.fetch_add(1, Ordering::Relaxed);
        self.escalate_penalty();
        let addr = self.addr();
        let table = visible::global();
        for slot in 0..visible::SLOTS {
            loop {
                if table.load(slot) != addr {
                    break;
                }
                // Park with the standard re-check-under-mutex pattern;
                // the unpublishing reader's SeqCst swap + bias check
                // guarantees it either beats this probe or notifies.
                let g = plock(&self.revoke_sleep);
                if table.load(slot) != addr {
                    break;
                }
                let _ = self
                    .revoke_wake
                    .wait_timeout(g, PARK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

impl RawRwLock for BravoLock {
    const NAME: &'static str = "BRAVO-RW";

    // The elided paths are `#[inline]` where `JavaRwLock` is
    // deliberately `#[inline(never)]`: the baseline models a JVM whose
    // lock acquisition is an out-of-line runtime call, while BRAVO's
    // fast path is exactly the code a JIT flattens into the reader.
    #[inline]
    fn acquire_read(&self) -> ReadToken {
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.try_fast_read() {
            return t;
        }
        self.read_slow();
        ReadToken::slow()
    }

    #[inline]
    fn release_read(&self, token: ReadToken) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Release));
        match token.fast_slot() {
            Some(slot) => {
                // SeqCst swap, then SeqCst bias load: if the load still
                // sees the bias, sequential consistency puts our slot
                // clear before any revoker's scan, so skipping the wake
                // is safe; otherwise a revocation is (or may be) parked
                // on this slot and must be notified.
                visible::global().unpublish(slot, self.addr());
                if !self.is_biased() {
                    self.wake_revoker();
                }
            }
            None => self.underlying.release_read(ReadToken::slow()),
        }
    }

    fn try_acquire_read(&self) -> Option<ReadToken> {
        if let Some(t) = self.try_fast_read() {
            self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
        let t = self.underlying.try_acquire_read()?;
        debug_assert!(!t.is_fast());
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        self.stats.read_slow_enters.fetch_add(1, Ordering::Relaxed);
        self.note_uncontended_slow_read();
        Some(t)
    }

    fn acquire_write(&self) {
        self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        self.underlying.acquire_write();
        if self.is_biased() {
            self.revoke();
        }
        // A writer interrupts the streak that earns the bias back.
        self.slow_streak.store(0, Ordering::Relaxed);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
    }

    fn release_write(&self) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Release));
        self.underlying.release_write();
    }

    fn try_acquire_write(&self) -> bool {
        if !self.underlying.try_acquire_write() {
            return false;
        }
        if self.is_biased() {
            // A non-blocking acquire cannot park waiting for published
            // fast-path readers (the holder may even be this thread).
            // Clear the bias, probe the table once, and back off if any
            // reader is visible.
            self.rbias.store(0, Ordering::SeqCst);
            if visible::global().published_count(self.addr()) != 0 {
                self.rbias.store(BIASED, Ordering::SeqCst);
                self.underlying.release_write();
                return false;
            }
            // The scan saw every slot clear after the SeqCst bias
            // store, so (as in `revoke`) any still-unseen publisher is
            // guaranteed to observe `rbias == 0` at its re-check and
            // withdraw: the revocation is complete.
            self.stats.bias_revocations.fetch_add(1, Ordering::Relaxed);
            self.escalate_penalty();
        }
        self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        self.slow_streak.store(0, Ordering::Relaxed);
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
        true
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn fast_reader_avoids_the_underlying_lock() {
        let l = BravoLock::new();
        let r1 = l.read();
        assert!(r1.token().is_fast());
        assert_eq!(l.published_readers(), 1);
        assert_eq!(l.underlying.stats().snapshot().read_enters, 0);
        // A second read on the SAME thread hashes to the same slot:
        // that collision falls back to the slow path by design.
        let r2 = l.read();
        assert!(!r2.token().is_fast());
        drop(r2);
        drop(r1);
        assert_eq!(l.published_readers(), 0);
        let s = l.stats().snapshot();
        assert_eq!(s.read_enters, 2);
        assert_eq!(s.elision_success, 1);
        assert_eq!(s.read_slow_enters, 1);
    }

    #[test]
    fn fast_readers_on_distinct_threads_share() {
        let l = Arc::new(BravoLock::new());
        let gate = Arc::new(std::sync::Barrier::new(3));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let (l, gate) = (Arc::clone(&l), Arc::clone(&gate));
            hs.push(std::thread::spawn(move || {
                let r = l.read();
                let fast = r.token().is_fast();
                gate.wait(); // both hold their read here
                gate.wait(); // main has inspected the table
                drop(r);
                fast
            }));
        }
        gate.wait();
        let published = l.published_readers();
        gate.wait();
        let fasts = hs
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&f| f)
            .count();
        // Distinct threads hash to distinct slots (up to the rare
        // 1/1024 collision, which degrades to the slow path).
        assert!(fasts >= 1, "at least one reader took the fast path");
        assert_eq!(published, fasts, "each fast reader occupied one slot");
        assert_eq!(l.published_readers(), 0, "all slots drained");
        assert_eq!(l.underlying.stats().snapshot().write_enters, 0);
    }

    #[test]
    fn writer_revokes_and_readers_fall_back() {
        let l = BravoLock::new();
        assert!(l.is_biased());
        drop(l.write());
        assert!(!l.is_biased(), "write revokes the bias");
        let r = l.read();
        assert!(!r.token().is_fast(), "unbiased read takes the slow path");
        drop(r);
        let s = l.stats().snapshot();
        assert_eq!(s.bias_revocations, 1);
        assert_eq!(s.read_slow_enters, 1);
        assert_eq!(s.read_enters, s.elision_success + s.read_slow_enters);
    }

    #[test]
    fn minimal_policy_earns_the_bias_back() {
        let l = BravoLock::with_policy(BravoPolicy::minimal());
        drop(l.write()); // revoke; penalty -> 1, threshold = 1 << 1 = 2
        assert!(!l.is_biased());
        drop(l.read()); // slow streak 1 < 2
        assert!(!l.is_biased());
        drop(l.read()); // slow streak 2: meets the threshold, re-bias
        assert!(l.is_biased(), "streak of uncontended slow reads re-biases");
        let r = l.read();
        assert!(r.token().is_fast(), "re-biased lock serves fast reads again");
        drop(r);
        let s = l.stats().snapshot();
        assert_eq!(s.bias_rebiases, 1);
        assert_eq!(s.bias_revocations, 1);
    }

    #[test]
    fn revocation_storm_escalates_the_threshold() {
        let l = BravoLock::with_policy(BravoPolicy {
            rebias_after: 1,
            max_penalty: 3,
        });
        // Three revocations (re-earning the bias between each so every
        // write really revokes): penalty saturates upward.
        for expected_penalty in 1..=3u64 {
            drop(l.write());
            assert_eq!(l.penalty.load(Ordering::Relaxed), expected_penalty);
            assert_eq!(l.rebias_threshold(), 1 << expected_penalty);
            // Earn it back so the next write revokes again.
            while !l.is_biased() {
                drop(l.read());
            }
        }
        drop(l.write());
        assert_eq!(
            l.penalty.load(Ordering::Relaxed),
            3,
            "penalty saturates at max_penalty"
        );
    }

    #[test]
    fn try_paths_respect_the_bias() {
        let l = BravoLock::new();
        let r = l.try_read().expect("uncontended try_read");
        assert!(r.token().is_fast());
        assert!(l.try_write().is_none(), "readers block try_write");
        drop(r);
        let w = l.try_write().expect("uncontended try_write revokes");
        assert!(!l.is_biased());
        assert!(l.try_read().is_none(), "writer excludes try_read");
        drop(w);
        let r = l.try_read().expect("unbiased try_read takes the slow path");
        assert!(!r.token().is_fast());
        drop(r);
        let s = l.stats().snapshot();
        assert_eq!(s.bias_revocations, 1);
        assert_eq!(s.read_enters, s.elision_success + s.read_slow_enters);
    }

    #[test]
    fn writer_waits_for_published_readers() {
        let l = Arc::new(BravoLock::new());
        let r = l.read();
        assert!(r.token().is_fast());
        let l2 = Arc::clone(&l);
        let wrote = Arc::new(AtomicU32::new(0));
        let w2 = Arc::clone(&wrote);
        let h = std::thread::spawn(move || {
            let _w = l2.write();
            w2.store(1, std::sync::atomic::Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            wrote.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "writer must wait for the published reader"
        );
        drop(r);
        h.join().unwrap();
        assert_eq!(wrote.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn torn_pair_never_observed_under_churn() {
        let l = Arc::new(BravoLock::with_policy(BravoPolicy::minimal()));
        let a = Arc::new(AtomicU32::new(0));
        let b = Arc::new(AtomicU32::new(0));
        let mut hs = Vec::new();
        for _ in 0..2 {
            let (l, a, b) = (Arc::clone(&l), Arc::clone(&a), Arc::clone(&b));
            hs.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let _w = l.write();
                    a.store(i, std::sync::atomic::Ordering::Relaxed);
                    b.store(i, std::sync::atomic::Ordering::Relaxed);
                }
            }));
        }
        for _ in 0..2 {
            let (l, a, b) = (Arc::clone(&l), Arc::clone(&a), Arc::clone(&b));
            hs.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    let g = l.read();
                    let (ra, rb) = (
                        a.load(std::sync::atomic::Ordering::Relaxed),
                        b.load(std::sync::atomic::Ordering::Relaxed),
                    );
                    drop(g);
                    assert_eq!(ra, rb, "reader saw a torn pair");
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(l.published_readers(), 0, "no slot leaked");
        let s = l.stats().snapshot();
        assert_eq!(s.read_enters, s.elision_success + s.read_slow_enters);
    }
}
