//! The `java.util.concurrent`-style baseline reader-writer lock.
//!
//! The paper compares SOLERO against the read-write lock of
//! `java.util.concurrent` and attributes its poor single-thread showing
//! to two structural properties: the lock operations are **not inlined**
//! like monitor fast paths, and every operation goes through **a level
//! of indirection** to reach the lock state. [`JavaRwLock`] reproduces
//! both: the state lives in a separate heap allocation reached through a
//! pointer, and the acquire/release operations are `#[inline(never)]`.
//!
//! Readers share the lock by CASing a reader count; a writer sets a
//! writer bit and drains readers. A handoff flag gives writers
//! preference so the 5%-writes workloads cannot starve their writers —
//! matching `ReentrantReadWriteLock`'s non-starving behaviour in the
//! benchmarked configurations. Like Java's implementation, every read
//! acquire/release also updates a **per-thread hold counter** kept in
//! thread-local storage (Java's `ThreadLocalHoldCounter`), which is a
//! large part of why `java.util.concurrent` read-write locks lose to
//! inlined monitor fast paths on a single thread — and a large part of
//! the per-acquisition cost BRAVO's fast path avoids.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::PoisonError;
use std::time::Duration;

use solero_obs::{EventKind, LockEvent};
use solero_runtime::stats::LockStats;
use solero_sync::atomic::{AtomicU64, Ordering};
use solero_sync::{Condvar, Mutex};

use crate::plock;
use crate::raw::{RawRwLock, ReadToken};

/// Bit 63: a writer holds the lock.
const WRITER: u64 = 1 << 63;
/// Bit 62: a writer is waiting; new readers must queue.
const WRITER_PENDING: u64 = 1 << 62;
/// Low bits: active reader count.
const READERS: u64 = WRITER_PENDING - 1;

/// How long blocked threads park before re-probing the state word.
const PARK: Duration = Duration::from_micros(200);

thread_local! {
    /// Per-thread read-hold counts per lock, as in
    /// `ReentrantReadWriteLock.ThreadLocalHoldCounter`. Entries are
    /// removed when their count reaches zero (see
    /// `crates/rwlock/tests/read_holds.rs`): keying by lock address
    /// means a stale entry would be silently inherited by an unrelated
    /// lock allocated at a reused address.
    static READ_HOLDS: RefCell<HashMap<usize, u32>> = RefCell::new(HashMap::new());
}

/// Number of locks this thread currently has live read-hold entries
/// for. Diagnostics: must return to its prior value once every read
/// guard on this thread is dropped — a growing value is the thread-local
/// leak the hold-map removal exists to prevent.
pub fn thread_read_hold_entries() -> usize {
    READ_HOLDS.with(|h| h.borrow().len())
}

#[derive(Debug)]
struct RwState {
    /// `WRITER | WRITER_PENDING | reader-count`.
    word: AtomicU64,
    sleep: Mutex<()>,
    wake: Condvar,
}

/// A reader-writer lock in the style of
/// `java.util.concurrent.locks.ReentrantReadWriteLock` (non-reentrant).
///
/// # Examples
///
/// ```
/// use solero_rwlock::{JavaRwLock, RawRwLock};
///
/// let lock = JavaRwLock::new();
/// {
///     let _r1 = lock.read();
///     let _r2 = lock.read(); // readers share
/// }
/// {
///     let _w = lock.write(); // writers are exclusive
/// }
/// ```
#[derive(Debug)]
pub struct JavaRwLock {
    /// The indirection the paper calls out: lock state behind a pointer.
    state: Box<RwState>,
    stats: LockStats,
}

impl Default for JavaRwLock {
    fn default() -> Self {
        Self::new()
    }
}

impl JavaRwLock {
    /// Creates an unlocked reader-writer lock.
    pub fn new() -> Self {
        JavaRwLock {
            state: Box::new(RwState {
                word: AtomicU64::new(0),
                sleep: Mutex::new(()),
                wake: Condvar::new(),
            }),
            stats: LockStats::default(),
        }
    }

    /// Stable lock identity for observability events.
    #[inline]
    fn obs_id(&self) -> u64 {
        self as *const _ as usize as u64
    }

    /// Number of active readers (diagnostics).
    pub fn reader_count(&self) -> u64 {
        self.state.word.load(Ordering::Acquire) & READERS
    }

    /// True if a writer holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.state.word.load(Ordering::Acquire) & WRITER != 0
    }

    /// This thread's recorded read holds on this lock (diagnostics).
    pub fn current_thread_read_holds(&self) -> u32 {
        let key = self as *const _ as usize;
        READ_HOLDS.with(|h| h.borrow().get(&key).copied().unwrap_or(0))
    }

    fn note_read_hold(&self) {
        let key = self as *const _ as usize;
        READ_HOLDS.with(|h| *h.borrow_mut().entry(key).or_insert(0) += 1);
    }

    fn drop_read_hold(&self) {
        let key = self as *const _ as usize;
        READ_HOLDS.with(|h| {
            let mut h = h.borrow_mut();
            let c = h.get_mut(&key).expect("read_unlock without hold");
            *c -= 1;
            // Remove at zero: a retained entry would both leak (one
            // HashMap slot per lock ever read on this thread) and alias
            // a future lock allocated at the same address.
            if *c == 0 {
                h.remove(&key);
            }
        });
    }

    #[inline(never)]
    fn read_lock(&self) {
        self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
        let s = &*self.state;
        loop {
            let w = s.word.load(Ordering::Acquire);
            if w & (WRITER | WRITER_PENDING) == 0 {
                if s.word
                    .compare_exchange_weak(w, w + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // Java's AQS bookkeeping: bump this thread's hold
                    // counter for this lock.
                    self.note_read_hold();
                    solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ReadAcquire));
                    return;
                }
                continue;
            }
            // Writer active or queued: park briefly.
            let g = plock(&s.sleep);
            if s.word.load(Ordering::Acquire) & (WRITER | WRITER_PENDING) != 0 {
                let _ = s
                    .wake
                    .wait_timeout(g, PARK)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    #[inline(never)]
    fn try_read_lock(&self) -> bool {
        let s = &*self.state;
        loop {
            let w = s.word.load(Ordering::Acquire);
            if w & (WRITER | WRITER_PENDING) != 0 {
                return false;
            }
            if s.word
                .compare_exchange_weak(w, w + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.stats.read_enters.fetch_add(1, Ordering::Relaxed);
                self.note_read_hold();
                solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::ReadAcquire));
                return true;
            }
        }
    }

    #[inline(never)]
    fn read_unlock(&self) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Release));
        self.drop_read_hold();
        let s = &*self.state;
        let prev = s.word.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev & READERS > 0, "read_unlock without readers");
        // Last reader out while a writer waits: wake it.
        if prev & READERS == 1 && prev & WRITER_PENDING != 0 {
            let _g = plock(&s.sleep);
            s.wake.notify_all();
        }
    }

    #[inline(never)]
    fn write_lock(&self) {
        self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
        let s = &*self.state;
        loop {
            let w = s.word.load(Ordering::Acquire);
            if w == 0 || w == WRITER_PENDING {
                if s.word
                    .compare_exchange_weak(w, WRITER, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    solero_obs::emit(|| {
                        LockEvent::now(self.obs_id(), EventKind::WriteAcquire)
                    });
                    return;
                }
                continue;
            }
            if w & WRITER_PENDING == 0 {
                // Announce intent so new readers queue behind us.
                let _ = s.word.compare_exchange_weak(
                    w,
                    w | WRITER_PENDING,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                continue;
            }
            let g = plock(&s.sleep);
            let w = s.word.load(Ordering::Acquire);
            if w != 0 && w != WRITER_PENDING {
                let _ = s
                    .wake
                    .wait_timeout(g, PARK)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    #[inline(never)]
    fn try_write_lock(&self) -> bool {
        let s = &*self.state;
        loop {
            let w = s.word.load(Ordering::Acquire);
            if w != 0 && w != WRITER_PENDING {
                return false;
            }
            if s.word
                .compare_exchange_weak(w, WRITER, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.stats.write_enters.fetch_add(1, Ordering::Relaxed);
                solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::WriteAcquire));
                return true;
            }
        }
    }

    #[inline(never)]
    fn write_unlock(&self) {
        solero_obs::emit(|| LockEvent::now(self.obs_id(), EventKind::Release));
        let s = &*self.state;
        let prev = s.word.swap(0, Ordering::AcqRel);
        debug_assert!(prev & WRITER != 0, "write_unlock without writer");
        let _g = plock(&s.sleep);
        s.wake.notify_all();
    }
}

impl RawRwLock for JavaRwLock {
    const NAME: &'static str = "RWLock";

    fn acquire_read(&self) -> ReadToken {
        self.read_lock();
        ReadToken::slow()
    }

    fn release_read(&self, token: ReadToken) {
        debug_assert!(!token.is_fast(), "JavaRwLock has no fast path");
        self.read_unlock();
    }

    fn try_acquire_read(&self) -> Option<ReadToken> {
        self.try_read_lock().then(ReadToken::slow)
    }

    fn acquire_write(&self) {
        self.write_lock();
    }

    fn release_write(&self) {
        self.write_unlock();
    }

    fn try_acquire_write(&self) -> bool {
        self.try_write_lock()
    }

    fn stats(&self) -> &LockStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn readers_share() {
        let l = JavaRwLock::new();
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(l.reader_count(), 2);
        assert_eq!(l.current_thread_read_holds(), 2);
        drop(r1);
        drop(r2);
        assert_eq!(l.reader_count(), 0);
        assert_eq!(l.current_thread_read_holds(), 0);
    }

    #[test]
    fn writer_excludes_readers() {
        let l = Arc::new(JavaRwLock::new());
        let w = l.write();
        assert!(l.is_write_locked());
        let l2 = Arc::clone(&l);
        let got_read = Arc::new(AtomicU32::new(0));
        let g2 = Arc::clone(&got_read);
        let h = std::thread::spawn(move || {
            let _r = l2.read();
            g2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(got_read.load(Ordering::SeqCst), 0, "reader must wait");
        drop(w);
        h.join().unwrap();
        assert_eq!(got_read.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pending_writer_blocks_new_readers() {
        let l = Arc::new(JavaRwLock::new());
        let r = l.read();
        let l2 = Arc::clone(&l);
        let wh = std::thread::spawn(move || {
            let _w = l2.write();
        });
        // Wait until the writer has announced itself.
        while l.state.word.load(Ordering::Acquire) & WRITER_PENDING == 0 {
            std::thread::yield_now();
        }
        assert!(l.try_read().is_none(), "pending writer rejects try_read");
        drop(r);
        wh.join().unwrap();
        assert!(!l.is_write_locked());
    }

    #[test]
    fn concurrent_increments_are_exclusive() {
        let l = Arc::new(JavaRwLock::new());
        let c = Arc::new(AtomicU32::new(0));
        const T: usize = 4;
        const N: u32 = 2_000;
        let mut hs = Vec::new();
        for _ in 0..T {
            let l = Arc::clone(&l);
            let c = Arc::clone(&c);
            hs.push(std::thread::spawn(move || {
                for i in 0..N {
                    if i % 4 == 0 {
                        let _w = l.write();
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                    } else {
                        let _r = l.read();
                        std::hint::black_box(c.load(Ordering::Relaxed));
                    }
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), T as u32 * N / 4);
    }

    #[test]
    fn stats_track_modes() {
        let l = JavaRwLock::new();
        drop(l.read());
        drop(l.read());
        drop(l.write());
        let s = l.stats().snapshot();
        assert_eq!(s.read_enters, 2);
        assert_eq!(s.write_enters, 1);
        assert!((s.read_only_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn try_paths_refuse_contended_modes() {
        let l = JavaRwLock::new();
        let r = l.read();
        assert!(l.try_read().is_some(), "readers share via try_read");
        assert!(l.try_write().is_none(), "reader blocks try_write");
        drop(r);
        let w = l.try_write().expect("uncontended try_write");
        assert!(l.try_read().is_none(), "writer blocks try_read");
        drop(w);
        let s = l.stats().snapshot();
        assert_eq!(s.read_enters, 2);
        assert_eq!(s.write_enters, 1);
    }
}
