//! A minimal property-test runner.
//!
//! [`forall`] drives a closure over `cases` independent generator
//! streams derived from one root seed. A failing case:
//!
//! 1. is **shrunk by iteration scale** — the same case seed is re-run
//!    with the [`Gen::size`] budget halved until the failure disappears,
//!    so the reported reproduction is the smallest same-seed instance
//!    that still fails;
//! 2. **prints its reproducing seeds** — the root seed, the case index,
//!    and the per-case seed — so `SOLERO_TESTKIT_SEED=<root>` replays
//!    the identical run.
//!
//! Properties use plain `assert!`/`assert_eq!`; panics are caught per
//! case. Two runs with the same root seed produce identical output.
//!
//! # Examples
//!
//! ```
//! use solero_testkit::prop::forall;
//!
//! forall(64, 0x5EED, |g| {
//!     let n = g.size(1, 40);
//!     let mut v: Vec<i64> = (0..n).map(|_| g.rng().gen_range(-50i64..50)).collect();
//!     v.sort_unstable();
//!     for w in v.windows(2) {
//!         assert!(w[0] <= w[1], "sort must order");
//!     }
//! });
//! ```

use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{derive_seed, TestRng};

/// Environment variable overriding every [`forall`] root seed (and, by
/// convention, the stress tests' root seeds via [`seed_override`]).
pub const SEED_ENV: &str = "SOLERO_TESTKIT_SEED";
/// Environment variable overriding every [`forall`] case count.
pub const CASES_ENV: &str = "SOLERO_TESTKIT_CASES";

/// Smallest shrink scale tried before giving up.
const MIN_SCALE: f64 = 1.0 / 1024.0;

/// Per-case context handed to the property closure: a seeded generator
/// plus the shrink scale that bounds "how big" this case may get.
#[derive(Debug)]
pub struct Gen {
    rng: TestRng,
    scale: f64,
}

impl Gen {
    /// The case's generator. (Also reachable through deref: `g.gen()`.)
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// The current shrink scale in `(0, 1]` — 1.0 on the first run of a
    /// case, halved on each shrink attempt.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// A case size in `[lo, hi)`, scaled down while shrinking. Use this
    /// for iteration counts and collection lengths so failing cases
    /// automatically re-run smaller.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn size(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Gen::size on empty range {lo}..{hi}");
        let scaled = ((hi as f64) * self.scale).ceil() as usize;
        let eff_hi = scaled.clamp(lo + 1, hi);
        self.rng.gen_range(lo..eff_hi)
    }

    /// A vector of `n ∈ [lo, hi)` (scaled) elements drawn by `f`.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut TestRng) -> T) -> Vec<T> {
        let n = self.size(lo, hi);
        (0..n).map(|_| f(&mut self.rng)).collect()
    }
}

impl Deref for Gen {
    type Target = TestRng;
    fn deref(&self) -> &TestRng {
        &self.rng
    }
}

impl DerefMut for Gen {
    fn deref_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Resolves the effective root seed: the [`SEED_ENV`] override if set
/// (decimal or `0x`-prefixed hex), otherwise `default`.
pub fn seed_override(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(s) if s.trim().is_empty() => default,
        Ok(s) => parse_u64(&s)
            .unwrap_or_else(|| panic!("[testkit] {SEED_ENV}={s:?} is not a u64 (use decimal or 0x-hex)")),
        Err(_) => default,
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn cases_override(default: u64) -> u64 {
    match std::env::var(CASES_ENV) {
        Ok(s) if s.trim().is_empty() => default,
        Ok(s) => parse_u64(&s)
            .unwrap_or_else(|| panic!("[testkit] {CASES_ENV}={s:?} is not a u64")),
        Err(_) => default,
    }
}

/// Runs `property` over `cases` independent cases derived from
/// `root_seed`. See the module docs for the failure protocol.
///
/// # Panics
///
/// Panics (failing the test) on the first failing case, after shrinking,
/// with a message containing the reproducing seeds.
pub fn forall<F>(cases: u64, root_seed: u64, property: F)
where
    F: Fn(&mut Gen),
{
    let root = seed_override(root_seed);
    let cases = cases_override(cases);
    for case in 0..cases {
        let case_seed = derive_seed(root, case);
        let first = run_case(&property, case_seed, 1.0);
        let Err(msg) = first else { continue };

        // Iteration shrinking: same seed, smaller size budget.
        let (mut best_scale, mut best_msg) = (1.0, msg);
        let mut scale = 0.5;
        while scale >= MIN_SCALE {
            match run_case(&property, case_seed, scale) {
                Err(m) => {
                    best_scale = scale;
                    best_msg = m;
                    scale /= 2.0;
                }
                Ok(()) => break,
            }
        }
        panic!(
            "[testkit] property failed at case {case}/{cases}\n  \
             root seed:  {root:#018x}  (replay: {SEED_ENV}={root:#x})\n  \
             case seed:  {case_seed:#018x}\n  \
             shrunk to scale {best_scale}\n  \
             failure: {best_msg}"
        );
    }
}

fn run_case<F>(property: &F, case_seed: u64, scale: f64) -> Result<(), String>
where
    F: Fn(&mut Gen),
{
    let mut g = Gen {
        rng: TestRng::seed_from_u64(case_seed),
        scale,
    };
    catch_unwind(AssertUnwindSafe(|| property(&mut g))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn passing_property_runs_every_case() {
        let runs = AtomicU64::new(0);
        forall(100, 0xABCD, |g| {
            runs.fetch_add(1, Ordering::Relaxed);
            let v = g.gen_range(0..10u32);
            assert!(v < 10);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn failing_property_reports_seeds() {
        let err = panic::catch_unwind(|| {
            forall(50, 0x1234, |g| {
                let n = g.size(1, 64);
                assert!(n < 3, "too big: {n}");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("root seed"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
        assert!(msg.contains("SOLERO_TESTKIT_SEED=0x1234"), "{msg}");
        assert!(msg.contains("too big"), "{msg}");
    }

    #[test]
    fn shrinking_reduces_reported_size() {
        // Fails whenever the size budget allows n >= 8; shrinking must
        // walk the scale down until only small sizes are drawn.
        let err = panic::catch_unwind(|| {
            forall(20, 77, |g| {
                let n = g.size(1, 1024);
                assert!(n < 8, "n={n}");
            });
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("shrunk to scale") && !msg.contains("shrunk to scale 1\n"),
            "expected a reduced scale in: {msg}"
        );
    }

    #[test]
    fn same_root_seed_same_failure_output() {
        let capture = || {
            panic::catch_unwind(|| {
                forall(30, 0xFEED, |g| {
                    let x = g.gen_range(0..1000u32);
                    assert!(x < 400, "x={x}");
                });
            })
            .expect_err("must fail")
            .downcast_ref::<String>()
            .expect("string panic")
            .clone()
        };
        assert_eq!(capture(), capture(), "failure output must be deterministic");
    }

    #[test]
    fn size_respects_bounds_at_every_scale() {
        for &scale in &[1.0, 0.5, 0.01, MIN_SCALE] {
            let mut g = Gen {
                rng: TestRng::seed_from_u64(1),
                scale,
            };
            for _ in 0..200 {
                let n = g.size(1, 60);
                assert!((1..60).contains(&n), "scale {scale}: n={n}");
            }
        }
    }

    #[test]
    fn vec_helper_sizes_and_fills() {
        let mut g = Gen {
            rng: TestRng::seed_from_u64(4),
            scale: 1.0,
        };
        let v = g.vec(5, 6, |rng| rng.gen_range(0..3u8));
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| x < 3));
    }
}
