//! In-house micro-benchmark loop with a criterion-compatible surface.
//!
//! The workspace's bench targets were written against criterion's API
//! (`Criterion`, `bench_function`, `Bencher::iter`, `black_box`,
//! `criterion_group!`, `criterion_main!`). Pulling criterion from a
//! registry is impossible in the hermetic build, so this module
//! provides the same shape over a plain [`Instant`]-based timing loop:
//! calibrate an iteration count, take `sample_size` samples, report
//! min / median / mean ns per iteration.
//!
//! With the `criterion` cargo feature enabled (off by default) the loop
//! runs in a higher-rigor statistical mode: more samples, a longer
//! calibration floor, and a median-absolute-deviation column.
//!
//! # Examples
//!
//! ```
//! use solero_testkit::bench::{black_box, Criterion};
//!
//! let mut c = Criterion::default().sample_size(10);
//! c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall time one sample should cover, so timer granularity is
/// amortized over many iterations.
#[cfg(not(feature = "criterion"))]
const SAMPLE_FLOOR: Duration = Duration::from_micros(200);
#[cfg(feature = "criterion")]
const SAMPLE_FLOOR: Duration = Duration::from_millis(2);

/// The benchmark driver. API-compatible with the subset of criterion
/// the bench targets use.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            #[cfg(not(feature = "criterion"))]
            sample_size: 20,
            #[cfg(feature = "criterion")]
            sample_size: 100,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 samples");
        self.sample_size = n;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: find an iteration count whose sample lasts at
        // least SAMPLE_FLOOR (and roughly fits the time budget).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= SAMPLE_FLOOR || iters >= 1 << 40 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        // Warm-up.
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        // Samples, bounded by the measurement budget but never fewer
        // than 2 so the spread is defined.
        let budget_end = Instant::now() + self.measurement_time;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for i in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
            if i >= 1 && Instant::now() > budget_end {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let report = Summary::from_sorted(&samples, iters);
        println!("{name:<40} {report}");
        self
    }
}

/// Timing context passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Aggregated result of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Summary {
    min: f64,
    median: f64,
    mean: f64,
    mad: f64,
    samples: usize,
    iters: u64,
}

impl Summary {
    fn from_sorted(sorted: &[f64], iters: u64) -> Summary {
        let n = sorted.len();
        assert!(n >= 1, "no samples");
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let mut dev: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mad = if n % 2 == 1 {
            dev[n / 2]
        } else {
            (dev[n / 2 - 1] + dev[n / 2]) / 2.0
        };
        Summary {
            min: sorted[0],
            median,
            mean,
            mad,
            samples: n,
            iters,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:>10.1} ns/iter  (min {:.1}, mean {:.1}, ±{:.1} MAD, {} samples × {} iters)",
            self.median, self.min, self.mean, self.mad, self.samples, self.iters
        )
    }
}

/// Criterion-compatible group declaration: expands to a function that
/// builds the configured [`Criterion`] and runs every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::bench::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::bench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Criterion-compatible entry point: expands to `fn main` running every
/// group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1u64).wrapping_add(1))
        });
        assert!(ran);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_sorted(&[1.0, 2.0, 3.0, 4.0, 100.0], 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.samples, 5);
        assert!(s.mean > s.median, "outlier pulls the mean up");
        assert_eq!(s.mad, 1.0);
    }

    #[test]
    fn bencher_measures_elapsed() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u64) * 7);
        assert!(b.elapsed > Duration::ZERO);
    }
}
