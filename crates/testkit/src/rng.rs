//! Seeded, reproducible pseudo-number generation.
//!
//! Two classic public-domain generators (Blackman & Vigna):
//!
//! * [`SplitMix64`] — a 64-bit mixing generator used for seed expansion
//!   and for deriving independent per-thread/per-case seed streams;
//! * [`TestRng`] — xoshiro256**, the workhorse generator behind every
//!   workload, property test, and stress harness in this workspace.
//!
//! The API mirrors the small slice of the `rand` crate the repo used
//! before going hermetic (`seed_from_u64`, `gen`, `gen_range`,
//! `shuffle`), so call sites read the same while the implementation is
//! fully in-tree and bit-for-bit reproducible across platforms.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, fast, well-mixed 64-bit generator.
///
/// Primarily a *seed expander*: xoshiro's authors recommend initializing
/// xoshiro state from SplitMix64 output so that correlated seeds (0, 1,
/// 2, ...) still yield decorrelated streams.
///
/// # Examples
///
/// ```
/// use solero_testkit::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives an independent seed for stream `stream` under `root`.
///
/// Used wherever one root seed fans out into many generators (one per
/// worker thread, one per property case): streams are decorrelated even
/// for adjacent roots and adjacent stream indices.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(root);
    let a = sm.next_u64();
    let mut sm2 = SplitMix64::new(a ^ stream.wrapping_mul(GOLDEN_GAMMA));
    sm2.next_u64()
}

/// xoshiro256**: the workspace's deterministic generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. Seeded through
/// SplitMix64 so every `u64` seed is usable.
///
/// # Examples
///
/// ```
/// use solero_testkit::rng::TestRng;
///
/// let mut rng = TestRng::seed_from_u64(42);
/// let k = rng.gen_range(0..1024i64);
/// assert!((0..1024).contains(&k));
/// let coin: bool = rng.gen();
/// let _ = coin;
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose state is expanded from `seed` via
    /// SplitMix64 (the construction recommended by xoshiro's authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0; 4] {
            // All-zero is the one invalid xoshiro state. Unreachable from
            // SplitMix64 in practice; guard anyway.
            s = [GOLDEN_GAMMA, 1, 2, 3];
        }
        TestRng { s }
    }

    /// A generator for stream `stream` derived from `root` — see
    /// [`derive_seed`]. This is how stress workers and property cases
    /// get independent yet reproducible generators.
    pub fn derive(root: u64, stream: u64) -> Self {
        Self::seed_from_u64(derive_seed(root, stream))
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed value of a primitive type (`u8`–`u64`,
    /// `i8`–`i64`, `usize`, `isize`, `f32`, `f64` in `[0, 1)`, `bool`).
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly distributed integer in `range` (half-open `a..b` or
    /// inclusive `a..=b`). Unbiased via Lemire's multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniform in `[0, span)`, `span >= 1` (Lemire).
    #[inline]
    fn uniform_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types producible uniformly by [`TestRng::gen`].
pub trait FromRng {
    /// Draws one value.
    fn from_rng(rng: &mut TestRng) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),+) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng(rng: &mut TestRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`TestRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut TestRng) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.uniform_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.uniform_u64(span) as i128) as $t
            }
        }
    )+};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 (computed from the
        // canonical C implementation's algebra above).
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        // seed 0 first output is a fixed constant of the algorithm.
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(99);
        let mut b = TestRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must decorrelate");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-64i64..64);
            assert!((-64..64).contains(&v));
            let w = rng.gen_range(1u64..=u64::MAX);
            assert!(w >= 1);
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::seed_from_u64(8);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            match rng.gen_range(0u8..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle staying sorted is ~0");
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let a1 = TestRng::derive(7, 0).next_u64();
        let a2 = TestRng::derive(7, 0).next_u64();
        let b = TestRng::derive(7, 1).next_u64();
        let c = TestRng::derive(8, 0).next_u64();
        assert_eq!(a1, a2, "derivation is deterministic");
        assert_ne!(a1, b, "streams differ");
        assert_ne!(a1, c, "roots differ");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = TestRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
