//! `solero-testkit` — the workspace's hermetic, zero-dependency test
//! substrate.
//!
//! The SOLERO reproduction validates a lock-elision protocol whose core
//! claim is concurrency-sensitive: an elided read-only section observes
//! a consistent snapshot or retries, with a bounded fallback to real
//! acquisition. Testing that needs seeded, reproducible concurrent
//! workloads — and the build environment has no registry access, so the
//! substrate lives in-tree:
//!
//! * [`rng`] — SplitMix64 seed derivation and a xoshiro256** generator
//!   with the `seed_from_u64` / `gen` / `gen_range` / `shuffle` surface
//!   the workloads use;
//! * [`prop`] — [`prop::forall`], a property-test runner with
//!   failing-seed reporting and iteration shrinking;
//! * [`stress`] — [`stress::stress`], a deterministic concurrency
//!   harness: named threads, barrier-phased rounds, per-worker seeds
//!   derived from one root seed, and a bounded-time watchdog;
//! * [`bench`] — a criterion-compatible `Instant`-based timing loop for
//!   the micro-bench targets (statistical mode behind the off-by-default
//!   `criterion` feature);
//! * [`pad`] — [`pad::CachePadded`] for per-thread counters.
//!
//! Reproduction workflow: every failure message prints a root seed;
//! `SOLERO_TESTKIT_SEED=<seed>` replays the identical case matrix, and
//! `SOLERO_TESTKIT_CASES=<n>` scales property-case counts up or down.
//!
//! This crate intentionally has **no dependencies** (std only) and must
//! stay that way — it is what makes `cargo build --release --offline &&
//! cargo test -q --offline` the workspace's tier-1 gate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod pad;
pub mod prop;
pub mod rng;
pub mod stress;

pub use pad::CachePadded;
pub use prop::{forall, seed_override, Gen};
pub use rng::{derive_seed, SplitMix64, TestRng};
pub use stress::{seed_matrix, stress, StressConfig, Worker};
