//! Deterministic concurrency stress harness.
//!
//! [`stress`] spawns `threads` **named** worker threads
//! (`"<name>-w<id>"`), runs `rounds` barrier-phased rounds — every
//! worker enters a round together, so contention patterns repeat
//! instead of drifting apart — and gives each worker a [`TestRng`]
//! derived from one root seed, so the *inputs* of a stress run are
//! fully reproducible even though the interleavings are not.
//!
//! A **watchdog** bounds wall-clock time: if the workers are not done
//! within [`StressConfig::timeout`], it prints the harness state (name,
//! root seed, unfinished workers) to stderr and aborts the process —
//! a deadlocked lock protocol must fail the run, not hang CI.
//!
//! A panicking worker does not deadlock the barrier: the failure is
//! recorded, the remaining rounds become no-ops, and the harness
//! re-raises every captured failure with worker/round/seed context.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use solero_testkit::stress::{stress, StressConfig};
//!
//! let hits = AtomicU64::new(0);
//! stress("example", &StressConfig::new(4, 3, 0x5EED), |w| {
//!     // Each worker sees its own deterministic generator.
//!     let _k = w.rng.gen_range(0..100u32);
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 4 * 3);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::rng::TestRng;

/// Parameters of one stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Barrier-phased rounds; the body runs once per worker per round.
    pub rounds: usize,
    /// Root seed; worker `i` draws from stream `i` of this root.
    pub root_seed: u64,
    /// Watchdog bound on the whole run (default 60 s).
    pub timeout: Duration,
}

impl StressConfig {
    /// A config with the default 60-second watchdog.
    pub fn new(threads: usize, rounds: usize, root_seed: u64) -> Self {
        StressConfig {
            threads,
            rounds,
            root_seed,
            timeout: Duration::from_secs(60),
        }
    }

    /// Replaces the watchdog bound.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

/// Per-worker context passed to the stress body.
#[derive(Debug)]
pub struct Worker {
    /// This worker's index in `0..threads`.
    pub id: usize,
    /// Total worker count.
    pub threads: usize,
    /// The current round in `0..rounds`.
    pub round: usize,
    /// Deterministic per-worker generator (stream `id` of the root
    /// seed); state persists across rounds.
    pub rng: TestRng,
}

/// The root seeds of a fixed-size reproduction matrix: `n` decorrelated
/// seeds derived from `root`, suitable for "run the same stress under
/// several seeds" test loops.
pub fn seed_matrix(root: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| crate::rng::derive_seed(root, i)).collect()
}

/// Runs `body` from `cfg.threads` named workers for `cfg.rounds`
/// barrier-phased rounds. See the module docs.
///
/// # Panics
///
/// Panics with every captured worker failure (worker id, round, root
/// seed) if any worker's body panicked. Aborts the process if the run
/// exceeds `cfg.timeout`.
pub fn stress<F>(name: &str, cfg: &StressConfig, body: F)
where
    F: Fn(&mut Worker) + Sync,
{
    assert!(cfg.threads > 0, "stress needs at least one worker");
    let barrier = Barrier::new(cfg.threads);
    let failed = AtomicBool::new(false);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    // Watchdog bookkeeping: how many workers are still running.
    let remaining = Mutex::new(cfg.threads);
    let all_done = Condvar::new();

    std::thread::scope(|s| {
        for id in 0..cfg.threads {
            let (barrier, failed, failures) = (&barrier, &failed, &failures);
            let (remaining, all_done, body) = (&remaining, &all_done, &body);
            std::thread::Builder::new()
                .name(format!("{name}-w{id}"))
                .spawn_scoped(s, move || {
                    let mut w = Worker {
                        id,
                        threads: cfg.threads,
                        round: 0,
                        rng: TestRng::derive(cfg.root_seed, id as u64),
                    };
                    for round in 0..cfg.rounds {
                        barrier.wait();
                        // After a failure the surviving workers keep
                        // meeting the barrier (so nobody deadlocks) but
                        // stop doing work.
                        if failed.load(Ordering::Acquire) {
                            continue;
                        }
                        w.round = round;
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut w))) {
                            failed.store(true, Ordering::Release);
                            failures
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(format!(
                                    "worker {id} round {round}: {}",
                                    payload_message(&payload)
                                ));
                        }
                    }
                    let mut left = remaining.lock().unwrap_or_else(|e| e.into_inner());
                    *left -= 1;
                    if *left == 0 {
                        all_done.notify_all();
                    }
                })
                .expect("spawn stress worker");
        }

        // Watchdog: runs inside the scope so a healthy run joins it too.
        let (remaining, all_done) = (&remaining, &all_done);
        std::thread::Builder::new()
            .name(format!("{name}-watchdog"))
            .spawn_scoped(s, move || {
                let deadline = Instant::now() + cfg.timeout;
                let mut left = remaining.lock().unwrap_or_else(|e| e.into_inner());
                while *left > 0 {
                    let now = Instant::now();
                    if now >= deadline {
                        eprintln!(
                            "[testkit] stress '{name}' watchdog: {left} of {threads} workers \
                             still running after {timeout:?} (root seed {seed:#018x}); aborting",
                            threads = cfg.threads,
                            timeout = cfg.timeout,
                            seed = cfg.root_seed,
                        );
                        std::process::abort();
                    }
                    let (g, _) = all_done
                        .wait_timeout(left, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    left = g;
                }
            })
            .expect("spawn stress watchdog");
    });

    let failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
    if !failures.is_empty() {
        panic!(
            "[testkit] stress '{name}' failed (root seed {seed:#018x}, replay with \
             {env}={seed:#x}):\n  {list}",
            seed = cfg.root_seed,
            env = crate::prop::SEED_ENV,
            list = failures.join("\n  ")
        );
    }
}

fn payload_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::panic;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_worker_runs_every_round() {
        let count = AtomicUsize::new(0);
        stress("count", &StressConfig::new(8, 5, 1), |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn worker_rngs_are_deterministic_and_distinct() {
        let draws: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        let run = |out: &Mutex<Vec<(usize, u64)>>| {
            stress("seeds", &StressConfig::new(4, 1, 0xBEEF), |w| {
                let v = w.rng.next_u64();
                out.lock().unwrap().push((w.id, v));
            });
        };
        run(&draws);
        let mut first: Vec<_> = std::mem::take(&mut *draws.lock().unwrap());
        run(&draws);
        let mut second: Vec<_> = std::mem::take(&mut *draws.lock().unwrap());
        first.sort_unstable();
        second.sort_unstable();
        assert_eq!(first, second, "same root seed, same per-worker draws");
        let distinct: HashSet<u64> = first.iter().map(|&(_, v)| v).collect();
        assert_eq!(distinct.len(), 4, "worker streams must differ");
    }

    #[test]
    fn rounds_are_barrier_phased() {
        // If rounds were not phased, a fast worker could observe the
        // round counter ahead of a slow one. With a barrier, after all
        // workers pass round r's barrier nobody can still be in r-1.
        let max_seen = AtomicUsize::new(0);
        stress("phase", &StressConfig::new(4, 10, 3), |w| {
            let prev = max_seen.swap(w.round, Ordering::SeqCst);
            assert!(
                prev + 1 >= w.round,
                "round skew: saw {prev} then {}",
                w.round
            );
        });
    }

    #[test]
    fn worker_panic_is_reported_not_deadlocked() {
        let err = panic::catch_unwind(|| {
            stress(
                "failing",
                &StressConfig::new(4, 6, 9).with_timeout(Duration::from_secs(20)),
                |w| {
                    if w.id == 2 && w.round == 1 {
                        panic!("injected failure");
                    }
                },
            );
        })
        .expect_err("must propagate the worker panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("worker 2 round 1"), "{msg}");
        assert!(msg.contains("injected failure"), "{msg}");
        assert!(msg.contains("root seed"), "{msg}");
    }

    #[test]
    fn workers_are_named() {
        stress("named", &StressConfig::new(2, 1, 5), |w| {
            let name = std::thread::current().name().map(str::to_owned);
            assert_eq!(name.as_deref(), Some(format!("named-w{}", w.id).as_str()));
        });
    }

    #[test]
    fn seed_matrix_is_stable_and_distinct() {
        let a = seed_matrix(42, 5);
        let b = seed_matrix(42, 5);
        assert_eq!(a, b);
        let set: HashSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), 5);
    }
}
