//! Cache-line padding (in-tree replacement for crossbeam's
//! `CachePadded`).
//!
//! The measurement driver keeps one operation counter per worker
//! thread; without padding those counters share cache lines and the
//! resulting false sharing distorts exactly the throughput numbers the
//! driver exists to measure.

use std::ops::{Deref, DerefMut};

/// Aligns `T` to 128 bytes — two 64-byte lines, covering adjacent-line
/// prefetchers on x86 and the 128-byte lines of some POWER/Apple cores
/// (the paper's host is POWER6, with 128-byte L2 lines).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicU64;
/// use solero_testkit::pad::CachePadded;
///
/// let c = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&c), 128);
/// c.store(5, std::sync::atomic::Ordering::Relaxed);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line(s).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        // An array of padded counters puts each on its own line.
        let arr = [CachePadded::new(0u64), CachePadded::new(0u64)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }
}
