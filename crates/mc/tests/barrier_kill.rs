//! Mutation-testing the §3.4 barrier table itself, under the
//! weak-memory mode.
//!
//! The paper's barrier argument is invisible to a sequentially
//! consistent checker: dropping the read-entry Store→Load fence
//! (`BarrierMode::Weak`, the paper's deliberately incorrect
//! WeakBarrier-SOLERO configuration) changes nothing when stores are
//! never buffered. Under `Checker::weak_memory(true)` the checker must
//!
//!  * find and deterministically replay a publication violation with
//!    the Weak barrier,
//!  * drain the identical scenario clean with the Strong barrier, and
//!  * kill the `WEAK_EXIT_LOAD` protocol mutation directly on the
//!    plain-access torn-pair scenario.
//!
//! Lives in its own test binary because the mutation switch is
//! process-global. Build with `RUSTFLAGS="--cfg solero_mc"`.
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{mutation, Fault, SoleroConfig, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_mc::{spawn, Checker};
use solero_runtime::spin::SpinConfig;
use solero_sync::atomic::{AtomicU64, Ordering};

/// The §3.4 read-only-entry litmus. Thread A publishes `x` with an
/// ordinary release store and then runs a read-only section; the Java
/// lock contract says that store must be visible to anyone the section
/// synchronizes with. Thread B, under the write lock, publishes `y`
/// and reads `x`. With the Strong entry barrier (a Store→Load fence
/// between A's store and its section loads) at least one side must see
/// the other's store; with the Weak barrier A's store can linger in
/// its buffer past its whole validated section — the outcome
/// `(ra, rb) == (0, 0)` the paper's fence exists to forbid.
fn read_entry_scenario(weak_barrier: bool) {
    let x = Arc::new(AtomicU64::new(0));
    let y = Arc::new(AtomicU64::new(0));
    let lock = Arc::new(SoleroLock::with_config(
        SoleroConfig::builder()
            .spin(SpinConfig::immediate())
            .weak_barrier(weak_barrier)
            .build(),
    ));

    let a = {
        let (x, y, lock) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&lock));
        spawn(move || {
            x.store(1, Ordering::Release);
            lock.read_only(|_| Ok::<_, Fault>(y.load(Ordering::Acquire)))
                .expect("no genuine faults in this scenario")
        })
    };
    let b = {
        let (x, y, lock) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&lock));
        spawn(move || {
            lock.write(|| {
                y.store(1, Ordering::Release);
                x.load(Ordering::Acquire)
            })
        })
    };
    let ra = a.join();
    let rb = b.join();
    assert!(
        ra == 1 || rb == 1,
        "read-entry barrier violated: both publications invisible (ra={ra}, rb={rb})"
    );
}

fn read_entry_weak() {
    read_entry_scenario(true)
}

fn read_entry_strong() {
    read_entry_scenario(false)
}

/// Same plain-access torn-pair scenario as tests/mutation_kill.rs:
/// ordinary field reads whose safety rests entirely on the exit
/// validation load — the access shape `WEAK_EXIT_LOAD` must die on.
fn torn_pair_plain_scenario() {
    const PAIR: ClassId = ClassId::new(7);
    let heap = Arc::new(Heap::new(64));
    let obj = heap.alloc(PAIR, 2).expect("scenario heap is large enough");
    heap.store_plain(obj, 0, 10).unwrap();
    heap.store_plain(obj, 1, 10).unwrap();
    let lock = Arc::new(SoleroLock::with_config(
        SoleroConfig::builder().spin(SpinConfig::immediate()).build(),
    ));

    let writer = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            lock.write(|| {
                heap.store_plain(obj, 0, 11).unwrap();
                heap.store_plain(obj, 1, 11).unwrap();
            });
        })
    };
    let reader = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            let pair = lock
                .read_only(|_| {
                    let a = heap.load_plain(obj, PAIR, 0)?;
                    let b = heap.load_plain(obj, PAIR, 1)?;
                    Ok::<_, Fault>((a, b))
                })
                .expect("no genuine faults in this scenario");
            assert_eq!(pair.0, pair.1, "validated torn read {pair:?}");
        })
    };
    writer.join();
    reader.join();
}

fn checker() -> Checker {
    Checker::exhaustive()
        .preemption_bound(Some(2))
        .weak_memory(true)
}

/// One test so the process-global mutation switch is only ever flipped
/// sequentially (same pattern as tests/mutation_kill.rs).
#[test]
fn weak_barrier_and_weak_exit_load_die_under_weak_memory() {
    // Strong barrier: the identical scenario drains clean.
    let stats = checker()
        .check("read_entry_strong", read_entry_strong)
        .expect("the Strong entry barrier must forbid the (0, 0) outcome");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "strong-barrier search must exhaust its space"
    );

    // Weak barrier: the checker must exhibit the §3.4 violation…
    let violation = match checker().check("read_entry_weak", read_entry_weak) {
        Err(v) => v,
        Ok(_) if solero_mc::budget_overridden() => {
            eprintln!("mc[read_entry_weak] kill skipped: SOLERO_MC_BUDGET capped the search");
            return;
        }
        Ok(_) => panic!("WeakBarrier-SOLERO survived: the entry fence is not load-bearing"),
    };
    assert!(
        violation.message.contains("read-entry barrier violated"),
        "unexpected failure: {violation}"
    );
    println!("killed weak_barrier: {violation}");

    // …and replay it deterministically (twice).
    for _ in 0..2 {
        let replayed = Checker::replay(&violation.trace)
            .weak_memory(true)
            .check("read_entry_weak", read_entry_weak)
            .expect_err("recorded trace must reproduce the barrier violation");
        assert_eq!(replayed.message, violation.message, "replay diverged");
    }

    // The exit-validation mutation also dies under weak memory, on the
    // plain-access scenario directly: baseline clean, mutant killed.
    checker()
        .check("torn_pair_plain_baseline", torn_pair_plain_scenario)
        .expect("unmutated protocol must be correct under weak memory");

    mutation::set(mutation::WEAK_EXIT_LOAD);
    let violation = match checker().check("weak_exit_load", torn_pair_plain_scenario) {
        Err(v) => v,
        Ok(_) if solero_mc::budget_overridden() => {
            eprintln!("mc[weak_exit_load] kill skipped: SOLERO_MC_BUDGET capped the search");
            mutation::set(mutation::NONE);
            return;
        }
        Ok(_) => panic!("weak_exit_load survived a full weak-memory search"),
    };
    assert!(
        violation.message.contains("torn read"),
        "weak_exit_load must die on the torn-read assert, got: {violation}"
    );
    println!("killed weak_exit_load: {violation}");
    for _ in 0..2 {
        let replayed = Checker::replay(&violation.trace)
            .weak_memory(true)
            .check("weak_exit_load", torn_pair_plain_scenario)
            .expect_err("recorded trace must reproduce the kill");
        assert_eq!(replayed.message, violation.message, "replay diverged");
    }
    mutation::set(mutation::NONE);

    // Switch off again: the protocol passes.
    checker()
        .check("torn_pair_plain_after", torn_pair_plain_scenario)
        .expect("protocol must pass once mutations are reset");
}
