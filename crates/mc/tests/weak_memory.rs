//! Litmus tests for the TSO-style weak-memory mode
//! (`Checker::weak_memory(true)`): per-thread store buffers with
//! scheduler-chosen flush points.
//!
//! Three classic shapes pin the model down:
//!
//!  * **SB** (store buffering) — the behaviour TSO *adds*: both
//!    threads may read stale values unless each issues a Store→Load
//!    fence. The checker must find the `(0, 0)` outcome under weak
//!    memory, replay it deterministically, and prove it unreachable
//!    both under the sequentially consistent base model and once
//!    `storeload_fence` is inserted.
//!  * **MP** (message passing) — the behaviour TSO must *not* add:
//!    buffers drain in FIFO order, so a published flag never
//!    overtakes its payload.
//!  * DPOR must agree with the plain bounded DFS on both verdicts —
//!    flush events participate in the dependence relation as their
//!    own pseudo-threads, and a hole there would silently prune the
//!    violating schedule.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
#![cfg(solero_mc)]

use std::sync::Arc;

use solero_mc::{spawn, Checker};
use solero_sync::atomic::{AtomicU64, Ordering};

/// Dekker's handshake: each thread stores its own flag, then reads the
/// other's. `fenced` inserts the modeled Store→Load barrier between
/// the two, exactly where §3.4 places it at SOLERO read-only entry.
fn sb_scenario(fenced: bool) {
    let x = Arc::new(AtomicU64::new(0));
    let y = Arc::new(AtomicU64::new(0));

    let t0 = {
        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
        spawn(move || {
            x.store(1, Ordering::Release);
            if fenced {
                solero_runtime::fence::storeload_fence();
            }
            y.load(Ordering::Acquire)
        })
    };
    let t1 = {
        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
        spawn(move || {
            y.store(1, Ordering::Release);
            if fenced {
                solero_runtime::fence::storeload_fence();
            }
            x.load(Ordering::Acquire)
        })
    };
    let r0 = t0.join();
    let r1 = t1.join();
    assert!(
        r0 == 1 || r1 == 1,
        "store buffering observed: both loads stale (r0={r0}, r1={r1})"
    );
}

fn sb_relaxed() {
    sb_scenario(false)
}

fn sb_fenced() {
    sb_scenario(true)
}

/// Message passing: payload then flag, both `Release`; the consumer
/// acquires the flag. FIFO store buffers must keep this working — a
/// flag visible in memory implies its payload flushed first.
fn mp_scenario() {
    let data = Arc::new(AtomicU64::new(0));
    let flag = Arc::new(AtomicU64::new(0));

    let producer = {
        let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
        spawn(move || {
            data.store(42, Ordering::Release);
            flag.store(1, Ordering::Release);
        })
    };
    let consumer = {
        let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
        spawn(move || {
            if flag.load(Ordering::Acquire) == 1 {
                let d = data.load(Ordering::Acquire);
                assert_eq!(d, 42, "flag overtook its payload (data={d})");
            }
        })
    };
    producer.join();
    consumer.join();
}

fn checker(weak: bool) -> Checker {
    Checker::exhaustive()
        .preemption_bound(Some(2))
        .weak_memory(weak)
}

#[test]
fn sb_is_reachable_under_weak_memory_and_replays() {
    // The base (sequentially consistent) model must NOT reach (0, 0)…
    let stats = checker(false)
        .check("sb_sc", sb_relaxed)
        .expect("SB has no stale outcome under sequential consistency");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "SC baseline must exhaust its space"
    );

    // …the weak-memory model must.
    let violation = match checker(true).check("sb_weak", sb_relaxed) {
        Err(v) => v,
        Ok(_) if solero_mc::budget_overridden() => {
            eprintln!("mc[sb_weak] skipped: SOLERO_MC_BUDGET capped the search");
            return;
        }
        Ok(_) => panic!("weak memory failed to reach the SB (0, 0) outcome"),
    };
    assert!(
        violation.message.contains("store buffering observed"),
        "unexpected failure: {violation}"
    );

    // The printed trace replays the stale outcome deterministically —
    // flush choices are ordinary decisions, so the same indices work.
    for _ in 0..2 {
        let replayed = Checker::replay(&violation.trace)
            .weak_memory(true)
            .check("sb_weak", sb_relaxed)
            .expect_err("recorded trace must reproduce the SB outcome");
        assert_eq!(replayed.message, violation.message, "replay diverged");
    }
}

#[test]
fn storeload_fence_restores_sb() {
    let stats = checker(true)
        .check("sb_fenced", sb_fenced)
        .expect("storeload_fence must close the store-buffering window");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "fenced SB search must exhaust its space"
    );
}

#[test]
fn message_passing_holds_under_weak_memory() {
    let stats = checker(true)
        .check("mp_weak", mp_scenario)
        .expect("FIFO buffers must preserve message passing");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "MP search must exhaust its space"
    );
}

#[test]
fn dpor_matches_dfs_verdicts_under_weak_memory() {
    let dpor = |weak: bool| {
        Checker::dpor()
            .preemption_bound(Some(2))
            .weak_memory(weak)
    };

    // Violating scenario: both modes must find it (and DPOR's trace
    // must replay like any other).
    match dpor(true).check("sb_weak_dpor", sb_relaxed) {
        Err(v) => {
            assert!(
                v.message.contains("store buffering observed"),
                "unexpected failure: {v}"
            );
            let replayed = Checker::replay(&v.trace)
                .weak_memory(true)
                .check("sb_weak_dpor", sb_relaxed)
                .expect_err("DPOR trace must replay");
            assert_eq!(replayed.message, v.message);
        }
        Ok(_) if solero_mc::budget_overridden() => {
            eprintln!("mc[sb_weak_dpor] skipped: budget capped");
        }
        Ok(_) => panic!("DPOR pruned the SB violation the plain DFS finds"),
    }

    // Clean scenarios: DPOR must also drain them without a (spurious)
    // violation.
    dpor(true)
        .check("sb_fenced_dpor", sb_fenced)
        .expect("DPOR found a violation the plain DFS proves absent");
    dpor(true)
        .check("mp_weak_dpor", mp_scenario)
        .expect("DPOR found an MP violation the plain DFS proves absent");
}
