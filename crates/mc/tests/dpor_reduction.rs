//! Measures the dynamic partial-order reduction (ISSUE 4 tentpole):
//! the same scenarios are explored by plain bounded DFS and by
//! [`Checker::dpor`], and the checker reports a before/after
//! explored-executions count. DPOR must visit strictly fewer schedules
//! while reaching the same verdict, and the traces it records must
//! stay byte-for-byte [`Checker::replay`]-compatible.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{Fault, SoleroConfig, SoleroLock};
use solero_heap::{ClassId, Heap, ObjRef};
use solero_mc::{spawn, Checker, McStats};
use solero_runtime::spin::SpinConfig;

const PAIR: ClassId = ClassId::new(7);

fn mc_config() -> SoleroConfig {
    SoleroConfig::builder().spin(SpinConfig::immediate()).build()
}

fn alloc_pair(heap: &Heap) -> ObjRef {
    let obj = heap.alloc(PAIR, 2).expect("scenario heap is large enough");
    heap.store(obj, 0, 10).unwrap();
    heap.store(obj, 1, 10).unwrap();
    obj
}

/// The torn-pair protocol scenario from tests/protocol.rs: one writer
/// keeping `slot0 == slot1` under the lock, `readers` elided readers
/// snapshotting both slots and asserting coherence.
fn pair_scenario(readers: usize) {
    let heap = Arc::new(Heap::new(64));
    let obj = alloc_pair(&heap);
    let lock = Arc::new(SoleroLock::with_config(mc_config()));

    let writer = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            lock.write(|| {
                let a = heap.load(obj, PAIR, 0).unwrap();
                heap.store(obj, 0, a + 1).unwrap();
                let b = heap.load(obj, PAIR, 1).unwrap();
                heap.store(obj, 1, b + 1).unwrap();
            });
        })
    };
    let readers: Vec<_> = (0..readers)
        .map(|_| {
            let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
            spawn(move || {
                let pair = lock
                    .read_only(|_| {
                        let a = heap.load(obj, PAIR, 0)?;
                        let b = heap.load(obj, PAIR, 1)?;
                        Ok::<_, Fault>((a, b))
                    })
                    .expect("no genuine faults in this scenario");
                assert_eq!(pair.0, pair.1, "validated torn read {pair:?}");
            })
        })
        .collect();
    writer.join();
    for r in readers {
        r.join();
    }
}

/// Runs `scenario` under plain bounded DFS and under DPOR with the same
/// preemption bound, requiring both to pass and to drain their spaces,
/// and prints the before/after count the mc report promises.
fn measure(name: &str, bound: u32, scenario: fn()) -> (McStats, McStats) {
    let dfs = Checker::exhaustive()
        .preemption_bound(Some(bound))
        .check(&format!("{name}_dfs"), scenario)
        .expect("plain DFS verdict must be pass");
    let dpor = Checker::dpor()
        .preemption_bound(Some(bound))
        .check(&format!("{name}_dpor"), scenario)
        .expect("DPOR verdict must match plain DFS (pass)");
    println!(
        "mc[{name}] reduction: plain-dfs {} -> dpor {} execution(s)",
        dfs.executions, dpor.executions
    );
    (dfs, dpor)
}

/// On the existing two-thread protocol scenario DPOR must explore
/// strictly fewer executions than plain DFS at the same preemption
/// bound, with the same verdict and a drained space on both sides.
#[test]
fn dpor_reduces_two_thread_protocol_scenario() {
    let (dfs, dpor) = measure("read_snapshot", 2, || pair_scenario(1));
    if solero_mc::budget_overridden() {
        return; // a capped search proves nothing about the full spaces
    }
    assert!(dfs.complete, "DFS must drain the bounded space");
    assert!(dpor.complete, "DPOR must drain the bounded space");
    assert!(
        dpor.executions < dfs.executions,
        "DPOR must prune commuting schedules: dfs {} vs dpor {}",
        dfs.executions,
        dpor.executions
    );
}

/// Three threads make the gap decisive: DPOR still drains the space,
/// in strictly fewer executions than plain DFS needs.
#[test]
fn dpor_reduces_three_thread_scenario() {
    let (dfs, dpor) = measure("pair_two_readers", 2, || pair_scenario(2));
    if solero_mc::budget_overridden() {
        return;
    }
    assert!(dfs.complete && dpor.complete, "both spaces must drain");
    assert!(
        dpor.executions < dfs.executions,
        "DPOR must prune commuting schedules: dfs {} vs dpor {}",
        dfs.executions,
        dpor.executions
    );
}

/// Verdict equivalence on a *failing* scenario, and replay stability of
/// the trace DPOR records: an unlocked writer tears the pair in some
/// schedules, both modes must find a torn snapshot, and the DPOR
/// violation's trace string must reproduce the identical failure
/// through [`Checker::replay`] — byte-for-byte, twice.
#[test]
fn dpor_violation_traces_replay_byte_for_byte() {
    fn racy_scenario() {
        let heap = Arc::new(Heap::new(64));
        let obj = alloc_pair(&heap);
        let writer = {
            let heap = Arc::clone(&heap);
            spawn(move || {
                // No lock: the torn window is genuinely observable.
                let a = heap.load(obj, PAIR, 0).unwrap();
                heap.store(obj, 0, a + 1).unwrap();
                let b = heap.load(obj, PAIR, 1).unwrap();
                heap.store(obj, 1, b + 1).unwrap();
            })
        };
        let reader = {
            let heap = Arc::clone(&heap);
            spawn(move || {
                let a = heap.load(obj, PAIR, 0).unwrap();
                let b = heap.load(obj, PAIR, 1).unwrap();
                assert_eq!(a, b, "unlocked torn read ({a}, {b})");
            })
        };
        writer.join();
        reader.join();
    }

    let dfs_kill = Checker::exhaustive()
        .check("racy_dfs", racy_scenario)
        .expect_err("plain DFS must find the unlocked tear");
    let dpor_kill = Checker::dpor()
        .check("racy_dpor", racy_scenario)
        .expect_err("DPOR must find the unlocked tear too");
    assert!(
        dfs_kill.message.contains("unlocked torn read"),
        "unexpected DFS failure: {dfs_kill}"
    );
    assert!(
        dpor_kill.message.contains("unlocked torn read"),
        "unexpected DPOR failure: {dpor_kill}"
    );

    for _ in 0..2 {
        let replayed = Checker::replay(&dpor_kill.trace)
            .check("racy_replay", racy_scenario)
            .expect_err("a recorded DPOR trace must reproduce its failure");
        assert_eq!(
            replayed.message, dpor_kill.message,
            "replay diverged from the recorded DPOR violation"
        );
        assert_eq!(
            replayed.trace, dpor_kill.trace,
            "replaying must re-record the identical trace string"
        );
    }
}
