//! Checking the checker: each protocol mutation in `solero::mutation`
//! weakens one load/store the elision protocol depends on, and the
//! model checker must find a schedule that catches it — then replay
//! that schedule deterministically. If a mutation survived, the
//! scenarios would be too weak to trust.
//!
//! This lives in its own test binary (its own process) because the
//! mutation switch is process-global: the scenarios in
//! `tests/protocol.rs` must never run mutated.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{mutation, Fault, SoleroConfig, SoleroLock};
use solero_heap::{ClassId, Heap};
use solero_mc::{spawn, Checker};
use solero_runtime::spin::SpinConfig;

const PAIR: ClassId = ClassId::new(7);

/// The torn-pair scenario from tests/protocol.rs: one writer keeping
/// `slot0 == slot1`, one elided reader asserting it saw them equal.
fn torn_pair_scenario() {
    let heap = Arc::new(Heap::new(64));
    let obj = heap.alloc(PAIR, 2).expect("scenario heap is large enough");
    heap.store(obj, 0, 10).unwrap();
    heap.store(obj, 1, 10).unwrap();
    let lock = Arc::new(SoleroLock::with_config(
        SoleroConfig::builder().spin(SpinConfig::immediate()).build(),
    ));

    let writer = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            lock.write(|| {
                let a = heap.load(obj, PAIR, 0).unwrap();
                heap.store(obj, 0, a + 1).unwrap();
                let b = heap.load(obj, PAIR, 1).unwrap();
                heap.store(obj, 1, b + 1).unwrap();
            });
        })
    };
    let reader = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            let pair = lock
                .read_only(|_| {
                    let a = heap.load(obj, PAIR, 0)?;
                    let b = heap.load(obj, PAIR, 1)?;
                    Ok::<_, Fault>((a, b))
                })
                .expect("no genuine faults in this scenario");
            assert_eq!(pair.0, pair.1, "validated torn read {pair:?}");
        })
    };
    writer.join();
    reader.join();
}

/// The same invariant over *plain* heap accesses: the read section
/// uses `Heap::{load_plain, store_plain}` — the model of the paper's
/// ordinary Java field accesses, whose safety rests entirely on exit
/// validation. The `Acquire`-accessor scenario above cannot kill
/// `WEAK_EXIT_LOAD`: a reader that observed torn data has already
/// synchronized with the writer's lock-word store, and per-location
/// coherence then forbids even a `Relaxed` exit load from returning
/// the stale word. With plain data reads no such rescue exists, and
/// the exit load's `Acquire` is load-bearing. (An earlier revision
/// worked around the missing plain accessors with raw `solero-sync`
/// `Relaxed` cells; the heap now models plain field access directly.)
fn torn_pair_plain_scenario() {
    let heap = Arc::new(Heap::new(64));
    let obj = heap.alloc(PAIR, 2).expect("scenario heap is large enough");
    heap.store_plain(obj, 0, 10).unwrap();
    heap.store_plain(obj, 1, 10).unwrap();
    let lock = Arc::new(SoleroLock::with_config(
        SoleroConfig::builder().spin(SpinConfig::immediate()).build(),
    ));

    let writer = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            lock.write(|| {
                heap.store_plain(obj, 0, 11).unwrap();
                heap.store_plain(obj, 1, 11).unwrap();
            });
        })
    };
    let reader = {
        let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
        spawn(move || {
            let pair = lock
                .read_only(|_| {
                    let a = heap.load_plain(obj, PAIR, 0)?;
                    let b = heap.load_plain(obj, PAIR, 1)?;
                    Ok::<_, Fault>((a, b))
                })
                .expect("no genuine faults in this scenario");
            assert_eq!(pair.0, pair.1, "validated torn read {pair:?}");
        })
    };
    writer.join();
    reader.join();
}

/// Bound 2 suffices: every mutant below dies within two preemptions
/// (see the per-mutation notes), and the smaller space keeps the
/// whole harness inside the CI budget.
fn checker() -> Checker {
    Checker::exhaustive().preemption_bound(Some(2))
}

/// One test (not one per mutation) so the process-global mutation
/// switch is flipped from a single thread, strictly sequentially.
#[test]
fn every_mutation_is_killed() {
    let scenarios: [(&str, fn()); 2] = [
        ("torn_pair", torn_pair_scenario),
        ("torn_pair_plain", torn_pair_plain_scenario),
    ];

    // Baseline: the unmutated protocol survives the same searches
    // that must kill every mutant.
    for (sname, scenario) in scenarios {
        let stats = checker()
            .check(&format!("baseline_{sname}"), scenario)
            .expect("unmutated protocol must pass the mutation-kill search");
        assert!(
            stats.complete || solero_mc::budget_overridden(),
            "baseline search must exhaust its space"
        );
    }

    // Each mutation paired with a scenario that observes it:
    //  * skip_exit_reread — reader validates mid-write torn heap pair
    //    (2 preemptions: reader pauses after slot 0, writer updates
    //    slot 0, reader finishes and skips the re-read).
    //  * weak_exit_load — plain heap pair; the stale lock word rescues
    //    a torn pair through the weakened validation load.
    //  * stuck_counter — writer's whole section hides between the
    //    reader's two loads (1 preemption): the word never advanced,
    //    so validation ABA-passes a torn pair.
    let kills: [(&str, u8, fn()); 3] = [
        ("skip_exit_reread", mutation::SKIP_EXIT_REREAD, torn_pair_scenario),
        ("weak_exit_load", mutation::WEAK_EXIT_LOAD, torn_pair_plain_scenario),
        ("stuck_counter", mutation::STUCK_COUNTER, torn_pair_scenario),
    ];

    for (name, m, scenario) in kills {
        mutation::set(m);
        let violation = match checker().check(name, scenario) {
            Err(v) => v,
            // A capped search makes no kill promise (the kills above
            // need up to ~1.7k executions); don't fail the suite when
            // the operator deliberately shrank the budget.
            Ok(_) if solero_mc::budget_overridden() => {
                eprintln!("mc[{name}] kill skipped: SOLERO_MC_BUDGET capped the search");
                mutation::set(mutation::NONE);
                continue;
            }
            Ok(_) => panic!("mutation {name} survived a full search"),
        };
        println!("killed {name}: {violation}");
        assert!(
            violation.message.contains("torn read"),
            "{name} must die on the torn-read assert, got: {violation}"
        );

        // The printed trace replays to the same failure, twice.
        for _ in 0..2 {
            let replayed = Checker::replay(&violation.trace)
                .check(name, scenario)
                .expect_err("recorded trace must reproduce the kill");
            assert_eq!(replayed.message, violation.message, "{name} replay diverged");
        }

        mutation::set(mutation::NONE);
    }

    // And with the switch back off, the protocol passes again.
    checker()
        .check("baseline_after", torn_pair_scenario)
        .expect("protocol must pass once mutations are reset");
}
