//! Model-checked writer-bump/reader-validate handshake for the inline
//! [`SeqLock`].
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
//!
//! The inline seqlock has no heap indirection to hide behind: the
//! payload words are read speculatively (`Relaxed`) while a writer may
//! be storing them, and the *only* thing standing between a torn
//! word-mix and the caller is the exit re-validation — the captured
//! even word re-loaded `Acquire` after the read-exit fence. These
//! scenarios drive both sides of that handshake at once and must hold
//! in **every** explored schedule:
//!
//! * a validated `read_inline` never returns a torn pair — the value
//!   is some writer's complete publication or the initial one;
//! * the retry/fallback driver terminates and releases: the word ends
//!   even, advanced exactly twice per writer (fallback *reads* restore
//!   the word they displaced rather than bumping it);
//! * the abort taxonomy balances at teardown (`read_aborts ==
//!   abort_reason_sum()`, `fallback_acquires == abort_retry_exhausted`,
//!   and every typed read completes exactly one way: elided or
//!   fallback).
//!
//! The space is drained three ways — exhaustive DFS (1R+1W), DPOR
//! (2R+1W), and a TSO store-buffer pass aimed at the writer's buffered
//! payload/sequence stores. `seqlock_kill.rs` (its own binary — the
//! mutation switch is process-global) then demonstrates the validation
//! is load-bearing: `SKIP_EXIT_REREAD` dies under plain DFS, and the
//! `Relaxed`-demoted exit load (`WEAK_EXIT_LOAD`) dies under weak
//! memory — each with a deterministic replay. Scenarios run
//! `SpinConfig::immediate()` + `ContentionConfig::minimal()` so the
//! bounded spaces stay drainable.
//!
//! Unlike `SoleroLock`, the inline lock has no monitor to park on: its
//! fallback is a CAS loop, so a schedule that starves the lock holder
//! spins the contender until the step ceiling truncates it — and
//! because bounded-preemption DFS enumerates every placement of the
//! preemption points along an execution (`~steps^bound` schedules),
//! every extra spin iteration the ceiling admits multiplies the
//! search. The interesting interleavings — writer mid-store under a
//! speculating reader, fallback freezing the word, the restored (not
//! bumped) release — all complete in well under 150 steps, so the
//! checkers pin `max_steps` there; the tail beyond it is nothing but
//! failed CAS probes re-reading a word only the descheduled holder can
//! change.
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{SeqLock, SoleroConfig};
use solero_mc::{spawn, Checker};
use solero_runtime::contention::ContentionConfig;
use solero_runtime::spin::SpinConfig;

fn mc_config() -> SoleroConfig {
    SoleroConfig::builder()
        .spin(SpinConfig::immediate())
        .contention(ContentionConfig::minimal())
        .build()
}

/// `readers` threads snapshot an inline pair one writer bumps as a
/// unit. Panics (killing the schedule) if a validated read is torn or
/// the teardown invariants fail.
fn torn_pair_scenario(readers: usize) {
    let lock = Arc::new(SeqLock::with_config(mc_config(), [0u64; 2]));

    let writer = {
        let lock = Arc::clone(&lock);
        spawn(move || {
            lock.update_inline(|v| {
                v[0] += 1;
                v[1] += 1;
            });
        })
    };
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let lock = Arc::clone(&lock);
            spawn(move || {
                let [a, b] = lock.read_inline();
                assert_eq!(a, b, "validated inline read is torn: [{a}, {b}]");
            })
        })
        .collect();
    writer.join();
    for h in handles {
        h.join();
    }

    assert_eq!(
        lock.raw_seq(),
        2,
        "one writer bumps by exactly 2; fallback reads must restore"
    );
    assert_eq!(lock.read_inline(), [1, 1], "writer's publication lost");
    let s = lock.stats().snapshot();
    // The post-join read above is always elided (no concurrency left).
    let typed_reads = readers as u64 + 1;
    assert_eq!(s.read_enters, typed_reads, "{s:?}");
    assert_eq!(s.write_enters, 1, "{s:?}");
    assert_eq!(
        s.elision_success + s.fallback_acquires,
        typed_reads,
        "every typed read completes exactly once, elided or fallback: {s:?}"
    );
    assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
    assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
}

fn one_reader_one_writer() {
    torn_pair_scenario(1)
}
/// DFS, bounded preemptions: every interleaving of the reader's
/// capture/load/re-validate against the writer's CAS/store/release.
#[test]
fn seqlock_reader_never_torn_dfs() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(2))
        .max_steps(150)
        .check("seqlock_torn_dfs", one_reader_one_writer)
        .expect("validated inline reads must never tear");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// DPOR, two readers racing the writer: retry, fallback, and the
/// restored (not bumped) word of a fallback read are all reachable, and
/// the invariants must hold on every branch.
#[test]
fn seqlock_two_readers_dpor() {
    let stats = Checker::dpor()
        .max_steps(250)
        .check("seqlock_torn_dpor", || torn_pair_scenario(2))
        .expect("inline seqlock invariants must hold under DPOR");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// TSO store buffers: the writer's payload stores and its release bump
/// may sit buffered while the reader runs its whole validated section —
/// exactly the shape the acquire exit load plus read-exit fence exist
/// to close.
#[test]
fn seqlock_handshake_survives_tso() {
    // Flush points multiply every spin iteration, so the plain-DFS form
    // of this drain is ~1.3M executions; DPOR collapses it the same way
    // it does the SC space (weak_memory.rs pins DPOR/DFS verdict parity
    // under TSO) while seqlock_kill.rs still proves the
    // exhaustive weak-memory search finds the WEAK_EXIT_LOAD seam.
    let stats = Checker::dpor()
        .weak_memory(true)
        .max_steps(100)
        .check("seqlock_torn_tso", one_reader_one_writer)
        .expect("the exit validation must close the store-buffer race");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}
