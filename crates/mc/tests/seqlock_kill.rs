//! Mutation kills for the inline [`SeqLock`]'s exit validation.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
//!
//! The drains in `seqlock_mc.rs` prove the protocol holds; this binary
//! proves the exit validation is *load-bearing* by weakening it two
//! ways and requiring the checker to kill each mutant with a
//! deterministic replay:
//!
//! * `SKIP_EXIT_REREAD` dies already under sequential consistency —
//!   the writer lands between the reader's two payload loads and
//!   nothing rejects the mix;
//! * `WEAK_EXIT_LOAD` (the exit re-load demoted to `Relaxed`) survives
//!   SC but dies under TSO store buffers, where the stale even word
//!   validates a section the writer already invalidated.
//!
//! The mutation switch is process-global, so the kills live in their
//! own test binary (one `#[test]`, same pattern as barrier_kill.rs /
//! mutation_kill.rs): a parallel test harness must never interleave a
//! mutated protocol with the clean drains.

#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{mutation, SeqLock, SoleroConfig};
use solero_mc::{spawn, Checker};
use solero_runtime::contention::ContentionConfig;
use solero_runtime::spin::SpinConfig;

fn mc_config() -> SoleroConfig {
    SoleroConfig::builder()
        .spin(SpinConfig::immediate())
        .contention(ContentionConfig::minimal())
        .build()
}

/// The mutation searches' scenario: the writer-bump vs validated-read
/// race of `seqlock_mc.rs`, shorn of the teardown bookkeeping. The
/// kills die on the reader's torn assert mid-schedule, so the
/// teardown's extra tracked steps only pad every execution of an
/// already DFS-order-unlucky search (the SC kill surfaces at ~99% of
/// the full scenario's space); dropping them pulls both seams inside a
/// tight step ceiling.
fn torn_pair_kill() {
    let lock = Arc::new(SeqLock::with_config(mc_config(), [0u64; 2]));
    let writer = {
        let lock = Arc::clone(&lock);
        spawn(move || {
            lock.update_inline(|v| {
                v[0] += 1;
                v[1] += 1;
            });
        })
    };
    let reader = {
        let lock = Arc::clone(&lock);
        spawn(move || {
            let [a, b] = lock.read_inline();
            assert_eq!(a, b, "validated inline read is torn: [{a}, {b}]");
        })
    };
    writer.join();
    reader.join();
}

/// One test so the process-global mutation switch is only ever flipped
/// sequentially. Both exit-validation mutations must die on the inline
/// lock, each with a deterministic replay.
#[test]
fn seqlock_exit_validation_mutations_die() {
    // 60 steps covers every complete behaviour of the stripped kill
    // scenario; anything longer is fallback CAS spin, and under TSO the
    // flush branching on that spin pushes the violating schedules past
    // the execution budget (the seam sat beyond 200k executions at a
    // 100-step ceiling).
    let plain = || {
        Checker::exhaustive()
            .preemption_bound(Some(2))
            .max_steps(60)
    };
    let weak = || {
        Checker::exhaustive()
            .preemption_bound(Some(2))
            .weak_memory(true)
            .max_steps(60)
    };

    // Baselines: the unmutated protocol drains clean under the exact
    // searches the kills run.
    plain()
        .check("seqlock_baseline_sc", torn_pair_kill)
        .expect("unmutated seqlock must be correct under SC");
    weak()
        .check("seqlock_baseline_tso", torn_pair_kill)
        .expect("unmutated seqlock must be correct under TSO");

    // Skipping the exit re-read dies already under SC: the writer lands
    // between the reader's two payload loads and nothing rejects the
    // mix.
    mutation::set(mutation::SKIP_EXIT_REREAD);
    let violation = match plain().check("seqlock_skip_exit_reread", torn_pair_kill) {
        Err(v) => v,
        Ok(_) if solero_mc::budget_overridden() => {
            eprintln!("mc[seqlock_skip_exit_reread] kill skipped: SOLERO_MC_BUDGET capped");
            mutation::set(mutation::NONE);
            return;
        }
        Ok(_) => panic!("SKIP_EXIT_REREAD survived: the exit re-read is not load-bearing"),
    };
    assert!(
        violation.message.contains("torn"),
        "SKIP_EXIT_REREAD must die on the torn-pair assert, got: {violation}"
    );
    println!("killed seqlock skip_exit_reread: {violation}");
    for _ in 0..2 {
        let replayed = Checker::replay(&violation.trace)
            .check("seqlock_skip_exit_reread", torn_pair_kill)
            .expect_err("recorded trace must reproduce the kill");
        assert_eq!(replayed.message, violation.message, "replay diverged");
    }

    // Demoting the exit load to Relaxed needs store buffers to die: the
    // stale even word validates a section the writer already invalidated.
    mutation::set(mutation::WEAK_EXIT_LOAD);
    let violation = match weak().check("seqlock_weak_exit_load", torn_pair_kill) {
        Err(v) => v,
        Ok(_) if solero_mc::budget_overridden() => {
            eprintln!("mc[seqlock_weak_exit_load] kill skipped: SOLERO_MC_BUDGET capped");
            mutation::set(mutation::NONE);
            return;
        }
        Ok(_) => panic!("WEAK_EXIT_LOAD survived a full weak-memory search"),
    };
    assert!(
        violation.message.contains("torn"),
        "WEAK_EXIT_LOAD must die on the torn-pair assert, got: {violation}"
    );
    println!("killed seqlock weak_exit_load: {violation}");
    for _ in 0..2 {
        let replayed = Checker::replay(&violation.trace)
            .weak_memory(true)
            .check("seqlock_weak_exit_load", torn_pair_kill)
            .expect_err("recorded trace must reproduce the kill");
        assert_eq!(replayed.message, violation.message, "replay diverged");
    }
    mutation::set(mutation::NONE);

    // Switch off again: the protocol passes.
    weak()
        .check("seqlock_baseline_after", torn_pair_kill)
        .expect("protocol must pass once mutations are reset");
}
