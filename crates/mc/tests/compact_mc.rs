//! Model-checked inflate → deflate → re-inflate handoff for the
//! compact (eight-byte, table-backed) lock word.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
//!
//! The compact layout keeps the elision counter *inside* the lock word
//! and every inflated structure in the global monitor table, so its
//! dangerous window is different from `SoleroLock`'s: **deflation**
//! prunes the table binding and republishes the displaced counter into
//! the word while an elided reader may be mid-section and a contender
//! may be about to re-inflate. These scenarios drive that handoff and
//! must hold in every explored schedule:
//!
//! * a validated elided read never returns a torn pair — in particular,
//!   no reader validates across a deflate that republished a displaced
//!   counter equal to the reader's captured word (the displaced value is
//!   pre-advanced at inflation and bumped per fat writing release
//!   precisely so this cannot happen);
//! * the handoff strands nobody: contenders whose binding is pruned by
//!   a racing deflate re-resolve and terminate, writers serialize, the
//!   lock ends thin, unlocked, **and without a table entry**;
//! * the word's in-word counter never loses a step (the compact ABA
//!   guard), and the abort taxonomy balances space-wide
//!   (`read_aborts == abort_reason_sum()`, `fallback_acquires ==
//!   abort_retry_exhausted`, `deflations ≤ inflations`).
//!
//! The space is drained three ways — exhaustive DFS with bounded
//! preemptions, DPOR, and a DPOR pass with TSO store buffers aimed at
//! the deflater's displaced-word store racing the reader's exit
//! validation. Scenarios run `SpinConfig::immediate()` +
//! `ContentionConfig::minimal()` so the bounded spaces stay drainable.
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{CompactLock, CompactSpace, Fault, SoleroConfig};
use solero_mc::{spawn, Checker};
use solero_runtime::contention::ContentionConfig;
use solero_runtime::spin::SpinConfig;
use solero_runtime::word::COMPACT_CTR_STEP;
use solero_sync::atomic::{AtomicU64, Ordering};

fn mc_space() -> CompactSpace {
    CompactSpace::with_config(
        SoleroConfig::builder()
            .spin(SpinConfig::immediate())
            .contention(ContentionConfig::minimal())
            .build(),
    )
}

/// `writers` threads each run `sections` writing sections bumping a
/// pair as a unit while `readers` threads snapshot it elided. Panics
/// (killing the schedule) on a torn validated read or any teardown
/// invariant failure.
fn handoff_scenario(writers: usize, sections: u64, readers: usize) {
    let space = Arc::new(mc_space());
    let lock = Arc::new(CompactLock::new());
    let pair = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
    let start = lock.bind(&space).raw_word().counter().expect("starts thin");

    let mut handles = Vec::new();
    for _ in 0..writers {
        let (space, lock, pair) = (Arc::clone(&space), Arc::clone(&lock), Arc::clone(&pair));
        handles.push(spawn(move || {
            for _ in 0..sections {
                lock.bind(&space).write(|| {
                    let a = pair.0.load(Ordering::Relaxed);
                    pair.0.store(a + 1, Ordering::Relaxed);
                    pair.1.store(a + 1, Ordering::Relaxed);
                });
            }
        }));
    }
    for _ in 0..readers {
        let (space, lock, pair) = (Arc::clone(&space), Arc::clone(&lock), Arc::clone(&pair));
        handles.push(spawn(move || {
            let (a, b) = lock
                .bind(&space)
                .read_only(|| {
                    let a = pair.0.load(Ordering::Relaxed);
                    let b = pair.1.load(Ordering::Relaxed);
                    Ok::<_, Fault>((a, b))
                })
                .expect("reader must terminate via fallback if need be");
            assert_eq!(a, b, "validated elided read is torn: ({a}, {b})");
        }));
    }
    for h in handles {
        h.join();
    }

    let r = lock.bind(&space);
    assert!(!r.is_locked(), "no stranded owner after teardown");
    assert!(!r.is_inflated(), "final exit deflates");
    assert!(
        !r.monitor_resident(),
        "deflation must prune the table entry"
    );
    let total_writes = writers as u64 * sections;
    assert_eq!(
        pair.0.load(Ordering::Relaxed),
        total_writes,
        "write sections must serialize"
    );
    let end = r.raw_word().counter().expect("ends thin");
    let s = space.stats().snapshot();
    // Thin and FLC releases and inflation each advance the in-word
    // counter one step; fat writing releases advance the displaced copy
    // that deflation republishes; fallback *readers* releasing fat do
    // not. A lost step is the ABA that lets stale data validate.
    assert!(
        end >= start + total_writes + s.inflations,
        "counter lost a step: {start} -> {end} with {} writes, {} inflations",
        total_writes,
        s.inflations
    );
    assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
    assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
    assert!(s.deflations <= s.inflations, "{s:?}");
    if s.abort_inflation > 0 {
        assert!(s.inflations > 0, "inflation aborts require an inflation: {s:?}");
    }
}

/// Writers-only exact form of the counter law: with nobody releasing
/// through the read path, the end counter is *exactly* the writes plus
/// one pre-advance per inflation — over- or under-stepping fails.
fn exact_counter_scenario() {
    let space = Arc::new(mc_space());
    let lock = Arc::new(CompactLock::new());
    let start = lock.bind(&space).raw_word().raw();

    let hs: Vec<_> = (0..2)
        .map(|_| {
            let (space, lock) = (Arc::clone(&space), Arc::clone(&lock));
            spawn(move || lock.bind(&space).write(|| {}))
        })
        .collect();
    for h in hs {
        h.join();
    }

    let r = lock.bind(&space);
    assert!(!r.is_locked() && !r.is_inflated(), "clean teardown");
    assert!(!r.monitor_resident(), "table pruned");
    let s = space.stats().snapshot();
    let expected = start.wrapping_add((2 + s.inflations) * COMPACT_CTR_STEP);
    assert_eq!(
        r.raw_word().raw(),
        expected,
        "counter must advance once per write section and once per \
         inflation (start {start:#x}, {} inflations)",
        s.inflations
    );
}

/// DFS, bounded preemptions: two contending writers force the
/// FLC → inflate → fat-handoff → deflate path under an elided reader.
#[test]
fn compact_handoff_reader_never_torn_dfs() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(2))
        .max_steps(300)
        .check("compact_handoff_dfs", || handoff_scenario(2, 1, 1))
        .expect("no schedule may validate a read across the deflate handoff");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// DFS over the writers-only space: the exact in-word counter law.
#[test]
fn compact_counter_exact_dfs() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .max_steps(300)
        .check("compact_counter_dfs", exact_counter_scenario)
        .expect("compact counter stepping is schedule-independent");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// DPOR with a second section for one writer: some branch explores the
/// full inflate → deflate → **re-inflate** chain, and a deflate-pruned
/// contender must re-resolve rather than strand.
#[test]
fn compact_reinflation_drains_dpor() {
    let stats = Checker::dpor()
        .max_steps(500)
        .check("compact_reinflate_dpor", || handoff_scenario(2, 2, 1))
        .expect("re-inflation handoff must strand nobody");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// TSO store buffers: the deflater's displaced-counter store and the
/// writer's payload stores may sit buffered while the reader runs its
/// whole validated section — the shape the reader's acquire exit load
/// must close.
#[test]
fn compact_handoff_survives_tso() {
    let stats = Checker::dpor()
        .weak_memory(true)
        .max_steps(300)
        .check("compact_handoff_tso", || handoff_scenario(2, 1, 1))
        .expect("exit validation must close the store-buffer race");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// Non-preemptive sanity drain: every run-to-completion ordering of the
/// threads is clean — catches scenario bugs without paying for a full
/// interleaving search.
#[test]
fn compact_scenario_is_self_checking() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(0))
        .max_steps(300)
        .check("compact_serial", || handoff_scenario(1, 2, 1))
        .expect("serial schedules are trivially clean");
    assert!(stats.complete || solero_mc::budget_overridden());
}
