//! Model-checked COW-install/epoch-bump handshake of the
//! `solero-store` snapshot shard.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
//!
//! The store's whole consistency argument is one seqlock-shaped
//! handshake (DESIGN.md §12): the writer builds copy-on-write buckets
//! with invisible plain stores, bumps the shard epoch to **odd**
//! (`SeqCst` RMW), swings the directory slots, bumps back to **even**,
//! and only then frees the displaced buckets; the elided reader samples
//! the epoch on entry (odd ⇒ abort), loads its values, and revalidates
//! the same epoch at exit. If any ordering in that chain were too weak,
//! a reader could validate a **mixed-epoch snapshot** — bucket 0 from
//! the new batch, bucket 1 from the old one — which is precisely the
//! torn cut a versioned store must never serve. The scenarios here use
//! one shard with **two** single-slot buckets so the install window
//! (slot 0 swung, slot 1 not yet) is a real multi-step region, and a
//! writer that flips both keys `0 → 1` in one batch, so any mixed cut
//! is the non-uniform pair `{0, 1}`:
//!
//! * every validated `scan` returns a value-uniform pair — all old or
//!   all new, never mixed;
//! * every validated whole-store checkpoint binds version ↔ values
//!   (version 1 ⇒ all 0, version 2 ⇒ all 1): the epoch the reader
//!   validates is the epoch whose data it saw;
//! * teardown drains: final state is version 2 with both values 1, and
//!   the abort taxonomy balances (`read_aborts == abort_reason_sum()`)
//!   — every epoch abort was classified, retried and recovered.
//!
//! The space is drained three ways — exhaustive DFS (writer + scanning
//! reader), a TSO weak-memory pass of the same scenario (the `SeqCst`
//! epoch RMWs are exactly what flushes the writer's store buffer
//! between the bucket swings and the even bump), and DPOR with a third
//! thread taking whole-store checkpoints through the install window.
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::SoleroStrategy;
use solero_mc::{spawn, Checker};
use solero_store::{KvStore, StoreConfig};

/// One shard, two single-slot buckets.
fn store() -> Arc<KvStore> {
    Arc::new(KvStore::new(
        StoreConfig::new(2).with_shards(1).with_bucket_width(1),
        SoleroStrategy::new,
    ))
}

/// Writer installs both keys in one batch into an *empty* store while a
/// reader scans the shard. Starting empty keeps the modeled event
/// stream short enough for exhaustive DFS to drain, and the mixed-epoch
/// cut is just as visible: a validated scan must be all-or-nothing —
/// either the pre-batch cut (no keys) or the post-batch one (both keys,
/// both 1), never the half-installed singleton.
fn writer_vs_scanner() {
    let store = store();

    let writer = {
        let store = Arc::clone(&store);
        spawn(move || {
            store.put_many(&[(0, 1), (1, 1)]).expect("batch install");
        })
    };
    let reader = {
        let store = Arc::clone(&store);
        spawn(move || {
            let pairs = store
                .scan(0, 2)
                .expect("epoch aborts are artifacts; scan must settle");
            // Asserted after the section settles: a panic inside the
            // elided closure would unwind across the retry loop.
            assert!(
                pairs.len() != 1,
                "mixed-epoch snapshot validated half a batch: {pairs:?}"
            );
            if pairs.len() == 2 {
                assert_eq!(
                    pairs[0].1, pairs[1].1,
                    "mixed-epoch snapshot validated: {pairs:?}"
                );
            }
        })
    };
    writer.join();
    reader.join();

    assert_eq!(store.version(0), 1, "one batch bumps the version once");
    assert_eq!(store.get(0).unwrap(), Some(1));
    assert_eq!(store.get(1).unwrap(), Some(1));
    let s = store.snapshot_stats();
    assert_eq!(
        s.read_aborts,
        s.abort_reason_sum(),
        "every abort classified exactly once: {s:?}"
    );
    store.heap().check_integrity().expect("heap left consistent");
}

/// DFS, bounded preemptions: every interleaving of the reader's
/// enter/load/revalidate against the writer's build/odd/swing/even/free
/// chain, including schedules where the reader sits inside the install
/// window. The bound is 2 — not the 3 the small-section suites use —
/// because a store section models ~40 heap + lock events and the
/// unbudgeted executions cap cannot exhaust bound 3; two preemptions
/// still cover every single-interruption shape (reader descheduled
/// inside the window, writer descheduled mid-swing), and the DPOR pass
/// below explores the unbounded space.
#[test]
fn store_scan_never_mixes_epochs_dfs() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(2))
        .check("store_snapshot_dfs", writer_vs_scanner)
        .expect("validated scans must be single-epoch");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// TSO store buffers: the writer's plain bucket stores and directory
/// swings may each sit in a store buffer. The `SeqCst` epoch RMWs on
/// both sides of the install window are what flushes them; a demoted
/// ordering would surface here as a validated mixed pair.
#[test]
fn store_install_window_survives_tso() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(2))
        .weak_memory(true)
        .check("store_snapshot_tso", writer_vs_scanner)
        .expect("epoch handshake must close the store-buffer race");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// DPOR with the checkpointer in the mix: a whole-store cut taken
/// through the install window must bind version ↔ values — it either
/// validates the old epoch (version 1, all zeros) or the new one
/// (version 2, all ones), never a blend.
#[test]
fn store_checkpoint_binds_version_to_values_dpor() {
    let stats = Checker::dpor()
        .check("store_checkpoint_dpor", || {
            let store = store();

            let writer = {
                let store = Arc::clone(&store);
                spawn(move || {
                    store.put_many(&[(0, 1), (1, 1)]).expect("batch install");
                })
            };
            let scanner = {
                let store = Arc::clone(&store);
                spawn(move || {
                    let pairs = store.scan(0, 2).expect("scan must settle");
                    assert!(pairs.len() != 1, "mixed scan: {pairs:?}");
                    if pairs.len() == 2 {
                        assert_eq!(pairs[0].1, pairs[1].1, "mixed scan: {pairs:?}");
                    }
                })
            };
            let checkpointer = {
                let store = Arc::clone(&store);
                spawn(move || {
                    let cut = store.checkpoint().expect("checkpoint must settle");
                    let shard = &cut.shards[0];
                    match shard.version {
                        0 => assert!(
                            shard.pairs.is_empty(),
                            "cut of the pre-batch epoch shows batch data: {shard:?}"
                        ),
                        1 => assert_eq!(
                            shard.pairs,
                            vec![(0, 1), (1, 1)],
                            "cut of the post-batch epoch is not the whole batch"
                        ),
                        v => panic!("impossible shard version {v}"),
                    }
                })
            };
            writer.join();
            scanner.join();
            checkpointer.join();

            assert_eq!(store.version(0), 1);
            assert_eq!(store.get(0).unwrap(), Some(1));
            assert_eq!(store.get(1).unwrap(), Some(1));
            let s = store.snapshot_stats();
            assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
            store.heap().check_integrity().expect("heap left consistent");
        })
        .expect("checkpoints must be single-epoch cuts");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}
