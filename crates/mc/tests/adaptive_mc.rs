//! Model-checked starvation freedom for the adaptive elision policy.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
//!
//! The scenario: two writers (one empty write section each) and one
//! reader on an adaptive lock with [`AdaptiveBudgets::minimal`] —
//! every retry budget is 1, every forfeit window is 1 section and the
//! re-arm period is 1, so the whole disable → skip → re-arm cycle is
//! reachable inside two read sections. The claims, checked in **every
//! explored schedule**:
//!
//! * the reader completes both sections — forfeiting elision must
//!   degrade to real acquisition, never to spinning forever;
//! * the abort taxonomy keeps balancing even when the policy skips
//!   speculation: a policy skip is *not* an abort, so
//!   `read_aborts == abort_reason_sum()` and
//!   `fallback_acquires == abort_retry_exhausted` hold regardless;
//! * a section completes at most one way
//!   (`elision_success + fallback_acquires + policy_skips ≤
//!   read_enters`) and the policy never re-arms more often than it
//!   disables.
//!
//! The space is drained three ways — plain DFS, DPOR, and a
//! weak-memory (TSO) pass — because the policy's fast path is a relaxed
//! load that a store buffer could stale. No violating schedule was
//! found during development, so there is no replay trace to check in;
//! a future failure prints one via the checker's standard report.
#![cfg(solero_mc)]

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use solero::{AdaptiveBudgets, Fault, SoleroConfig, SoleroLock};
use solero_mc::{spawn, Checker};
use solero_runtime::spin::SpinConfig;

/// Minimal-state-space adaptive config: no spinning (contention
/// escalates in one step) and one-step policy budgets.
fn adaptive_mc_config() -> SoleroConfig {
    SoleroConfig::builder()
        .spin(SpinConfig::immediate())
        .adaptive_budgets(AdaptiveBudgets::minimal())
        .build()
}

/// The scenario body, shared by all three exploration modes. Returns
/// nothing; panics (killing the schedule) on any violated invariant.
fn two_writers_one_adaptive_reader(skips_seen: &Arc<StdAtomicU64>) -> impl Fn() + Send + 'static {
    let skips_seen = Arc::clone(skips_seen);
    move || {
        let lock = Arc::new(SoleroLock::with_config(adaptive_mc_config()));

        let writers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                spawn(move || {
                    lock.write(|| {});
                })
            })
            .collect();
        let reader = {
            let lock = Arc::clone(&lock);
            spawn(move || {
                for _ in 0..2 {
                    lock.read_only(|_| Ok::<_, Fault>(()))
                        .expect("adaptive reader must complete every section");
                }
            })
        };
        for w in writers {
            w.join();
        }
        reader.join();

        assert!(!lock.is_locked(), "no stranded owner after teardown");
        let s = lock.stats().snapshot();
        assert_eq!(s.read_enters, 2, "{s:?}");
        assert_eq!(
            s.read_aborts,
            s.abort_reason_sum(),
            "taxonomy must balance even when the policy skips: {s:?}"
        );
        assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
        assert!(
            s.elision_success + s.fallback_acquires + s.policy_skips <= s.read_enters,
            "a section completes at most one way: {s:?}"
        );
        assert!(
            s.policy_rearms <= s.policy_disables,
            "re-arm without a prior disable: {s:?}"
        );
        skips_seen.fetch_add(s.policy_skips, StdOrdering::Relaxed);
    }
}

/// Plain DFS over the bounded space.
#[test]
fn adaptive_reader_completes_under_dfs() {
    let skips = Arc::new(StdAtomicU64::new(0));
    let stats = Checker::exhaustive()
        .preemption_bound(Some(2))
        .check("adaptive_dfs", two_writers_one_adaptive_reader(&skips))
        .expect("no schedule starves the adaptive reader");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
    assert!(
        skips.load(StdOrdering::Relaxed) > 0 || solero_mc::budget_overridden(),
        "exploration must cover at least one policy-skip schedule"
    );
}

/// Same space under DPOR — the verdict must not change when commuting
/// schedules are pruned.
#[test]
fn adaptive_reader_completes_under_dpor() {
    let skips = Arc::new(StdAtomicU64::new(0));
    let stats = Checker::dpor()
        .preemption_bound(Some(2))
        .check("adaptive_dpor", two_writers_one_adaptive_reader(&skips))
        .expect("DPOR finds no starving schedule either");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "reduced space must be exhausted"
    );
}

/// TSO drain: the policy fast path reads its forfeit counter with a
/// relaxed load, so give the store buffers a chance to serve it stale —
/// staleness may mis-route one section, but must never break
/// completion or the taxonomy. Store buffering multiplies the state
/// space, so this pass slims the scenario to one writer (enough to
/// abort the reader and trip the one-step budgets) and prunes with
/// DPOR; the 2-writer interleavings are covered SC by the DFS/DPOR
/// passes above.
#[test]
fn adaptive_reader_completes_under_weak_memory() {
    let stats = Checker::dpor()
        .preemption_bound(Some(2))
        .weak_memory(true)
        .check("adaptive_tso", || {
            let lock = Arc::new(SoleroLock::with_config(adaptive_mc_config()));
            let writer = {
                let lock = Arc::clone(&lock);
                spawn(move || {
                    lock.write(|| {});
                })
            };
            let reader = {
                let lock = Arc::clone(&lock);
                spawn(move || {
                    for _ in 0..2 {
                        lock.read_only(|_| Ok::<_, Fault>(()))
                            .expect("adaptive reader must complete every section");
                    }
                })
            };
            writer.join();
            reader.join();

            assert!(!lock.is_locked(), "no stranded owner after teardown");
            let s = lock.stats().snapshot();
            assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
            assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
            assert!(
                s.elision_success + s.fallback_acquires + s.policy_skips <= s.read_enters,
                "{s:?}"
            );
        })
        .expect("store-buffer staleness must not starve the reader");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "weak-memory space must be exhausted"
    );
}
