//! Model-checked publish/revoke handoff for the BRAVO biased lock.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
//!
//! BRAVO's correctness hangs on one store→load handshake, run from both
//! sides at once: the reader publishes its visible-readers slot and
//! then re-checks the bias; the writer clears the bias and then scans
//! the slots. If both sides could read stale values — the classic SB
//! shape — a fast-path reader and a writer would own the lock
//! simultaneously and a reader could observe a torn write pair. The
//! implementation closes the race with `SeqCst` on publish, re-check,
//! bias-clear, scan and unpublish, so these scenarios must hold in
//! **every** explored schedule:
//!
//! * a reader never observes a half-applied write pair (mutual
//!   exclusion of fast-path readers and writers);
//! * the writer's revocation scan terminates — the unpublishing
//!   reader's `SeqCst` swap plus bias re-check guarantees the parked
//!   writer is woken (a missed notify would surface here as a
//!   scheduler-reported deadlock, because the model's `wait_timeout`
//!   budget treats "timed out forever" as a stuck thread);
//! * teardown drains: no slot still publishes the lock, and the
//!   taxonomy balances (`read_enters == elision_success +
//!   read_slow_enters`, re-biases only after revocations).
//!
//! The space is drained three ways — exhaustive DFS (1R+1W), DPOR
//! (2R+1W, where the re-bias cycle of `BravoPolicy::minimal` is
//! reachable), and a TSO weak-memory pass (1R+1W) aimed squarely at
//! the store-buffer variant of the handshake. Under `solero_mc` the
//! table shrinks to 8 slots and slot choice keys on the stable virtual
//! thread index (see `solero_rwlock::visible`), so a discovered trace
//! replays with the same collision pattern.
#![cfg(solero_mc)]

use std::sync::Arc;

use solero_mc::{spawn, Checker};
use solero_rwlock::{BravoLock, BravoPolicy, RawRwLock};
use solero_sync::atomic::{AtomicU64, Ordering};

/// One fast-path reader snapshotting a pair the writer updates. Panics
/// (killing the schedule) if exclusion or the teardown invariants fail.
fn one_reader_one_writer() {
    let lock = Arc::new(BravoLock::new());
    let a = Arc::new(AtomicU64::new(0));
    let b = Arc::new(AtomicU64::new(0));

    let writer = {
        let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
        spawn(move || {
            let g = lock.write();
            a.store(1, Ordering::Relaxed);
            b.store(1, Ordering::Relaxed);
            drop(g);
        })
    };
    let reader = {
        let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
        spawn(move || {
            let g = lock.read();
            let (ra, rb) = (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
            drop(g);
            // Asserted outside the section: unwinding here must not run
            // lock releases against the model.
            assert_eq!(ra, rb, "bravo reader saw a torn pair");
        })
    };
    writer.join();
    reader.join();

    assert_eq!(lock.published_readers(), 0, "visible-readers slot leaked");
    let s = lock.stats().snapshot();
    assert_eq!(s.read_enters, 1, "{s:?}");
    assert_eq!(s.write_enters, 1, "{s:?}");
    assert_eq!(
        s.read_enters,
        s.elision_success + s.read_slow_enters,
        "every read is exactly fast or slow: {s:?}"
    );
    // The lock starts biased and only a writer clears the bias, so the
    // single writer always revokes exactly once.
    assert_eq!(s.bias_revocations, 1, "{s:?}");
    assert_eq!(s.bias_rebiases, 0, "no rebias without a slow-read streak");
}

/// DFS, bounded preemptions: every interleaving of the publish/recheck
/// vs clear/scan handshake, including the writer parking mid-scan.
#[test]
fn bravo_reader_never_torn_dfs() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .check("bravo_snapshot_dfs", one_reader_one_writer)
        .expect("bravo fast readers and writers must exclude");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// TSO store buffers: the same scenario where the reader's publish and
/// the writer's bias clear may each sit in a store buffer. `SeqCst`
/// RMWs flush, which is exactly what the protocol relies on; a demoted
/// ordering would surface here as a torn pair or a stuck scan.
#[test]
fn bravo_publish_revoke_handshake_survives_tso() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .weak_memory(true)
        .check("bravo_snapshot_tso", one_reader_one_writer)
        .expect("bravo handshake must close the store-buffer race");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// DPOR, two readers and one writer on the one-step re-bias policy:
/// the whole bias lifecycle — fast path, revocation, slow-path streak,
/// re-bias — is reachable inside one execution, and the invariants must
/// hold on every branch of it.
#[test]
fn bravo_rebias_cycle_dpor() {
    let stats = Checker::dpor()
        .check("bravo_rebias_dpor", || {
            let lock = Arc::new(BravoLock::with_policy(BravoPolicy::minimal()));
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));

            let writer = {
                let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
                spawn(move || {
                    let g = lock.write();
                    a.store(1, Ordering::Relaxed);
                    b.store(1, Ordering::Relaxed);
                    drop(g);
                })
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
                    spawn(move || {
                        let g = lock.read();
                        let (ra, rb) =
                            (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
                        drop(g);
                        assert_eq!(ra, rb, "bravo reader saw a torn pair");
                    })
                })
                .collect();
            writer.join();
            for r in readers {
                r.join();
            }

            assert_eq!(lock.published_readers(), 0, "visible-readers slot leaked");
            let s = lock.stats().snapshot();
            assert_eq!(s.read_enters, 2, "{s:?}");
            assert_eq!(
                s.read_enters,
                s.elision_success + s.read_slow_enters,
                "every read is exactly fast or slow: {s:?}"
            );
            assert_eq!(s.bias_revocations, 1, "{s:?}");
            assert!(
                s.bias_rebiases <= s.bias_revocations,
                "bias can only be re-earned after a revocation: {s:?}"
            );
            // Writer progress is implied by the execution finishing: a
            // revocation scan that never terminated would be reported
            // as a deadlock by the scheduler, not reach this point.
        })
        .expect("bravo rebias cycle must preserve exclusion");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}
