//! Model-checked invariants of the SOLERO elision protocol, plus the
//! tasuki and rwlock baselines (ISSUE 3 tentpole, part 3).
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh). Every
//! scenario is a closure re-run once per explored schedule; shared
//! state is created inside the closure so executions are independent.
//! Scenarios use the closure section APIs (`write`, `read_only`) —
//! never the RAII guards — because a failing schedule tears threads
//! down by unwinding, and a guard would then run protocol operations
//! from `Drop` outside the model.
#![cfg(solero_mc)]

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use solero::{Fault, SoleroConfig, SoleroLock};
use solero_heap::{ClassId, Heap, ObjRef};
use solero_mc::{spawn, Checker};
use solero_runtime::contention::ContentionConfig;
use solero_runtime::spin::SpinConfig;
use solero_runtime::word::COUNTER_STEP;

const PAIR: ClassId = ClassId::new(7);

/// Minimal-state-space config: no spinning and a two-probe contention
/// manager, so contention escalates to the monitor in a couple of
/// steps instead of adding schedule points (the manager's default
/// 128-probe rounds stretch the fallback-heavy schedules here past the
/// execution budget).
fn mc_config() -> SoleroConfig {
    SoleroConfig::builder()
        .spin(SpinConfig::immediate())
        .contention(ContentionConfig::minimal())
        .build()
}

/// Allocates a two-slot object whose invariant is `slot0 == slot1`.
fn alloc_pair(heap: &Heap) -> ObjRef {
    let obj = heap.alloc(PAIR, 2).expect("scenario heap is large enough");
    heap.store(obj, 0, 10).unwrap();
    heap.store(obj, 1, 10).unwrap();
    obj
}

/// One writer keeping `slot0 == slot1` under the lock, one elided
/// reader of both slots. A validated read-only section must never
/// observe a torn pair, under every schedule with up to 3 preemptions.
///
/// Also asserts (in every explored schedule) that each abort was
/// classified exactly once: `read_aborts == abort_reason_sum()`. The
/// assert is sound under the checker because the stats counters are
/// plain `std` atomics — not scheduling points — so the two increments
/// in `note_abort` cannot be torn by the virtual-thread scheduler.
#[test]
fn validated_read_sees_consistent_snapshot() {
    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .check("read_snapshot", || {
            let heap = Arc::new(Heap::new(64));
            let obj = alloc_pair(&heap);
            let lock = Arc::new(SoleroLock::with_config(mc_config()));

            let writer = {
                let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
                spawn(move || {
                    lock.write(|| {
                        let a = heap.load(obj, PAIR, 0).unwrap();
                        heap.store(obj, 0, a + 1).unwrap();
                        let b = heap.load(obj, PAIR, 1).unwrap();
                        heap.store(obj, 1, b + 1).unwrap();
                    });
                })
            };
            let reader = {
                let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
                spawn(move || {
                    let pair = lock
                        .read_only(|_| {
                            let a = heap.load(obj, PAIR, 0)?;
                            let b = heap.load(obj, PAIR, 1)?;
                            Ok::<_, Fault>((a, b))
                        })
                        .expect("no genuine faults in this scenario");
                    assert_eq!(pair.0, pair.1, "validated torn read {pair:?}");
                })
            };
            writer.join();
            reader.join();

            let s = lock.stats().snapshot();
            assert_eq!(
                s.read_aborts,
                s.abort_reason_sum(),
                "every abort classified exactly once: {s:?}"
            );
            assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
        })
        .expect("the unmutated protocol must never validate a torn read");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// Two writing critical sections advance the version counter by
/// exactly `COUNTER_STEP` each, plus one extra step per inflation
/// (the displaced counter is pre-advanced when the lock inflates and
/// bumped again at the fat writing release — over-advance only ever
/// aborts a reader conservatively), and the lock ends unlocked. A
/// *lost* counter step is exactly the ABA that would let a concurrent
/// reader validate stale data.
#[test]
fn counter_advances_step_per_write_section() {
    let inflated_runs = Arc::new(StdAtomicU64::new(0));
    let seen = Arc::clone(&inflated_runs);
    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .check("counter_step", move || {
            let lock = Arc::new(SoleroLock::with_config(mc_config()));
            let start = lock.raw_word().raw();
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    spawn(move || lock.write(|| {}))
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert!(!lock.is_locked(), "both sections released");
            let end = lock.raw_word();
            assert!(!end.is_inflated(), "uncontended exit deflates");
            let s = lock.stats().snapshot();
            let expected = start.wrapping_add((2 + s.inflations) * COUNTER_STEP);
            assert_eq!(
                end.raw(),
                expected,
                "counter must advance once per write section and once \
                 per inflation (start {start:#x}, end {:#x}, {} inflations)",
                end.raw(),
                s.inflations
            );
            assert!(end.raw() > start, "counter never regresses or wraps");
            seen.fetch_add(s.inflations, StdOrdering::Relaxed);
        })
        .expect("counter stepping is schedule-independent");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
    assert!(
        inflated_runs.load(StdOrdering::Relaxed) > 0 || solero_mc::budget_overridden(),
        "exploration must cover at least one inflating schedule"
    );
}

/// A reader whose speculation keeps failing must reach real
/// acquisition (the Figure 8 fallback), not retry forever: with
/// `fallback_threshold = 1` and a writer churning the word twice, the
/// reader completes in every schedule, and some schedule exercises the
/// fallback path.
#[test]
fn retry_exhaustion_reaches_acquisition() {
    let fallbacks = Arc::new(StdAtomicU64::new(0));
    let seen = Arc::clone(&fallbacks);
    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .check("retry_fallback", move || {
            let heap = Arc::new(Heap::new(64));
            let obj = alloc_pair(&heap);
            let lock = Arc::new(SoleroLock::with_config(mc_config()));

            let writer = {
                let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
                spawn(move || {
                    for _ in 0..2 {
                        lock.write(|| {
                            let a = heap.load(obj, PAIR, 0).unwrap();
                            heap.store(obj, 0, a + 1).unwrap();
                            heap.store(obj, 1, a + 1).unwrap();
                        });
                    }
                })
            };
            let reader = {
                let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
                spawn(move || {
                    let pair = lock
                        .read_only(|_| {
                            let a = heap.load(obj, PAIR, 0)?;
                            let b = heap.load(obj, PAIR, 1)?;
                            Ok::<_, Fault>((a, b))
                        })
                        .expect("reader must terminate via fallback if need be");
                    assert_eq!(pair.0, pair.1, "torn {pair:?}");
                })
            };
            writer.join();
            reader.join();

            let s = lock.stats().snapshot();
            assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
            assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
            seen.fetch_add(s.fallback_acquires, StdOrdering::Relaxed);
        })
        .expect("reader terminates under every schedule");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
    assert!(
        fallbacks.load(StdOrdering::Relaxed) > 0 || solero_mc::budget_overridden(),
        "exploration must cover at least one retry-exhausted fallback"
    );
}

/// Inflation under contention never loses a pending writer and never
/// strands an elided reader: 2 writers + 1 reader, seeded random
/// sampling of deeper interleavings than the exhaustive pass covers.
#[test]
fn inflation_loses_no_thread() {
    let stats = Checker::random(0x5EED_0003, 300)
        .check("inflation", || {
            let heap = Arc::new(Heap::new(64));
            let obj = alloc_pair(&heap);
            let lock = Arc::new(SoleroLock::with_config(mc_config()));

            let writers: Vec<_> = (0..2)
                .map(|_| {
                    let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
                    spawn(move || {
                        lock.write(|| {
                            let a = heap.load(obj, PAIR, 0).unwrap();
                            heap.store(obj, 0, a + 1).unwrap();
                            heap.store(obj, 1, a + 1).unwrap();
                        });
                    })
                })
                .collect();
            let reader = {
                let (heap, lock) = (Arc::clone(&heap), Arc::clone(&lock));
                spawn(move || {
                    let pair = lock
                        .read_only(|_| {
                            let a = heap.load(obj, PAIR, 0)?;
                            let b = heap.load(obj, PAIR, 1)?;
                            Ok::<_, Fault>((a, b))
                        })
                        .expect("reader completes despite inflation");
                    assert_eq!(pair.0, pair.1, "torn {pair:?}");
                })
            };
            for w in writers {
                w.join();
            }
            reader.join();

            assert!(!lock.is_locked(), "no stranded owner after teardown");
            let a = heap.load(obj, PAIR, 0).unwrap();
            let b = heap.load(obj, PAIR, 1).unwrap();
            assert_eq!((a, b), (12, 12), "both write sections applied");
            let s = lock.stats().snapshot();
            assert_eq!(s.read_aborts, s.abort_reason_sum(), "{s:?}");
        })
        .expect("no schedule strands a writer or reader across inflation");
    assert!(
        stats.executions == 300 || solero_mc::budget_overridden(),
        "all 300 sampled schedules ran, got {}",
        stats.executions
    );
}

/// Tasuki baseline: write sections are mutually exclusive. The
/// load-then-store increment below is exactly the smoke-test race, now
/// protected by the lock under check.
#[test]
fn tasuki_write_sections_exclude() {
    use solero_runtime::thread::ThreadId;
    use solero_sync::atomic::{AtomicU64, Ordering};
    use solero_tasuki::TasukiLock;

    let stats = Checker::exhaustive()
        .check("tasuki_exclusion", || {
            let lock = Arc::new(TasukiLock::new());
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let (lock, c) = (Arc::clone(&lock), Arc::clone(&c));
                    spawn(move || {
                        let tid = ThreadId::current();
                        lock.enter(tid);
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                        lock.exit(tid);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert!(!lock.is_locked());
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update under tasuki");
        })
        .expect("tasuki write sections are mutually exclusive");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}

/// RWLock baseline: a writer excludes a reader, so the reader sees the
/// pair before or after the writer's two stores — never between.
#[test]
fn rwlock_reader_never_torn() {
    use solero_rwlock::{JavaRwLock, RawRwLock};
    use solero_sync::atomic::{AtomicU64, Ordering};

    let stats = Checker::exhaustive()
        .preemption_bound(Some(3))
        .check("rwlock_snapshot", || {
            let rw = Arc::new(JavaRwLock::new());
            let a = Arc::new(AtomicU64::new(10));
            let b = Arc::new(AtomicU64::new(10));

            let writer = {
                let (rw, a, b) = (Arc::clone(&rw), Arc::clone(&a), Arc::clone(&b));
                spawn(move || {
                    let g = rw.write();
                    a.store(11, Ordering::Relaxed);
                    b.store(11, Ordering::Relaxed);
                    drop(g);
                })
            };
            let reader = {
                let (rw, a, b) = (Arc::clone(&rw), Arc::clone(&a), Arc::clone(&b));
                spawn(move || {
                    let g = rw.read();
                    let (ra, rb) = (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
                    drop(g);
                    // Asserted outside the section: unwinding here must
                    // not run lock releases against the model.
                    assert_eq!(ra, rb, "rwlock reader saw a torn pair");
                })
            };
            writer.join();
            reader.join();
        })
        .expect("rwlock write/read sections must not overlap");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "bounded space must be exhausted"
    );
}
