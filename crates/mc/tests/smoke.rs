//! Scheduler shakedown: tiny scenarios with known answers, exercising
//! the virtual-thread runtime before the real protocol checks.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
#![cfg(solero_mc)]

use std::sync::Arc;

use solero_mc::{spawn, Checker};
use solero_sync::atomic::{AtomicU64, Ordering};
use solero_sync::{Condvar, Mutex};

/// A two-thread load-then-store increment race: the checker must find
/// the lost-update schedule, and replaying its trace must reproduce it.
#[test]
fn finds_lost_update_race() {
    let scenario = || {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };

    let violation = match Checker::exhaustive().check("lost_update", scenario) {
        Err(v) => v,
        // A capped search makes no find promise.
        Ok(_) if solero_mc::budget_overridden() => return,
        Ok(_) => panic!("exhaustive search must find the lost update"),
    };
    assert!(violation.message.contains("lost update"), "{violation}");

    // The recorded schedule replays to the same failure.
    let replayed = Checker::replay(&violation.trace)
        .check("lost_update", scenario)
        .expect_err("replay must reproduce the violation");
    assert_eq!(replayed.message, violation.message);

    // And replays are stable run-to-run.
    let again = Checker::replay(&violation.trace)
        .check("lost_update", scenario)
        .expect_err("second replay must also reproduce it");
    assert_eq!(again.trace, replayed.trace);
}

/// The same increments through a shimmed Mutex: no schedule loses one.
#[test]
fn mutex_excludes() {
    let stats = Checker::exhaustive()
        .check("mutex_excludes", || {
            let c = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        *c.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(*c.lock().unwrap(), 2);
        })
        .expect("mutex increments must be atomic");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "2-thread space should be exhausted"
    );
}

/// CAS-based increments: compare_exchange retry loops never lose one.
#[test]
fn cas_increments_never_lost() {
    Checker::exhaustive()
        .check("cas_increment", || {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || loop {
                        let v = c.load(Ordering::Acquire);
                        if c
                            .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            break;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2);
        })
        .expect("CAS loop must not lose increments");
}

/// Classic condvar handoff with a predicate loop: correct under every
/// schedule, including notify-before-wait.
#[test]
fn condvar_handoff() {
    Checker::exhaustive()
        .check("condvar_handoff", || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = {
                let pair = Arc::clone(&pair);
                spawn(move || {
                    *pair.0.lock().unwrap() = true;
                    pair.1.notify_one();
                })
            };
            let waiter = {
                let pair = Arc::clone(&pair);
                spawn(move || {
                    let mut g = pair.0.lock().unwrap();
                    while !*g {
                        g = pair.1.wait(g).unwrap();
                    }
                })
            };
            setter.join();
            waiter.join();
        })
        .expect("predicate-loop condvar handoff is schedule-proof");
}

/// ABBA lock ordering: the checker must report the deadlock.
#[test]
fn detects_abba_deadlock() {
    let result = Checker::exhaustive()
        .check("abba", || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t1 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                })
            };
            let t2 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                spawn(move || {
                    let _gb = b.lock().unwrap();
                    let _ga = a.lock().unwrap();
                })
            };
            t1.join();
            t2.join();
        });
    match result {
        Err(violation) => {
            assert!(violation.message.contains("deadlock"), "{violation}");
        }
        Ok(_) if solero_mc::budget_overridden() => {}
        Ok(_) => panic!("ABBA must deadlock under some schedule"),
    }
}

/// Relaxed loads may observe stale values: a message-passing idiom
/// with relaxed flag ordering must fail, the Acquire/Release version
/// must pass. This exercises the Value-decision branch of the model.
#[test]
fn relaxed_message_passing_breaks_release_holds() {
    let mp = |flag_store: Ordering, flag_load: Ordering| {
        move || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let producer = {
                let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
                spawn(move || {
                    d.store(42, Ordering::Relaxed);
                    f.store(1, flag_store);
                })
            };
            let consumer = {
                let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
                spawn(move || {
                    if f.load(flag_load) == 1 {
                        assert_eq!(d.load(Ordering::Relaxed), 42, "stale data after flag");
                    }
                })
            };
            producer.join();
            consumer.join();
        }
    };

    match Checker::exhaustive().check("mp_relaxed", mp(Ordering::Relaxed, Ordering::Relaxed)) {
        Err(v) => assert!(v.message.contains("stale data"), "{v}"),
        Ok(_) if solero_mc::budget_overridden() => {}
        Ok(_) => panic!("relaxed flag must leak stale data"),
    }

    Checker::exhaustive()
        .check("mp_release_acquire", mp(Ordering::Release, Ordering::Acquire))
        .expect("release/acquire flag forbids stale data");
}

/// Seeded random mode is reproducible and obeys SOLERO_MC_BUDGET-style
/// caps via the builder.
#[test]
fn random_mode_runs() {
    let stats = Checker::random(0x5EED_0001, 50)
        .check("random_mutex", || {
            let c = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        *c.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(*c.lock().unwrap(), 3);
        })
        .expect("mutex increments hold under random schedules");
    assert!(
        stats.executions == 50 || solero_mc::budget_overridden(),
        "all 50 sampled schedules ran, got {}",
        stats.executions
    );
}
