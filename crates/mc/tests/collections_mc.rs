//! Model-checked collections under elided readers (ISSUE 4 tentpole):
//! a `JHashMap` rehash and a `JTreeMap` rotation race against
//! speculative read-only sections over the shadow heap, three virtual
//! threads each. Every explored schedule must validate only coherent
//! snapshots — a reader that saw a mix of pre- and post-restructure
//! epochs must have aborted and re-executed, never returned.
//!
//! These spaces are orders of magnitude larger than the two-thread
//! protocol scenarios, which is exactly why they run under
//! [`Checker::dpor`]: the partial-order reduction prunes schedules
//! that only commute independent heap accesses, collapsing each
//! scenario to a few hundred representative executions that drain
//! within the CI budget (tunable via `SOLERO_MC_BUDGET`, see
//! scripts/ci.sh). Plain bounded DFS does not finish these scenarios
//! within any CI-shaped cap — tests/dpor_reduction.rs measures the
//! before/after.
//!
//! Build with `RUSTFLAGS="--cfg solero_mc"` (see scripts/ci.sh).
#![cfg(solero_mc)]

use std::sync::Arc;

use solero::{Fault, SoleroConfig, SoleroLock};
use solero_collections::{JHashMap, JTreeMap, MAP_CLASS};
use solero_heap::Heap;
use solero_mc::{spawn, Checker};
use solero_runtime::spin::SpinConfig;

/// Minimal-state-space config, as in tests/protocol.rs.
fn mc_config() -> SoleroConfig {
    SoleroConfig::builder().spin(SpinConfig::immediate()).build()
}

/// Per-scenario execution cap, a safety valve an order of magnitude
/// above what the reduced spaces need (DPOR drains both three-thread
/// scenarios in a few hundred executions at preemption bound 2, where
/// plain DFS does not finish within any CI-shaped cap — see
/// tests/dpor_reduction.rs for the measured before/after).
const SCENARIO_CAP: u64 = 4_000;

/// Abort-taxonomy invariants from the PR-2 observability layer, asserted
/// at scenario teardown in **every** explored schedule.
fn assert_taxonomy(lock: &SoleroLock) {
    let s = lock.stats().snapshot();
    assert_eq!(
        s.read_aborts,
        s.abort_reason_sum(),
        "every abort classified exactly once: {s:?}"
    );
    assert_eq!(s.fallback_acquires, s.abort_retry_exhausted, "{s:?}");
    if s.abort_inflation > 0 {
        assert!(s.inflations > 0, "inflation aborts require an inflation: {s:?}");
    }
}

/// One writer forcing a rehash (table swap + node relink + old-table
/// free), two elided readers each taking a two-key snapshot in a single
/// read-only section. A snapshot mixing epochs — e.g. a bucket resolved
/// in the old table after the swap, or a key that "vanished" mid-relink
/// — must never validate: both keys come back with their seeded values
/// in every explored schedule.
#[test]
fn hashmap_rehash_readers_see_single_epoch() {
    let stats = Checker::dpor()
        .max_executions(SCENARIO_CAP)
        .check("hashmap_rehash", || {
            let heap = Arc::new(Heap::new(256));
            let map = Arc::new(JHashMap::new(&heap, 4).unwrap());
            map.put(&heap, 1, 10).unwrap();
            map.put(&heap, 2, 20).unwrap();
            // Field 0 of the map root is the table reference (the
            // `force_resize` docs pin this layout); captured pre-swap so
            // teardown can prove the epoch actually changed.
            let old_table = heap.load_ref(map.root(), MAP_CLASS, 0).unwrap();
            let lock = Arc::new(SoleroLock::with_config(mc_config()));

            let writer = {
                let (heap, map, lock) = (Arc::clone(&heap), Arc::clone(&map), Arc::clone(&lock));
                spawn(move || {
                    lock.write(|| map.force_resize(&heap).unwrap());
                })
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let (heap, map, lock) =
                        (Arc::clone(&heap), Arc::clone(&map), Arc::clone(&lock));
                    spawn(move || {
                        let snap = lock
                            .read_only(|s| {
                                let a = map.get(&heap, 1, &mut *s)?;
                                let b = map.get(&heap, 2, &mut *s)?;
                                Ok::<_, Fault>((a, b))
                            })
                            .expect("no genuine faults in this scenario");
                        assert_eq!(
                            snap,
                            (Some(10), Some(20)),
                            "validated mixed-epoch snapshot {snap:?}"
                        );
                    })
                })
                .collect();
            writer.join();
            for r in readers {
                r.join();
            }

            // Epoch proof: the rehash swapped in a fresh table and freed
            // the seed-time one, whose storage cannot have been recycled
            // (the free list is keyed by length and nothing else of
            // length 4 was allocated afterwards) — so the old handle is
            // now stale in every schedule.
            let new_table = heap.load_ref(map.root(), MAP_CLASS, 0).unwrap();
            assert_ne!(new_table.raw(), old_table.raw(), "rehash must swap the table");
            assert!(
                heap.generation_of(old_table).is_err(),
                "the pre-rehash table must be freed, not resurrected"
            );
            assert_taxonomy(&lock);
        })
        .expect("a rehash must never let a mixed-epoch snapshot validate");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "the reduced bounded space must be exhausted"
    );
}

/// One writer inserting the key that forces a left rotation at the tree
/// root (pre-seeded `{1, 2}` as a black root with a red right child, so
/// `put(3)` is a red child of a red parent), two elided readers taking
/// coherent snapshots — one pairs `get(1)` with `first_key()` in a
/// single section, the other reads key 2. A reader caught mid-rotation
/// (child pointers re-aimed across two stores) must abort and re-run,
/// never validate.
#[test]
fn treemap_rotation_readers_see_single_epoch() {
    let stats = Checker::dpor()
        .max_executions(SCENARIO_CAP)
        .check("treemap_rotation", || {
            let heap = Arc::new(Heap::new(256));
            let map = Arc::new(JTreeMap::new(&heap).unwrap());
            map.put(&heap, 1, 10).unwrap();
            map.put(&heap, 2, 20).unwrap();
            let lock = Arc::new(SoleroLock::with_config(mc_config()));

            let writer = {
                let (heap, map, lock) = (Arc::clone(&heap), Arc::clone(&map), Arc::clone(&lock));
                spawn(move || {
                    lock.write(|| {
                        map.put(&heap, 3, 30).unwrap();
                    });
                })
            };
            let reader_a = {
                let (heap, map, lock) = (Arc::clone(&heap), Arc::clone(&map), Arc::clone(&lock));
                spawn(move || {
                    let snap = lock
                        .read_only(|s| {
                            let v = map.get(&heap, 1, &mut *s)?;
                            let first = map.first_key(&heap, &mut *s)?;
                            Ok::<_, Fault>((v, first))
                        })
                        .expect("no genuine faults in this scenario");
                    assert_eq!(
                        snap,
                        (Some(10), Some(1)),
                        "validated mid-rotation snapshot {snap:?}"
                    );
                })
            };
            let reader_b = {
                let (heap, map, lock) = (Arc::clone(&heap), Arc::clone(&map), Arc::clone(&lock));
                spawn(move || {
                    let v = lock
                        .read_only(|s| map.get(&heap, 2, s))
                        .expect("no genuine faults in this scenario");
                    assert_eq!(v, Some(20), "validated mid-rotation read {v:?}");
                })
            };
            writer.join();
            reader_a.join();
            reader_b.join();

            // The rotation completed and left a legal red-black tree.
            let black_height = map.check_invariants(&heap).unwrap();
            assert!(black_height >= 1);
            for (k, v) in [(1, 10), (2, 20), (3, 30)] {
                let got = lock.read_only(|s| map.get(&heap, k, s)).unwrap();
                assert_eq!(got, Some(v), "key {k} after rotation");
            }
            assert_taxonomy(&lock);
        })
        .expect("a rotation must never let a torn tree snapshot validate");
    assert!(
        stats.complete || solero_mc::budget_overridden(),
        "the reduced bounded space must be exhausted"
    );
}
